//! The distributed tier: the fleet dispatcher behind `--fleet`, the
//! `fdip workerd` daemon loop, and the shared on-disk result cache.
//!
//! PR 5's supervisor contains cell failures inside one machine; this
//! module stretches the same protocol across machines without weakening
//! any of its guarantees:
//!
//! * **[`Fleet`]** — the client side. One slot per advertised worker
//!   seat, each slot a TCP connection to a registered node. Dispatch
//!   routes by the cell's content hash (same cell → same node → warm
//!   trace cache), liveness rides the PR 5 heartbeat discipline plus
//!   read deadlines, and every way a node can vanish — killed process,
//!   severed link, silent partition, corrupt frame — resolves to the
//!   *retryable* [`CellError::Crashed`], so a dead node costs
//!   re-dispatch, never a failed run.
//! * **[`serve_workerd`]** — the daemon side. Each accepted connection
//!   is handshake-checked ([`Hello`]/[`Welcome`]) and then proxied to a
//!   supervised self-exec'd child worker (the PR 5 worker, verbatim), so
//!   a cell that aborts or hangs remotely kills a disposable child, not
//!   the daemon. A child's death is reported back as a typed `crashed`
//!   reply carrying the exit signal/code. On shutdown the daemon drains:
//!   in-flight cells finish, new ones are refused with a `bye`, and the
//!   process exits 0.
//! * **[`ResultCache`]** — the cluster-wide memo. One CRC32-framed
//!   [`JournalEntry`] per file, content-addressed by
//!   `(workload, trace_len, config-fingerprint)`, written atomically
//!   ([`crate::persist::write_atomic`]). Consulted before any dispatch,
//!   local or remote, so an identical cell simulates exactly once
//!   *cluster-wide*; corrupt entries are skipped and counted, never
//!   trusted.
//!
//! Fault drills for every path above are injectable deterministically
//! via the `drop`/`partition`/`slowlink`/`truncframe` kinds in
//! [`crate::fault::FaultPlan`], realized here as [`NetFault`]s.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fdip::{FrontendConfig, SimStats};
use fdip_types::{Json, ToJson};

use crate::fault::CellError;
use crate::harness::lock;
use crate::ipc::{read_frame, write_frame, RunRequest, WorkerFault, WorkerReply};
use crate::journal::{crc32, split_crc_frame, JournalEntry};
use crate::net::{self, bye_frame, is_bye, Hello, NetFault, Welcome, PROTOCOL_VERSION};
use crate::workload::WorkloadSpec;

/// Read-poll quantum for fleet streams: how often a blocked read wakes to
/// check budget/heartbeat/drain deadlines.
const POLL: Duration = Duration::from_millis(100);

/// How often the daemon's accept loop polls for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// How long a fresh connection gets to complete its handshake.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Cells a proxied child runs before being retired and respawned fresh
/// (same leak bound as the local supervisor's `recycle_after`).
const RECYCLE_AFTER: u64 = 64;

/// When (if ever) the fleet speculatively re-dispatches a slow in-flight
/// cell to a second node. Safe at any setting: results are
/// content-addressed and the simulator is deterministic, so both copies
/// produce byte-identical statistics and the first one back wins; the
/// loser is cancelled by severing its connection (the remote-kill path).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HedgePolicy {
    /// Never hedge. Dispatch takes the exact synchronous path it always
    /// has — provably inert.
    Off,
    /// Hedge a cell whose primary copy has been in flight this long.
    After(Duration),
    /// Hedge after 3× the observed mean completion time (floor 200ms),
    /// armed once three completions have been observed.
    Auto,
}

impl HedgePolicy {
    /// Parses a `--hedge-after-ms` value: `0` disables, a positive
    /// millisecond count sets a fixed threshold, `auto` adapts.
    ///
    /// # Errors
    ///
    /// A human-readable message for anything else.
    pub fn parse(raw: &str) -> Result<HedgePolicy, String> {
        let raw = raw.trim();
        if raw.eq_ignore_ascii_case("auto") {
            return Ok(HedgePolicy::Auto);
        }
        match raw.parse::<u64>() {
            Ok(0) => Ok(HedgePolicy::Off),
            Ok(ms) => Ok(HedgePolicy::After(Duration::from_millis(ms))),
            Err(_) => Err(format!(
                "invalid hedge delay {raw:?}: expected 0, a millisecond count, or \"auto\""
            )),
        }
    }
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy::Off
    }
}

/// Connection and liveness policy for a [`Fleet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker daemon addresses (`host:port`).
    pub addrs: Vec<String>,
    /// Dial timeout, also installed as each stream's write deadline.
    pub connect_timeout: Duration,
    /// Silence longer than this from a busy node means it is partitioned
    /// or dead, not slow; the cell is reclassified for re-dispatch.
    pub heartbeat_timeout: Duration,
    /// Base interval of the background reprobe's exponential backoff: a
    /// lost node is re-dialed after `base`, then `base·2`, `base·4`, …
    /// capped at `base·32`, until a full handshake readmits it.
    pub reprobe_base: Duration,
    /// Speculative re-dispatch policy for slow in-flight cells.
    pub hedge: HedgePolicy,
}

impl FleetConfig {
    /// Policy for `addrs` with defaults, overridable for drills via the
    /// `FDIP_FLEET_CONNECT_MS` / `FDIP_FLEET_HEARTBEAT_MS` /
    /// `FDIP_FLEET_REPROBE_MS` / `FDIP_FLEET_HEDGE_AFTER_MS` environment
    /// variables (tests shrink the heartbeat so partition drills converge
    /// in milliseconds, not seconds).
    pub fn new(addrs: Vec<String>) -> FleetConfig {
        let ms = |var: &str, default: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let hedge = std::env::var("FDIP_FLEET_HEDGE_AFTER_MS")
            .ok()
            .and_then(|v| HedgePolicy::parse(&v).ok())
            .unwrap_or_default();
        FleetConfig {
            addrs,
            connect_timeout: Duration::from_millis(ms("FDIP_FLEET_CONNECT_MS", 3_000)),
            heartbeat_timeout: Duration::from_millis(ms("FDIP_FLEET_HEARTBEAT_MS", 5_000)),
            reprobe_base: Duration::from_millis(ms("FDIP_FLEET_REPROBE_MS", 250)),
            hedge,
        }
    }
}

/// Counters the fleet accumulates; folded into
/// [`HarnessStats`](crate::harness::HarnessStats) and exported by
/// `fdip-serve` `/metrics`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Worker seats registered across all reachable nodes.
    pub fleet_workers: u64,
    /// Nodes that went silent mid-run (one per down-transition, not per
    /// connection — a killed daemon with four seats is one loss).
    pub node_losses: u64,
    /// Cell attempts re-dispatched after a first attempt failed.
    pub cells_redispatched: u64,
    /// Lost nodes readmitted (on probation) after a reprobe re-handshake.
    pub node_readmissions: u64,
    /// Cells whose slow primary copy triggered a speculative second copy.
    pub cells_hedged: u64,
    /// Hedged cells where the speculative copy finished first.
    pub hedge_wins: u64,
    /// Total milliseconds nodes spent down before readmission (divide by
    /// `node_readmissions` for mean time to recovery).
    pub readmission_downtime_ms: u64,
}

/// Where a node stands in the health state machine:
///
/// ```text
/// Healthy ──failure──▶ Suspect ──failure──▶ Lost
///    ▲                    │                  │ backoff reprobe
///    │◀──reply────────────┘                  │ (full re-handshake)
///    │                                       ▼
///    └────────reply───────────────────── Probation
/// ```
///
/// The `Healthy → Suspect` and `Probation → Lost` transitions each book
/// one `node_losses`; `Suspect → Lost` does not (same outage). Routing
/// treats everything but `Lost` as dispatchable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NodeHealth {
    /// Answering normally.
    Healthy,
    /// One recent failure; still routed to (a single hiccup is not an
    /// outage), but one more failure confirms the loss.
    Suspect,
    /// Two consecutive failures (or a failure while on probation): not
    /// routed to; only the background reprobe talks to it.
    Lost,
    /// Readmitted after a reprobe completed the full hello/welcome
    /// fingerprint handshake; routed to again, demoted straight back to
    /// `Lost` on any failure, promoted to `Healthy` on a reply.
    Probation,
}

impl NodeHealth {
    /// Stable lowercase label, used by `/metrics` gauge families.
    pub fn name(self) -> &'static str {
        match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Suspect => "suspect",
            NodeHealth::Lost => "lost",
            NodeHealth::Probation => "probation",
        }
    }
}

/// Mutable health bookkeeping for one node, behind its own lock so the
/// reprobe thread and dispatchers never contend on the slot locks.
#[derive(Debug)]
struct HealthCell {
    state: NodeHealth,
    /// Consecutive failed reprobes since the node went `Lost`.
    reprobe_failures: u32,
    /// When the next reprobe is due (meaningful only while `Lost`).
    next_reprobe: Instant,
    /// When the booked down-transition happened (for MTTR accounting).
    lost_at: Option<Instant>,
    /// Last reprobe failure message, kept to dedup log lines.
    last_probe_error: Option<String>,
}

/// One registered node.
#[derive(Debug)]
struct NodeState {
    addr: String,
    health: Mutex<HealthCell>,
}

impl NodeState {
    fn health(&self) -> NodeHealth {
        lock(&self.health).state
    }

    /// Whether dispatch may route to this node (everything but `Lost`).
    fn routable(&self) -> bool {
        self.health() != NodeHealth::Lost
    }
}

/// One dispatch seat: which node it belongs to and its (lazily dialed,
/// re-dialed after loss) connection.
#[derive(Debug)]
struct SlotConn {
    conn: Option<TcpStream>,
}

/// How one seat attempt ended, distinguishing "could not even reach the
/// node" (re-route within the same attempt) from a real cell outcome.
enum SlotOutcome {
    /// Dialing the node failed; the attempt has not been spent.
    Unreachable(CellError),
    /// The cell ran (or died) on the node; this is the attempt's result.
    Final(CellError),
    /// This copy lost a hedge race and was aborted mid-flight (its
    /// connection severed, which kills the remote child). Not a node
    /// failure and not a result — the winning copy already has one.
    Cancelled,
}

/// The client side of distributed cell execution: a pool of TCP seats
/// across registered worker daemons, presenting the same `run_cell`
/// contract as the local [`Supervisor`](crate::supervisor::Supervisor).
#[derive(Debug)]
pub struct Fleet {
    inner: Arc<FleetInner>,
    /// The background reprobe thread, joined on drop.
    reprobe: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.reprobe.take() {
            let _ = handle.join();
        }
    }
}

/// The shared state behind a [`Fleet`]: dispatchers, hedge copies, and
/// the reprobe thread all hold it through an `Arc`.
#[derive(Debug)]
struct FleetInner {
    config: FleetConfig,
    nodes: Vec<NodeState>,
    /// `slot_nodes[i]` is the node index slot `i` belongs to (immutable
    /// after construction, so routing can consult it without slot locks).
    slot_nodes: Vec<usize>,
    slots: Vec<Mutex<SlotConn>>,
    free: Mutex<Vec<usize>>,
    available: Condvar,
    next_id: AtomicU64,
    node_losses: AtomicU64,
    cells_redispatched: AtomicU64,
    node_readmissions: AtomicU64,
    cells_hedged: AtomicU64,
    hedge_wins: AtomicU64,
    readmission_downtime_ms: AtomicU64,
    /// `(count, total_ms)` of observed cell completions, feeding the
    /// `auto` hedge threshold.
    completions: Mutex<(u64, u64)>,
    /// Tells the reprobe thread to exit (set when the `Fleet` drops).
    shutdown: AtomicBool,
}

impl Fleet {
    /// Registers with every address in `config`, learning each node's
    /// seat count from its handshake. Unreachable nodes are warned about
    /// and skipped — the fleet sails with whoever showed up.
    ///
    /// # Errors
    ///
    /// Only if *no* node is reachable: an empty fleet cannot run cells.
    pub fn connect(config: FleetConfig) -> io::Result<Fleet> {
        let mut nodes = Vec::new();
        let mut slot_nodes = Vec::new();
        let mut slots = Vec::new();
        for addr in &config.addrs {
            match dial(addr, config.connect_timeout) {
                Ok((stream, seats)) => {
                    let node = nodes.len();
                    nodes.push(NodeState {
                        addr: addr.clone(),
                        health: Mutex::new(HealthCell {
                            state: NodeHealth::Healthy,
                            reprobe_failures: 0,
                            next_reprobe: Instant::now(),
                            lost_at: None,
                            last_probe_error: None,
                        }),
                    });
                    let mut first = Some(stream);
                    for _ in 0..seats.max(1) {
                        slot_nodes.push(node);
                        slots.push(Mutex::new(SlotConn { conn: first.take() }));
                    }
                }
                Err(err) => {
                    eprintln!(
                        "fleet: {addr}: unreachable at startup ({err}); continuing without it"
                    );
                }
            }
        }
        if slots.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "no fleet node is reachable",
            ));
        }
        let free = (0..slots.len()).rev().collect();
        let inner = Arc::new(FleetInner {
            config,
            nodes,
            slot_nodes,
            slots,
            free: Mutex::new(free),
            available: Condvar::new(),
            next_id: AtomicU64::new(1),
            node_losses: AtomicU64::new(0),
            cells_redispatched: AtomicU64::new(0),
            node_readmissions: AtomicU64::new(0),
            cells_hedged: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            readmission_downtime_ms: AtomicU64::new(0),
            completions: Mutex::new((0, 0)),
            shutdown: AtomicBool::new(false),
        });
        let probe = Arc::clone(&inner);
        let reprobe = std::thread::Builder::new()
            .name("fleet-reprobe".to_string())
            .spawn(move || FleetInner::reprobe_loop(&probe))
            .ok();
        Ok(Fleet { inner, reprobe })
    }

    /// Total registered seats (the harness sizes its thread pool to this).
    pub fn workers(&self) -> usize {
        self.inner.slots.len()
    }

    /// Registered nodes and their seat counts, for startup reporting.
    pub fn nodes(&self) -> Vec<(String, usize)> {
        self.inner
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let seats = self.inner.slot_nodes.iter().filter(|&&s| s == i).count();
                (n.addr.clone(), seats)
            })
            .collect()
    }

    /// Each node's current health state, for `/metrics` gauges and the
    /// chaos harness.
    pub fn node_health(&self) -> Vec<(String, NodeHealth)> {
        self.inner
            .nodes
            .iter()
            .map(|n| (n.addr.clone(), n.health()))
            .collect()
    }

    /// Current counters.
    pub fn stats(&self) -> FleetStats {
        let inner = &self.inner;
        FleetStats {
            fleet_workers: inner.slots.len() as u64,
            node_losses: inner.node_losses.load(Ordering::Relaxed),
            cells_redispatched: inner.cells_redispatched.load(Ordering::Relaxed),
            node_readmissions: inner.node_readmissions.load(Ordering::Relaxed),
            cells_hedged: inner.cells_hedged.load(Ordering::Relaxed),
            hedge_wins: inner.hedge_wins.load(Ordering::Relaxed),
            readmission_downtime_ms: inner.readmission_downtime_ms.load(Ordering::Relaxed),
        }
    }

    /// Runs one cell attempt somewhere on the fleet, blocking until a
    /// seat is free. Same contract as the local supervisor's `run_cell`,
    /// plus an optional [`NetFault`] realized at this transport.
    ///
    /// Routing prefers the node picked by the cell's content hash (warm
    /// trace caches), rotated by attempt number so a re-dispatch lands
    /// elsewhere, restricted to nodes not currently marked lost. Within
    /// one attempt, an unreachable node is re-routed around rather than
    /// charged against the retry budget — as long as one node answers,
    /// dead ones cost nothing but a refused dial.
    ///
    /// # Errors
    ///
    /// Typed exactly like the local path: [`CellError::Timeout`] for a
    /// budget preemption (the connection is severed, which kills the
    /// remote child), [`CellError::Crashed`] for silent node loss or a
    /// remotely crashed child, [`CellError::Panic`] /
    /// [`CellError::Transient`] when the remote worker survived and said
    /// so itself.
    #[allow(clippy::too_many_arguments)]
    pub fn run_cell(
        &self,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: Option<WorkerFault>,
        net_fault: Option<NetFault>,
        config: &FrontendConfig,
        attempt: u32,
    ) -> Result<SimStats, CellError> {
        FleetInner::dispatch_cell(
            &self.inner,
            workload,
            trace_len,
            budget_ms,
            fault,
            net_fault,
            config,
            attempt,
        )
    }
}

impl FleetInner {
    /// The dispatch loop behind [`Fleet::run_cell`]. An associated fn
    /// (not a method) because hedging needs to clone the `Arc` into
    /// copy threads.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_cell(
        inner: &Arc<FleetInner>,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: Option<WorkerFault>,
        net_fault: Option<NetFault>,
        config: &FrontendConfig,
        attempt: u32,
    ) -> Result<SimStats, CellError> {
        if attempt > 1 {
            inner.cells_redispatched.fetch_add(1, Ordering::Relaxed);
        }
        let key = crate::fault::fnv1a(&format!(
            "{}\u{0}{}\u{0}{}",
            workload.name,
            trace_len,
            crate::harness::config_fingerprint(config)
        ));
        let mut last = CellError::Transient {
            message: "fleet had no node to dispatch to".to_string(),
            attempts: attempt,
        };
        // One re-route per registered node, so a single attempt walks the
        // whole fleet before conceding.
        for round in 0..inner.nodes.len() {
            let preferred = inner.route(key, attempt, round);
            let index = inner.acquire_slot(preferred);
            let outcome = match inner.hedge_threshold() {
                // Hedging disabled (or not yet armed): the exact
                // synchronous path, no thread, no channel.
                None => {
                    let abort = AtomicBool::new(false);
                    let out = inner.run_on_slot(
                        index, workload, trace_len, budget_ms, &fault, &net_fault, config,
                        attempt, &abort,
                    );
                    inner.release_slot(index);
                    out
                }
                Some(after) => Self::run_hedged(
                    inner, index, after, workload, trace_len, budget_ms, &fault, &net_fault,
                    config, attempt,
                ),
            };
            match outcome {
                Ok(stats) => return Ok(stats),
                Err(SlotOutcome::Unreachable(err)) => last = err,
                Err(SlotOutcome::Final(err)) => return Err(err),
                // Defensive: a fully cancelled dispatch concedes the
                // round and re-routes.
                Err(SlotOutcome::Cancelled) => {
                    last = CellError::Transient {
                        message: "cell dispatch was cancelled mid-flight".to_string(),
                        attempts: attempt,
                    };
                }
            }
        }
        Err(last)
    }

    /// Picks the preferred node for `(content key, attempt, re-route
    /// round)`: hash-routed over nodes not marked lost, falling back to
    /// the full set (a probe that re-discovers recovered nodes) when
    /// every node is marked lost.
    fn route(&self, key: u64, attempt: u32, round: usize) -> usize {
        let live: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].routable())
            .collect();
        let pool: &[usize] = if live.is_empty() {
            &self.slot_nodes // never empty; values are node indices
        } else {
            &live
        };
        let spin = key
            .wrapping_add(u64::from(attempt.saturating_sub(1)))
            .wrapping_add(round as u64);
        pool[(spin % pool.len() as u64) as usize]
    }

    fn acquire_slot(&self, preferred: usize) -> usize {
        let mut free = lock(&self.free);
        loop {
            if let Some(pos) = free.iter().rposition(|&i| self.slot_nodes[i] == preferred) {
                return free.remove(pos);
            }
            // Any seat on a routable node beats waiting.
            if let Some(pos) = free
                .iter()
                .rposition(|&i| self.nodes[self.slot_nodes[i]].routable())
            {
                return free.remove(pos);
            }
            // Every free seat is on a lost node. Probe one only when the
            // whole fleet is marked lost (a last-resort backstop under
            // the background reprobe); while any node is routable,
            // waiting for one of its busy seats beats burning the retry
            // budget on refused dials.
            let any_live = (0..self.nodes.len()).any(|n| self.nodes[n].routable());
            if !any_live {
                if let Some(index) = free.pop() {
                    return index;
                }
            }
            free = self
                .available
                .wait(free)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn release_slot(&self, index: usize) {
        lock(&self.free).push(index);
        self.available.notify_one();
    }

    /// Advances `node` through the health machine on a failure:
    /// `Healthy → Suspect` (books one loss), `Suspect → Lost` (same
    /// outage, no extra loss; arms the reprobe), `Probation → Lost`
    /// (relapse: books a fresh loss), `Lost` stays put.
    fn mark_failure(&self, node: usize) {
        let mut cell = lock(&self.nodes[node].health);
        match cell.state {
            NodeHealth::Healthy => {
                cell.state = NodeHealth::Suspect;
                cell.lost_at = Some(Instant::now());
                self.node_losses.fetch_add(1, Ordering::Relaxed);
            }
            NodeHealth::Suspect => {
                cell.state = NodeHealth::Lost;
                cell.reprobe_failures = 0;
                cell.next_reprobe = Instant::now() + self.config.reprobe_base;
                if cell.lost_at.is_none() {
                    cell.lost_at = Some(Instant::now());
                }
            }
            NodeHealth::Probation => {
                cell.state = NodeHealth::Lost;
                cell.reprobe_failures = 0;
                cell.next_reprobe = Instant::now() + self.config.reprobe_base;
                cell.lost_at = Some(Instant::now());
                self.node_losses.fetch_add(1, Ordering::Relaxed);
            }
            NodeHealth::Lost => {}
        }
    }

    /// A successful dial readmits a `Lost` node (this is the whole-fleet
    /// backstop path; the reprobe thread readmits through the same gate).
    fn mark_dialed(&self, node: usize) {
        let mut cell = lock(&self.nodes[node].health);
        if cell.state == NodeHealth::Lost {
            self.readmit_locked(node, &mut cell);
        }
    }

    /// A completed reply is the strongest health signal: full promotion.
    fn mark_replied(&self, node: usize) {
        let mut cell = lock(&self.nodes[node].health);
        if cell.state == NodeHealth::Lost {
            self.readmit_locked(node, &mut cell);
        }
        cell.state = NodeHealth::Healthy;
        cell.lost_at = None;
        cell.last_probe_error = None;
    }

    /// Readmission bookkeeping, with `node`'s health lock already held:
    /// `Lost → Probation`, one readmission booked, downtime accounted.
    fn readmit_locked(&self, node: usize, cell: &mut HealthCell) {
        cell.state = NodeHealth::Probation;
        cell.reprobe_failures = 0;
        cell.last_probe_error = None;
        let down_ms = cell
            .lost_at
            .take()
            .map_or(1, |at| (at.elapsed().as_millis() as u64).max(1));
        self.readmission_downtime_ms
            .fetch_add(down_ms, Ordering::Relaxed);
        self.node_readmissions.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "fleet: {}: readmitted on probation after {down_ms}ms down",
            self.nodes[node].addr
        );
        // Wake dispatchers parked because every routable seat was busy.
        self.available.notify_all();
    }

    /// Books a failure of `node` and returns the retryable error that
    /// sends the cell back through the harness's retry loop.
    fn node_lost(&self, node: usize, attempt: u32) -> CellError {
        self.mark_failure(node);
        CellError::Crashed {
            signal: None,
            code: None,
            attempts: attempt,
        }
    }

    /// The background reprobe: every lost node is re-dialed on a
    /// deterministic exponential backoff (`reprobe_base · 2^min(n, 5)`);
    /// a probe runs the full hello/welcome handshake, so a restarted
    /// daemon with a drifted build fingerprint is refused by name and
    /// stays lost instead of being silently readmitted.
    fn reprobe_loop(inner: &Arc<FleetInner>) {
        const TICK: Duration = Duration::from_millis(25);
        while !inner.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(TICK);
            for (i, node) in inner.nodes.iter().enumerate() {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let due = {
                    let cell = lock(&node.health);
                    cell.state == NodeHealth::Lost && Instant::now() >= cell.next_reprobe
                };
                if !due {
                    continue;
                }
                match dial(&node.addr, inner.config.connect_timeout) {
                    Ok((_probe_stream, _seats)) => {
                        // Handshake verified; the probe stream itself is
                        // dropped — seats redial lazily on next dispatch.
                        let mut cell = lock(&node.health);
                        if cell.state == NodeHealth::Lost {
                            inner.readmit_locked(i, &mut cell);
                        }
                    }
                    Err(err) => {
                        let mut cell = lock(&node.health);
                        if cell.state != NodeHealth::Lost {
                            continue;
                        }
                        cell.reprobe_failures = cell.reprobe_failures.saturating_add(1);
                        let exp = cell.reprobe_failures.min(5);
                        cell.next_reprobe =
                            Instant::now() + inner.config.reprobe_base * (1u32 << exp);
                        let message = err.to_string();
                        if cell.last_probe_error.as_deref() != Some(message.as_str()) {
                            eprintln!(
                                "fleet: {}: reprobe failed ({message}); backing off",
                                node.addr
                            );
                            cell.last_probe_error = Some(message);
                        }
                    }
                }
            }
        }
    }

    /// The in-flight duration past which a cell is hedged, or `None`
    /// when hedging is off (or `auto` has not yet observed enough
    /// completions to arm).
    fn hedge_threshold(&self) -> Option<Duration> {
        match self.config.hedge {
            HedgePolicy::Off => None,
            HedgePolicy::After(after) => Some(after),
            HedgePolicy::Auto => {
                let (count, total_ms) = *lock(&self.completions);
                if count < 3 {
                    return None;
                }
                Some(Duration::from_millis((3 * (total_ms / count)).max(200)))
            }
        }
    }

    /// Feeds the `auto` hedge threshold.
    fn observe_completion(&self, took: Duration) {
        let mut c = lock(&self.completions);
        c.0 += 1;
        c.1 += took.as_millis() as u64;
    }

    /// Non-blocking: a free seat on a routable node *other than* `avoid`
    /// (the primary's node), for the speculative copy. `None` when the
    /// fleet has nowhere better to send it — hedging is then skipped,
    /// never queued, because a queued hedge would steal a seat a fresh
    /// cell could use.
    fn try_acquire_hedge_seat(&self, avoid: usize) -> Option<usize> {
        let mut free = lock(&self.free);
        let pos = free.iter().rposition(|&i| {
            let node = self.slot_nodes[i];
            node != avoid
                && matches!(
                    self.nodes[node].health(),
                    NodeHealth::Healthy | NodeHealth::Probation
                )
        })?;
        Some(free.remove(pos))
    }

    /// Spawns one copy of a cell on seat `index`; the thread releases the
    /// seat itself and reports `(is_hedge, outcome)` on `tx`.
    #[allow(clippy::too_many_arguments)]
    fn spawn_copy(
        inner: &Arc<FleetInner>,
        index: usize,
        is_hedge: bool,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: Option<WorkerFault>,
        net_fault: Option<NetFault>,
        config: &FrontendConfig,
        attempt: u32,
        abort: Arc<AtomicBool>,
        tx: mpsc::Sender<(bool, Result<SimStats, SlotOutcome>)>,
    ) {
        let inner = Arc::clone(inner);
        let workload = workload.clone();
        let config = config.clone();
        std::thread::spawn(move || {
            let outcome = inner.run_on_slot(
                index, &workload, trace_len, budget_ms, &fault, &net_fault, &config, attempt,
                &abort,
            );
            inner.release_slot(index);
            // The receiver is gone once a winner returned; losers'
            // reports are deliberately discarded.
            let _ = tx.send((is_hedge, outcome));
        });
    }

    /// Runs a cell with hedging armed: the primary copy goes out on the
    /// already-acquired seat `index`; if no result lands within `after`,
    /// a speculative copy is launched on a different healthy node and
    /// the first completed result wins (byte-identical by construction —
    /// the simulator is deterministic and cells are content-addressed).
    /// The loser is aborted, which severs its connection — the existing
    /// remote-kill path — and is never counted as a node failure.
    #[allow(clippy::too_many_arguments)]
    fn run_hedged(
        inner: &Arc<FleetInner>,
        index: usize,
        after: Duration,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: &Option<WorkerFault>,
        net_fault: &Option<NetFault>,
        config: &FrontendConfig,
        attempt: u32,
    ) -> Result<SimStats, SlotOutcome> {
        let (tx, rx) = mpsc::channel();
        let primary_node = inner.slot_nodes[index];
        let primary_abort = Arc::new(AtomicBool::new(false));
        Self::spawn_copy(
            inner,
            index,
            false,
            workload,
            trace_len,
            budget_ms,
            fault.clone(),
            net_fault.clone(),
            config,
            attempt,
            Arc::clone(&primary_abort),
            tx.clone(),
        );
        let deadline = Instant::now() + after;
        let mut hedge_abort: Option<Arc<AtomicBool>> = None;
        let mut hedge_decided = false;
        let mut outstanding = 1u32;
        let mut primary_result: Option<SlotOutcome> = None;
        let mut hedge_result: Option<SlotOutcome> = None;
        while outstanding > 0 {
            let received = if hedge_decided {
                rx.recv().map_err(|_| ())
            } else {
                match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                    Ok(message) => Ok(message),
                    Err(RecvTimeoutError::Timeout) => {
                        // The primary is slow. Hedge once, if a seat on
                        // another healthy node is free right now.
                        hedge_decided = true;
                        if let Some(seat) = inner.try_acquire_hedge_seat(primary_node) {
                            inner.cells_hedged.fetch_add(1, Ordering::Relaxed);
                            let abort = Arc::new(AtomicBool::new(false));
                            // The hedge copy runs with a clean link:
                            // injected net faults model the *primary's*
                            // path, and hedging exists to escape it.
                            Self::spawn_copy(
                                inner,
                                seat,
                                true,
                                workload,
                                trace_len,
                                budget_ms,
                                fault.clone(),
                                None,
                                config,
                                attempt,
                                Arc::clone(&abort),
                                tx.clone(),
                            );
                            hedge_abort = Some(abort);
                            outstanding += 1;
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(()),
                }
            };
            let Ok((is_hedge, outcome)) = received else {
                break;
            };
            outstanding -= 1;
            match outcome {
                Ok(stats) => {
                    // First completed result wins; abort the other copy.
                    // The loser's own result (even a second `Ok`) goes to
                    // a dropped receiver, so nothing is double-counted.
                    primary_abort.store(true, Ordering::Relaxed);
                    if let Some(abort) = &hedge_abort {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if is_hedge {
                        inner.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(stats);
                }
                Err(outcome) => {
                    if is_hedge {
                        hedge_result = Some(outcome);
                    } else {
                        primary_result = Some(outcome);
                    }
                }
            }
        }
        // Both copies failed (or only the primary ran and failed): the
        // primary's verdict speaks for the cell, except that a concrete
        // `Final` outcome from either copy beats an `Unreachable`.
        Err(match (primary_result, hedge_result) {
            (Some(primary @ SlotOutcome::Final(_)), _) => primary,
            (_, Some(hedge @ SlotOutcome::Final(_))) => hedge,
            (Some(primary), _) => primary,
            (_, Some(hedge)) => hedge,
            (None, None) => SlotOutcome::Unreachable(CellError::Transient {
                message: "hedged dispatch lost both copies".to_string(),
                attempts: attempt,
            }),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_on_slot(
        &self,
        index: usize,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: &Option<WorkerFault>,
        net_fault: &Option<NetFault>,
        config: &FrontendConfig,
        attempt: u32,
        abort: &AtomicBool,
    ) -> Result<SimStats, SlotOutcome> {
        let node_index = self.slot_nodes[index];
        let mut slot = lock(&self.slots[index]);
        if abort.load(Ordering::Relaxed) {
            return Err(SlotOutcome::Cancelled);
        }
        if slot.conn.is_none() {
            match dial(&self.nodes[node_index].addr, self.config.connect_timeout) {
                Ok((stream, _seats)) => {
                    slot.conn = Some(stream);
                    self.mark_dialed(node_index);
                }
                Err(err) => {
                    // Could not even reach the node: count a failure so
                    // routing steers away, and let dispatch re-route this
                    // same attempt.
                    self.mark_failure(node_index);
                    return Err(SlotOutcome::Unreachable(CellError::Transient {
                        message: format!(
                            "fleet dial {} failed: {err}",
                            self.nodes[node_index].addr
                        ),
                        attempts: attempt,
                    }));
                }
            }
        }

        // Realize pre-dispatch network faults.
        match net_fault {
            Some(NetFault::Slowlink(delay)) => std::thread::sleep(*delay),
            Some(NetFault::Drop) => {
                slot.conn = None;
                return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
            }
            _ => {}
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let stream = slot.conn.as_mut().expect("connection just ensured");
        let sent = if matches!(net_fault, Some(NetFault::TruncFrame)) {
            // Corruption in flight: a complete frame whose body is
            // garbage bytes. The daemon must reject it and close; we
            // recover below through the ordinary loss path.
            let garbage = b"\xff\xfe deliberately corrupt fleet frame";
            let mut raw = Vec::with_capacity(4 + garbage.len());
            raw.extend_from_slice(&(garbage.len() as u32).to_be_bytes());
            raw.extend_from_slice(garbage);
            stream.write_all(&raw).and_then(|()| stream.flush())
        } else {
            let request = RunRequest {
                id,
                workload: workload.clone(),
                trace_len,
                budget_ms,
                fault: fault.clone(),
                config: config.clone(),
            };
            net::write_frame(stream, &request.to_json())
        };
        if sent.is_err() {
            slot.conn = None;
            return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
        }

        let budget_deadline =
            (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));
        let mut heartbeat_deadline = Instant::now() + self.config.heartbeat_timeout;

        // A partition delivers nothing — not the heartbeats that are in
        // fact arriving, not even the peer's FIN. Going fully deaf makes
        // the heartbeat deadline fire exactly as a real partition would.
        if matches!(net_fault, Some(NetFault::Partition)) {
            loop {
                std::thread::sleep(POLL);
                if abort.load(Ordering::Relaxed) {
                    slot.conn = None; // severing is the remote SIGKILL
                    return Err(SlotOutcome::Cancelled);
                }
                let now = Instant::now();
                if budget_deadline.is_some_and(|deadline| now >= deadline) {
                    slot.conn = None;
                    return Err(SlotOutcome::Final(CellError::Timeout { budget_ms }));
                }
                if now >= heartbeat_deadline {
                    slot.conn = None;
                    return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                }
            }
        }

        loop {
            // Checked every iteration, not just on read timeouts: a
            // heartbeating-but-stalled peer keeps frames flowing, and a
            // cancelled hedge loser must still step aside promptly.
            if abort.load(Ordering::Relaxed) {
                slot.conn = None; // severing is the remote SIGKILL
                return Err(SlotOutcome::Cancelled);
            }
            let stream = slot.conn.as_mut().expect("connection live while waiting");
            match net::read_frame(stream) {
                Ok(Some(frame)) => {
                    if is_bye(&frame) {
                        // Orderly drain, not a crash: retire the seat's
                        // connection without charging a node loss.
                        slot.conn = None;
                        return Err(SlotOutcome::Final(CellError::Transient {
                            message: format!(
                                "worker daemon {} is draining; cell re-dispatched",
                                self.nodes[node_index].addr
                            ),
                            attempts: attempt,
                        }));
                    }
                    match WorkerReply::from_json(&frame) {
                        Some(WorkerReply::Heartbeat) => {
                            heartbeat_deadline = Instant::now() + self.config.heartbeat_timeout;
                        }
                        Some(WorkerReply::Ok { id: rid, stats }) if rid == id => {
                            self.mark_replied(node_index);
                            self.observe_completion(started.elapsed());
                            return Ok(*stats);
                        }
                        Some(WorkerReply::Err {
                            id: rid,
                            kind,
                            message,
                            signal,
                            code,
                        }) if rid == id => {
                            return Err(SlotOutcome::Final(if kind == "crashed" {
                                // The remote child died; the daemon told
                                // us so and will close this connection.
                                // Typed like a local crash — retryable.
                                slot.conn = None;
                                CellError::Crashed {
                                    signal,
                                    code,
                                    attempts: attempt,
                                }
                            } else if kind == "panic" {
                                CellError::Panic {
                                    message,
                                    attempts: attempt,
                                }
                            } else {
                                CellError::Transient {
                                    message,
                                    attempts: attempt,
                                }
                            }));
                        }
                        // A reply for a superseded id (kill raced a
                        // completion): drop it.
                        Some(_) => {}
                        None => {
                            // The peer speaks frames but not our protocol:
                            // a corrupt or hostile stream. Sever it.
                            slot.conn = None;
                            return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                        }
                    }
                }
                Ok(None) => {
                    slot.conn = None;
                    return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                }
                Err(err) if err.is_timeout() => {
                    if abort.load(Ordering::Relaxed) {
                        // This copy lost a hedge race: sever the
                        // connection (the remote SIGKILL) and step aside
                        // without charging the node a failure.
                        slot.conn = None;
                        return Err(SlotOutcome::Cancelled);
                    }
                    let now = Instant::now();
                    if budget_deadline.is_some_and(|deadline| now >= deadline) {
                        // Severing the connection is the remote SIGKILL:
                        // the daemon kills the child when its client
                        // vanishes. Intentional preemption, not a loss.
                        slot.conn = None;
                        return Err(SlotOutcome::Final(CellError::Timeout { budget_ms }));
                    }
                    if now >= heartbeat_deadline {
                        slot.conn = None;
                        return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                    }
                }
                Err(_) => {
                    slot.conn = None;
                    return Err(SlotOutcome::Final(self.node_lost(node_index, attempt)));
                }
            }
        }
    }
}

/// Dials one node and completes the registration handshake, returning the
/// stream (read deadline set to the poll quantum) and the node's
/// advertised seat count.
fn dial(addr: &str, timeout: Duration) -> io::Result<(TcpStream, usize)> {
    let mut stream = net::connect(addr, timeout)?;
    net::write_frame(&mut stream, &Hello::current().to_json())?;
    let doc = net::read_frame(&mut stream)
        .map_err(io::Error::from)?
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionReset,
                "node closed during handshake",
            )
        })?;
    match Welcome::from_json(&doc) {
        Some(Welcome::Accepted { slots }) => {
            stream.set_read_timeout(Some(POLL))?;
            Ok((stream, slots))
        }
        Some(Welcome::Refused { reason }) => Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("node refused registration: {reason}"),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "node answered the handshake with an unintelligible frame",
        )),
    }
}

#[cfg(unix)]
fn exit_signal(status: &ExitStatus) -> Option<i32> {
    std::os::unix::process::ExitStatusExt::signal(status)
}

#[cfg(not(unix))]
fn exit_signal(_status: &ExitStatus) -> Option<i32> {
    None
}

/// What the child's stdout reader thread forwards to the proxy loop.
enum ChildEvent {
    /// A raw frame from the child, forwarded to the client verbatim.
    Frame(Json),
    /// The child exited (or was killed).
    Eof,
    /// The pipe broke mid-frame — treated like a crash.
    Failed(#[allow(dead_code)] io::Error),
}

/// A supervised child worker proxied to one fleet connection.
struct ProxyChild {
    child: Child,
    stdin: ChildStdin,
    events: Receiver<ChildEvent>,
    cells_done: u64,
}

/// Self-execs the current binary as a PR 5 worker, exactly as the local
/// supervisor does.
fn spawn_proxy_child() -> io::Result<ProxyChild> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("worker")
        .env(crate::worker::WORKER_ENV, "1")
        // A daemon launched via the env entry must not leak its listen
        // address into children, or they would become daemons too.
        .env_remove(crate::worker::WORKERD_LISTEN_ENV)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let stdin = child.stdin.take().expect("stdin was piped");
    let mut stdout = child.stdout.take().expect("stdout was piped");
    let (sender, events) = mpsc::channel();
    std::thread::spawn(move || loop {
        let event = match read_frame(&mut stdout) {
            Ok(Some(frame)) => ChildEvent::Frame(frame),
            Ok(None) => ChildEvent::Eof,
            Err(err) => ChildEvent::Failed(err),
        };
        let terminal = !matches!(event, ChildEvent::Frame(_));
        if sender.send(event).is_err() || terminal {
            return;
        }
    });
    Ok(ProxyChild {
        child,
        stdin,
        events,
        cells_done: 0,
    })
}

/// Reaps a child that is already gone (or nearly); SIGKILL on a zombie is
/// a no-op and preserves the recorded exit status.
fn reap_child(proxy: ProxyChild) -> io::Result<ExitStatus> {
    let mut child = proxy.child;
    let _ = child.kill();
    child.wait()
}

/// SIGKILL without ceremony (client vanished; nobody to report to).
fn kill_child(proxy: ProxyChild) {
    let mut child = proxy.child;
    let _ = child.kill();
    let _ = child.wait();
}

/// Graceful retirement: close stdin (EOF ends the worker loop), give it a
/// moment, escalate to SIGKILL if it will not leave.
fn retire_child(proxy: ProxyChild) {
    let ProxyChild {
        mut child, stdin, ..
    } = proxy;
    drop(stdin);
    for _ in 0..50 {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => break,
        }
    }
    let _ = child.kill();
    let _ = child.wait();
}

/// Builds the `crashed` reply a daemon sends when its proxied child died
/// under a cell, carrying the exit evidence for remote classification.
fn crash_reply(id: u64, status: io::Result<ExitStatus>) -> Json {
    let (signal, code, message) = match status {
        Ok(status) => {
            let signal = exit_signal(&status);
            let code = status.code();
            let message = match (signal, code) {
                (Some(sig), _) => format!("remote worker killed by signal {sig}"),
                (None, Some(code)) => format!("remote worker exited with code {code}"),
                (None, None) => "remote worker died without a status".to_string(),
            };
            (signal, code, message)
        }
        Err(_) => (
            None,
            None,
            "remote worker died without a status".to_string(),
        ),
    };
    WorkerReply::Err {
        id,
        kind: "crashed".to_string(),
        message,
        signal,
        code,
    }
    .to_json()
}

/// The id that concludes a cell, if `frame` is a final (non-heartbeat)
/// reply.
fn concluding_id(frame: &Json) -> Option<u64> {
    match WorkerReply::from_json(frame) {
        Some(WorkerReply::Ok { id, .. }) | Some(WorkerReply::Err { id, .. }) => Some(id),
        _ => None,
    }
}

/// The `fdip workerd` serve loop: accepts fleet connections on
/// `listener`, advertising `slots` seats per handshake, until `shutdown`
/// returns true — then drains (in-flight cells finish, idle connections
/// get a `bye`, children retire) and returns.
///
/// Each connection is served on its own thread and proxied to a
/// supervised child worker spawned lazily on its first cell, so a cell
/// that aborts, hangs, or OOMs remotely takes down a disposable child —
/// never the daemon. A vanished client (severed connection) SIGKILLs the
/// child, which is how remote budget preemption works.
///
/// # Errors
///
/// Only listener-level failures; per-connection errors retire that
/// connection and are otherwise absorbed.
pub fn serve_workerd(
    listener: TcpListener,
    slots: usize,
    shutdown: &(dyn Fn() -> bool + Sync),
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let draining = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if shutdown() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let draining = Arc::clone(&draining);
                conns.push(std::thread::spawn(move || {
                    serve_connection(stream, slots, &draining);
                }));
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
        conns.retain(|handle| !handle.is_finished());
    }
    // Drain: no new connections (we stopped accepting), in-flight cells
    // finish, idle connections say goodbye.
    draining.store(true, Ordering::Relaxed);
    for handle in conns {
        let _ = handle.join();
    }
    Ok(())
}

/// One fleet connection: handshake, then proxy cells to a child worker.
fn serve_connection(mut stream: TcpStream, slots: usize, draining: &AtomicBool) {
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(POLL)).is_err()
        || stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT)).is_err()
    {
        return;
    }

    // Handshake, bounded: a peer that won't identify itself gets nothing.
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let hello = loop {
        match net::read_frame(&mut stream) {
            Ok(Some(doc)) => break Hello::from_json(&doc),
            Ok(None) => return,
            Err(err) if err.is_timeout() => {
                if Instant::now() >= deadline || draining.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return, // oversized/truncated/garbage: refuse to guess
        }
    };
    let Some(hello) = hello else { return };
    let fingerprint = net::build_fingerprint();
    if hello.protocol != PROTOCOL_VERSION || hello.fingerprint != fingerprint {
        let reason = format!(
            "version mismatch: peer is {:?} proto {}, daemon is {:?} proto {PROTOCOL_VERSION}",
            hello.fingerprint, hello.protocol, fingerprint
        );
        let _ = net::write_frame(&mut stream, &Welcome::Refused { reason }.to_json());
        return;
    }
    if draining.load(Ordering::Relaxed) {
        let reason = "daemon is draining".to_string();
        let _ = net::write_frame(&mut stream, &Welcome::Refused { reason }.to_json());
        return;
    }
    if net::write_frame(&mut stream, &Welcome::Accepted { slots }.to_json()).is_err() {
        return;
    }

    let mut child: Option<ProxyChild> = None;
    let mut announced = false;
    loop {
        // Idle: wait for the next cell (or the drain signal).
        let doc = match net::read_frame(&mut stream) {
            Ok(Some(doc)) => doc,
            Ok(None) => break, // client closed between cells
            Err(err) if err.is_timeout() => {
                if draining.load(Ordering::Relaxed) {
                    let _ = net::write_frame(&mut stream, &bye_frame());
                    break;
                }
                continue;
            }
            // Corrupt, oversized, or truncated input: never guess at a
            // desynchronized stream — sever it. The client re-dispatches.
            Err(_) => break,
        };
        let Some(request) = RunRequest::from_json(&doc) else {
            break; // valid JSON, wrong protocol: same treatment
        };
        if !announced {
            // Distinguishes a peer that actually dispatches cells from a
            // reprobe, which handshakes and leaves — readmission drills
            // grep for this line.
            announced = true;
            println!("fdip-workerd: serving cells for a registered peer");
        }
        if draining.load(Ordering::Relaxed) {
            let _ = net::write_frame(&mut stream, &bye_frame());
            break;
        }

        if child.is_none() {
            match spawn_proxy_child() {
                Ok(spawned) => child = Some(spawned),
                Err(err) => {
                    let reply = WorkerReply::Err {
                        id: request.id,
                        kind: "transient".to_string(),
                        message: format!("daemon could not spawn a worker: {err}"),
                        signal: None,
                        code: None,
                    };
                    if net::write_frame(&mut stream, &reply.to_json()).is_err() {
                        break;
                    }
                    continue;
                }
            }
        }
        let proxy = child.as_mut().expect("child just ensured");
        if write_frame(&mut proxy.stdin, &doc).is_err() {
            // Child died between cells: report and close; the client
            // redials, getting a fresh connection and a fresh child.
            let status = reap_child(child.take().expect("child present"));
            let _ = net::write_frame(&mut stream, &crash_reply(request.id, status));
            break;
        }

        // Busy: pump the child's frames (heartbeats included) to the
        // client until this cell concludes. Deliberately no drain check
        // here — in-flight cells finish.
        let mut concluded = false;
        loop {
            let proxy = child.as_mut().expect("child live while busy");
            match proxy.events.recv_timeout(POLL) {
                Ok(ChildEvent::Frame(frame)) => {
                    let done = concluding_id(&frame) == Some(request.id);
                    if net::write_frame(&mut stream, &frame).is_err() {
                        // The client vanished mid-cell: that is the remote
                        // SIGKILL (budget preemption or client death).
                        kill_child(child.take().expect("child present"));
                        return;
                    }
                    if done {
                        concluded = true;
                        break;
                    }
                }
                Ok(ChildEvent::Eof) | Ok(ChildEvent::Failed(_)) => {
                    let status = reap_child(child.take().expect("child present"));
                    let _ = net::write_frame(&mut stream, &crash_reply(request.id, status));
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    let status = reap_child(child.take().expect("child present"));
                    let _ = net::write_frame(&mut stream, &crash_reply(request.id, status));
                    break;
                }
            }
        }
        if !concluded {
            break; // child crashed: close so the client starts clean
        }
        let proxy = child.as_mut().expect("child survived the cell");
        proxy.cells_done += 1;
        if proxy.cells_done >= RECYCLE_AFTER {
            retire_child(child.take().expect("child present"));
        }
    }
    if let Some(proxy) = child {
        retire_child(proxy);
    }
}

/// What a [`ResultCache`] scan found, reported at attach time (the
/// `journal restored ...`-style startup line).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Valid entries present.
    pub entries: usize,
    /// Files whose CRC frame or schema did not verify (bit rot), skipped.
    pub corrupt: usize,
}

/// One [`ResultCache`] lookup's outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum CacheLookup {
    /// The cell's finished statistics, verified end to end.
    Hit(Box<SimStats>),
    /// No entry for this cell.
    Miss,
    /// An entry exists but failed its CRC, schema, or key check — skipped
    /// and counted, never trusted.
    Corrupt,
}

/// The cluster-wide content-addressed result cache: one atomically
/// written, CRC32-framed [`JournalEntry`] file per completed cell, keyed
/// by `(workload, trace_len, config-fingerprint)`. Consulted before any
/// dispatch; shared safely between concurrent processes because entries
/// are immutable for a given key (the simulator is deterministic) and
/// writes go through rename.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// Where this cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, workload: &str, trace_len: usize, fingerprint: &str) -> PathBuf {
        let key = crate::fault::fnv1a(&format!("{workload}\u{0}{trace_len}\u{0}{fingerprint}"));
        self.dir.join(format!("{key:016x}.cell"))
    }

    fn decode(contents: &str) -> Option<JournalEntry> {
        let line = contents.lines().next()?;
        let (stored_crc, payload) = split_crc_frame(line)?;
        if crc32(payload.as_bytes()) != stored_crc {
            return None;
        }
        JournalEntry::parse(payload)
    }

    /// Moves a corrupt entry aside to `{name}.cell.corrupt` (atomic
    /// rename, best effort) so the next warm start does not re-parse the
    /// same garbage; the `.corrupt` suffix hides it from [`scan`] while
    /// preserving the bytes for a postmortem. A fresh [`store`] of the
    /// same cell simply recreates the `.cell` file.
    ///
    /// [`scan`]: ResultCache::scan
    /// [`store`]: ResultCache::store
    fn quarantine(path: &Path) {
        let mut target = path.as_os_str().to_os_string();
        target.push(".corrupt");
        let _ = std::fs::rename(path, &target);
    }

    /// Looks up one cell. A hit is verified three ways — CRC32 frame,
    /// schema parse, and a full key comparison (so even an FNV collision
    /// cannot serve the wrong cell's statistics). A corrupt entry is
    /// quarantined on sight.
    pub fn lookup(&self, workload: &str, trace_len: usize, fingerprint: &str) -> CacheLookup {
        let path = self.entry_path(workload, trace_len, fingerprint);
        let contents = match std::fs::read_to_string(&path) {
            Ok(contents) => contents,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(_) => {
                Self::quarantine(&path);
                return CacheLookup::Corrupt;
            }
        };
        match Self::decode(&contents) {
            Some(entry)
                if entry.workload == workload
                    && entry.trace_len == trace_len
                    && entry.config == fingerprint =>
            {
                CacheLookup::Hit(Box::new(entry.stats))
            }
            _ => {
                Self::quarantine(&path);
                CacheLookup::Corrupt
            }
        }
    }

    /// Persists one completed cell, atomically (temp + fsync + rename):
    /// a concurrent reader sees the old entry or the new one, never a
    /// torn file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn store(&self, entry: &JournalEntry) -> io::Result<()> {
        let path = self.entry_path(&entry.workload, entry.trace_len, &entry.config);
        let payload = entry.to_json().to_string();
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        crate::persist::write_atomic(&path, line.as_bytes())
    }

    /// Scans the cache, counting valid and corrupt entries — the warm
    /// start report. Corrupt entries are quarantined as they are found,
    /// so a second scan of an untouched cache reports zero corrupt.
    pub fn scan(&self) -> CacheSummary {
        let mut summary = CacheSummary::default();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return summary;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("cell") {
                continue;
            }
            // Valid means fully valid: frame, schema, *and* addressing —
            // an intact entry sitting under some other cell's key would
            // be refused by `lookup`, so the scan calls it corrupt too.
            let valid = std::fs::read_to_string(&path)
                .ok()
                .and_then(|contents| Self::decode(&contents))
                .is_some_and(|decoded| {
                    self.entry_path(&decoded.workload, decoded.trace_len, &decoded.config) == path
                });
            if valid {
                summary.entries += 1;
            } else {
                Self::quarantine(&path);
                summary.corrupt += 1;
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn canned_stats() -> SimStats {
        SimStats {
            cycles: 123,
            instructions: 456,
            ..SimStats::default()
        }
    }

    fn spec() -> WorkloadSpec {
        use fdip_trace::gen::Profile;
        WorkloadSpec::new(Profile::Server, 1)
    }

    /// A scripted peer standing in for a workerd: accepts `conns`
    /// connections, handshakes each, then runs `script` on it.
    fn fake_node(
        conns: usize,
        script: impl Fn(usize, &mut TcpStream) + Send + 'static,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for i in 0..conns {
                let (mut stream, _) = listener.accept().unwrap();
                let doc = net::read_frame(&mut stream).unwrap().unwrap();
                assert!(Hello::from_json(&doc).is_some());
                net::write_frame(&mut stream, &Welcome::Accepted { slots: 1 }.to_json()).unwrap();
                script(i, &mut stream);
            }
        });
        (addr, handle)
    }

    fn tiny_config(addrs: Vec<String>) -> FleetConfig {
        FleetConfig {
            addrs,
            connect_timeout: Duration::from_secs(2),
            heartbeat_timeout: Duration::from_millis(400),
            reprobe_base: Duration::from_millis(50),
            hedge: HedgePolicy::Off,
        }
    }

    #[test]
    fn fleet_runs_a_cell_against_a_node() {
        let (addr, node) = fake_node(1, |_, stream| {
            let doc = net::read_frame(stream).unwrap().unwrap();
            let request = RunRequest::from_json(&doc).expect("a run request");
            net::write_frame(stream, &WorkerReply::Heartbeat.to_json()).unwrap();
            let reply = WorkerReply::Ok {
                id: request.id,
                stats: Box::new(canned_stats()),
            };
            net::write_frame(stream, &reply.to_json()).unwrap();
        });
        let fleet = Fleet::connect(tiny_config(vec![addr.clone()])).unwrap();
        assert_eq!(fleet.workers(), 1);
        assert_eq!(fleet.nodes(), vec![(addr, 1)]);
        let stats = fleet
            .run_cell(&spec(), 1000, 0, None, None, &FrontendConfig::default(), 1)
            .unwrap();
        assert_eq!(stats, canned_stats());
        // With `HedgePolicy::Off` the dispatch is provably inert: every
        // hedge-related counter stays exactly zero.
        assert_eq!(
            fleet.stats(),
            FleetStats {
                fleet_workers: 1,
                node_losses: 0,
                cells_redispatched: 0,
                node_readmissions: 0,
                cells_hedged: 0,
                hedge_wins: 0,
                readmission_downtime_ms: 0,
            }
        );
        assert_eq!(fleet.node_health()[0].1, NodeHealth::Healthy);
        node.join().unwrap();
    }

    #[test]
    fn a_node_closing_mid_cell_is_one_loss_and_a_redial_recovers() {
        let (addr, node) = fake_node(2, |conn, stream| {
            let doc = net::read_frame(stream).unwrap().unwrap();
            let request = RunRequest::from_json(&doc).expect("a run request");
            if conn == 0 {
                return; // die mid-cell: the client must classify a loss
            }
            let reply = WorkerReply::Ok {
                id: request.id,
                stats: Box::new(canned_stats()),
            };
            net::write_frame(stream, &reply.to_json()).unwrap();
        });
        let fleet = Fleet::connect(tiny_config(vec![addr])).unwrap();
        let config = FrontendConfig::default();
        let err = fleet
            .run_cell(&spec(), 1000, 0, None, None, &config, 1)
            .unwrap_err();
        assert!(
            matches!(err, CellError::Crashed { .. }),
            "node loss must be retryable Crashed, got {err:?}"
        );
        assert!(err.retryable());
        // The retry (attempt 2) redials and succeeds.
        let stats = fleet
            .run_cell(&spec(), 1000, 0, None, None, &config, 2)
            .unwrap();
        assert_eq!(stats, canned_stats());
        let stats = fleet.stats();
        assert_eq!(stats.node_losses, 1);
        assert_eq!(stats.cells_redispatched, 1);
        node.join().unwrap();
    }

    #[test]
    fn partition_fault_trips_the_heartbeat_deadline() {
        let (addr, node) = fake_node(1, |_, stream| {
            let doc = net::read_frame(stream).unwrap().unwrap();
            let request = RunRequest::from_json(&doc).expect("a run request");
            // The node answers normally — the *client* is partitioned.
            let reply = WorkerReply::Ok {
                id: request.id,
                stats: Box::new(canned_stats()),
            };
            let _ = net::write_frame(stream, &reply.to_json());
        });
        let fleet = Fleet::connect(tiny_config(vec![addr])).unwrap();
        let start = Instant::now();
        let err = fleet
            .run_cell(
                &spec(),
                1000,
                0,
                None,
                Some(NetFault::Partition),
                &FrontendConfig::default(),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, CellError::Crashed { .. }), "{err:?}");
        assert!(
            start.elapsed() >= Duration::from_millis(350),
            "partition must be detected by the heartbeat deadline, not eagerly"
        );
        assert_eq!(fleet.stats().node_losses, 1);
        node.join().unwrap();
    }

    #[test]
    fn drop_fault_severs_before_dispatch() {
        let (addr, node) = fake_node(1, |_, stream| {
            // Nothing should arrive: severed before dispatch. Read until
            // the client closes.
            while let Ok(Some(_)) = net::read_frame(stream) {}
        });
        let fleet = Fleet::connect(tiny_config(vec![addr])).unwrap();
        let err = fleet
            .run_cell(
                &spec(),
                1000,
                0,
                None,
                Some(NetFault::Drop),
                &FrontendConfig::default(),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, CellError::Crashed { .. }), "{err:?}");
        assert_eq!(fleet.stats().node_losses, 1);
        drop(fleet); // closes the connection so the node thread ends
        node.join().unwrap();
    }

    #[test]
    fn a_lost_node_is_reprobed_and_readmitted_after_restart() {
        // Phase 1: a node that dies mid-cell twice, walking the health
        // machine Healthy → Suspect → Lost. The listener then drops, so
        // reprobes are refused until the "restart".
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let phase1 = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let doc = net::read_frame(&mut stream).unwrap().unwrap();
                assert!(Hello::from_json(&doc).is_some());
                net::write_frame(&mut stream, &Welcome::Accepted { slots: 1 }.to_json())
                    .unwrap();
                // Die as soon as a cell arrives.
                let _ = net::read_frame(&mut stream);
            }
        });
        let fleet = Fleet::connect(tiny_config(vec![addr.clone()])).unwrap();
        let config = FrontendConfig::default();
        for attempt in 1..=2 {
            let err = fleet
                .run_cell(&spec(), 1000, 0, None, None, &config, attempt)
                .unwrap_err();
            assert!(err.retryable(), "{err:?}");
        }
        phase1.join().unwrap();
        assert_eq!(fleet.node_health(), vec![(addr.clone(), NodeHealth::Lost)]);

        // Phase 2: "restart the daemon" on the same address. Probe
        // connections handshake and leave; a real dispatch gets served.
        std::thread::sleep(Duration::from_millis(80));
        let listener = TcpListener::bind(&addr).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let phase2 = std::thread::spawn(move || {
            listener.set_nonblocking(true).unwrap();
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let Ok(Some(doc)) = net::read_frame(&mut stream) else {
                            continue;
                        };
                        if Hello::from_json(&doc).is_none() {
                            continue;
                        }
                        if net::write_frame(
                            &mut stream,
                            &Welcome::Accepted { slots: 1 }.to_json(),
                        )
                        .is_err()
                        {
                            continue;
                        }
                        if let Ok(Some(doc)) = net::read_frame(&mut stream) {
                            if let Some(request) = RunRequest::from_json(&doc) {
                                let reply = WorkerReply::Ok {
                                    id: request.id,
                                    stats: Box::new(canned_stats()),
                                };
                                let _ = net::write_frame(&mut stream, &reply.to_json());
                            }
                        }
                    }
                    Err(ref err) if err.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });

        // The background reprobe must readmit within its backoff window.
        let deadline = Instant::now() + Duration::from_secs(5);
        while fleet.stats().node_readmissions == 0 {
            assert!(Instant::now() < deadline, "node was never readmitted");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(fleet.node_health(), vec![(addr.clone(), NodeHealth::Probation)]);
        let stats = fleet
            .run_cell(&spec(), 1000, 0, None, None, &config, 3)
            .unwrap();
        assert_eq!(stats, canned_stats());
        assert_eq!(fleet.node_health(), vec![(addr, NodeHealth::Healthy)]);
        let stats = fleet.stats();
        assert_eq!(stats.node_losses, 1, "one outage, one booked loss");
        assert_eq!(stats.node_readmissions, 1);
        assert!(stats.readmission_downtime_ms > 0);
        stop.store(true, Ordering::Relaxed);
        phase2.join().unwrap();
    }

    #[test]
    fn hedged_dispatch_races_a_stalled_node_and_the_first_result_wins() {
        // Two one-seat nodes; whichever receives the cell first stalls
        // (heartbeating, so liveness never trips), the other answers.
        let claimed = Arc::new(AtomicBool::new(false));
        let make = |claimed: Arc<AtomicBool>| {
            fake_node(1, move |_, stream| {
                let doc = net::read_frame(stream).unwrap().unwrap();
                let request = RunRequest::from_json(&doc).expect("a run request");
                if !claimed.swap(true, Ordering::SeqCst) {
                    // Stall until the hedge wins and our link is severed.
                    loop {
                        if net::write_frame(stream, &WorkerReply::Heartbeat.to_json()).is_err() {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
                let reply = WorkerReply::Ok {
                    id: request.id,
                    stats: Box::new(canned_stats()),
                };
                let _ = net::write_frame(stream, &reply.to_json());
            })
        };
        let (addr_a, node_a) = make(Arc::clone(&claimed));
        let (addr_b, node_b) = make(claimed);
        let config = FleetConfig {
            addrs: vec![addr_a, addr_b],
            connect_timeout: Duration::from_secs(2),
            heartbeat_timeout: Duration::from_secs(5),
            reprobe_base: Duration::from_millis(50),
            hedge: HedgePolicy::After(Duration::from_millis(150)),
        };
        let fleet = Fleet::connect(config).unwrap();
        let start = Instant::now();
        let stats = fleet
            .run_cell(&spec(), 1000, 0, None, None, &FrontendConfig::default(), 1)
            .unwrap();
        assert_eq!(stats, canned_stats());
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "the hedge must beat the 5s heartbeat deadline, took {:?}",
            start.elapsed()
        );
        let stats = fleet.stats();
        assert_eq!(stats.cells_hedged, 1);
        assert_eq!(stats.hedge_wins, 1);
        assert_eq!(
            stats.node_losses, 0,
            "a cancelled hedge loser is not a node failure"
        );
        drop(fleet); // severs the stalled node's link so its loop exits
        node_a.join().unwrap();
        node_b.join().unwrap();
    }

    #[test]
    fn an_unreachable_fleet_is_an_error_and_a_refusal_names_its_reason() {
        let err = Fleet::connect(tiny_config(vec!["127.0.0.1:1".to_string()])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let refuser = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = net::read_frame(&mut stream).unwrap();
            let reason = "protocol too old".to_string();
            net::write_frame(&mut stream, &Welcome::Refused { reason }.to_json()).unwrap();
        });
        let err = dial(&addr, Duration::from_secs(2)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(err.to_string().contains("protocol too old"), "{err}");
        refuser.join().unwrap();
    }

    #[test]
    fn workerd_refuses_a_mismatched_peer_and_drains_on_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let daemon = std::thread::spawn(move || {
            serve_workerd(listener, 2, &move || flag.load(Ordering::Relaxed))
        });

        // Wrong protocol version → typed refusal, no child ever spawned.
        let mut stream = net::connect(&addr, Duration::from_secs(2)).unwrap();
        let bogus = Hello {
            protocol: PROTOCOL_VERSION + 1,
            fingerprint: net::build_fingerprint(),
        };
        net::write_frame(&mut stream, &bogus.to_json()).unwrap();
        let doc = read_with_patience(&mut stream);
        match Welcome::from_json(&doc) {
            Some(Welcome::Refused { reason }) => {
                assert!(reason.contains("version mismatch"), "{reason}")
            }
            other => panic!("expected a refusal, got {other:?}"),
        }

        // A well-formed handshake is accepted (still no cell, no child).
        let mut stream = net::connect(&addr, Duration::from_secs(2)).unwrap();
        net::write_frame(&mut stream, &Hello::current().to_json()).unwrap();
        let doc = read_with_patience(&mut stream);
        assert_eq!(
            Welcome::from_json(&doc),
            Some(Welcome::Accepted { slots: 2 })
        );

        stop.store(true, Ordering::Relaxed);
        daemon.join().unwrap().unwrap();
    }

    /// Reads one frame, riding out the poll-quantum read timeouts.
    fn read_with_patience(stream: &mut TcpStream) -> Json {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match net::read_frame(stream) {
                Ok(Some(doc)) => return doc,
                Ok(None) => panic!("peer closed before answering"),
                Err(err) if err.is_timeout() && Instant::now() < deadline => {}
                Err(err) => panic!("handshake read failed: {err}"),
            }
        }
    }

    #[test]
    fn cache_round_trips_detects_corruption_and_rejects_key_mismatches() {
        let dir = std::env::temp_dir().join(format!("fdip-cellcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.scan(), CacheSummary::default());
        assert_eq!(cache.lookup("w", 1000, "cfg"), CacheLookup::Miss);

        let entry = JournalEntry {
            workload: "w".to_string(),
            trace_len: 1000,
            config: "cfg".to_string(),
            stats: canned_stats(),
        };
        cache.store(&entry).unwrap();
        assert_eq!(
            cache.lookup("w", 1000, "cfg"),
            CacheLookup::Hit(Box::new(canned_stats()))
        );
        assert_eq!(
            cache.scan(),
            CacheSummary {
                entries: 1,
                corrupt: 0
            }
        );

        // A colliding file holding some *other* cell's entry must not be
        // served: the stored key is compared in full. The corrupt entry
        // is quarantined on sight, so the next lookup is a clean miss.
        let other_path = cache.entry_path("other", 9, "zzz");
        std::fs::copy(cache.entry_path("w", 1000, "cfg"), &other_path).unwrap();
        assert_eq!(cache.lookup("other", 9, "zzz"), CacheLookup::Corrupt);
        assert!(!other_path.exists(), "corrupt entry must be moved aside");
        let mut quarantined = other_path.into_os_string();
        quarantined.push(".corrupt");
        assert!(
            PathBuf::from(quarantined).exists(),
            "the bytes must survive for a postmortem"
        );
        assert_eq!(cache.lookup("other", 9, "zzz"), CacheLookup::Miss);

        // Bit rot: flip a byte inside the payload → CRC catches it, the
        // file is quarantined, and a fresh store repairs the entry.
        let path = cache.entry_path("w", 1000, "cfg");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.lookup("w", 1000, "cfg"), CacheLookup::Corrupt);
        assert_eq!(cache.lookup("w", 1000, "cfg"), CacheLookup::Miss);
        cache.store(&entry).unwrap();
        assert_eq!(
            cache.lookup("w", 1000, "cfg"),
            CacheLookup::Hit(Box::new(canned_stats()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_scan_quarantines_corruption_so_the_second_scan_is_clean() {
        let dir = std::env::temp_dir().join(format!("fdip-cellcache-q-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        for (name, len) in [("alpha", 100), ("beta", 200)] {
            cache
                .store(&JournalEntry {
                    workload: name.to_string(),
                    trace_len: len,
                    config: "cfg".to_string(),
                    stats: canned_stats(),
                })
                .unwrap();
        }
        // Rot one of the two entries on disk.
        let path = cache.entry_path("alpha", 100, "cfg");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let first = cache.scan();
        assert_eq!(
            first,
            CacheSummary {
                entries: 1,
                corrupt: 1
            }
        );
        // The corrupt file was moved aside: scanning again re-parses
        // nothing and reports a clean cache.
        let second = cache.scan();
        assert_eq!(
            second,
            CacheSummary {
                entries: 1,
                corrupt: 0
            }
        );
        // The survivor still serves; the rotted cell is a plain miss.
        assert_eq!(
            cache.lookup("beta", 200, "cfg"),
            CacheLookup::Hit(Box::new(canned_stats()))
        );
        assert_eq!(cache.lookup("alpha", 100, "cfg"), CacheLookup::Miss);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_of_a_cache_entry_is_corrupt_never_a_panic() {
        let dir = std::env::temp_dir().join(format!("fdip-cellcache-tr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let entry = JournalEntry {
            workload: "w".to_string(),
            trace_len: 500,
            config: "cfg".to_string(),
            stats: canned_stats(),
        };
        cache.store(&entry).unwrap();
        let path = cache.entry_path("w", 500, "cfg");
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len().saturating_sub(1) {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(
                cache.lookup("w", 500, "cfg"),
                CacheLookup::Corrupt,
                "cut at {cut}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
