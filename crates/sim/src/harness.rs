//! The shared experiment harness: trace store, content-keyed cell cache,
//! and a cell-granular deterministic scheduler.
//!
//! Every experiment in the catalogue ultimately evaluates *cells* — one
//! `(workload, config)` simulation over a generated trace. Before this
//! harness existed each experiment regenerated its suite traces and
//! re-simulated overlapping cells from scratch; `exp_all` generated the
//! full-suite traces ~25 times over and ran the no-prefetch baseline a
//! dozen times per workload. The harness makes both kinds of redundant
//! work structurally impossible within a process:
//!
//! * the **trace store** generates each `(workload, trace_len)` trace at
//!   most once and shares it as an [`Arc<TraceEntry>`];
//! * the **cell cache** keys finished simulations by *content* — workload
//!   name, trace length, and the config's full debug rendering — so a
//!   config reused under a different label (every experiment names the
//!   baseline differently) still hits;
//! * the **scheduler** hands out individual cells to worker threads
//!   work-stealing style, then assembles results in workload-major input
//!   order, so output is byte-identical regardless of thread count
//!   (covered by `determinism.rs`).
//!
//! [`Harness::stats`] exposes hit/miss counters; the acceptance test in
//! `tests/experiment_smoke.rs` uses them to prove `exp_all` simulates no
//! duplicate cell.
//!
//! # Examples
//!
//! ```
//! use fdip::FrontendConfig;
//! use fdip_sim::harness::Harness;
//! use fdip_sim::workload::{suite, SuiteKind};
//! use fdip_sim::Scale;
//!
//! let harness = Harness::new();
//! let workloads = suite(SuiteKind::Client, Scale::quick());
//! let configs = vec![("base".to_string(), FrontendConfig::default())];
//! let first = harness.run_matrix(&workloads, 10_000, &configs);
//! let again = harness.run_matrix(&workloads, 10_000, &configs);
//! assert_eq!(first.cell("client-1", "base").stats, again.cell("client-1", "base").stats);
//! assert_eq!(harness.stats().cells_simulated, 1);
//! assert_eq!(harness.stats().cell_hits, 1);
//! ```

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use fdip::{FrontendConfig, SimStats, Simulator};
use fdip_trace::{Trace, TraceStats};

use crate::runner::RunResult;
use crate::workload::WorkloadSpec;

/// A generated trace plus its one-pass characterization, shared read-only
/// across every experiment in the process.
#[derive(Debug)]
pub struct TraceEntry {
    /// The workload this trace realizes.
    pub spec: WorkloadSpec,
    /// The generated trace.
    pub trace: Trace,
    /// Its measured statistics.
    pub stats: TraceStats,
}

/// Snapshot of the harness's cache counters.
///
/// Each counter is an atomic the workers bump as they go, so a snapshot
/// is cheap enough for a `/metrics` scrape on every request. *Hits* are
/// requests served from an already-finished entry; *shared* counts
/// requests that arrived while another thread was still computing the
/// same entry and blocked on its slot instead of duplicating the work
/// (in-flight coalescing).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct HarnessStats {
    /// Traces actually generated (trace-store misses).
    pub traces_generated: u64,
    /// Trace requests served from the store after generation finished.
    pub trace_hits: u64,
    /// Trace requests coalesced onto another thread's in-flight generation.
    pub traces_shared: u64,
    /// Cells actually simulated (cell-cache misses).
    pub cells_simulated: u64,
    /// Cell requests served from the cache after simulation finished.
    pub cell_hits: u64,
    /// Cell requests coalesced onto another thread's in-flight simulation.
    pub cells_shared: u64,
}

impl HarnessStats {
    /// Total cell requests, however they were served.
    pub fn cell_requests(&self) -> u64 {
        self.cells_simulated + self.cell_hits + self.cells_shared
    }
}

impl fdip_types::ToJson for HarnessStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(
            self,
            traces_generated,
            trace_hits,
            traces_shared,
            cells_simulated,
            cell_hits,
            cells_shared,
        )
    }
}

/// Identifies a trace by content: workload name (which fixes profile and
/// seed) and target length.
type TraceKey = (String, usize);

/// Identifies a cell by content: workload name, target length, and the
/// configuration's full `Debug` rendering.
///
/// `FrontendConfig` holds `f64` fields, so it cannot derive `Hash`/`Eq`;
/// its derived `Debug` output enumerates every field and Rust's float
/// `Debug` is shortest-round-trip, so the rendering is a faithful
/// fingerprint of the config's content.
type CellKey = (String, usize, String);

type Slot<T> = Arc<OnceLock<T>>;

/// The process-wide experiment execution engine. See the module docs.
#[derive(Default)]
pub struct Harness {
    traces: Mutex<HashMap<TraceKey, Slot<Arc<TraceEntry>>>>,
    cells: Mutex<HashMap<CellKey, Slot<Arc<SimStats>>>>,
    /// Worker-thread override; `None` means `available_parallelism()`.
    threads: Option<usize>,
    traces_generated: AtomicU64,
    trace_hits: AtomicU64,
    traces_shared: AtomicU64,
    cells_simulated: AtomicU64,
    cell_hits: AtomicU64,
    cells_shared: AtomicU64,
}

impl Harness {
    /// An empty harness sized to the machine's parallelism.
    pub fn new() -> Harness {
        Harness::default()
    }

    /// An empty harness pinned to exactly `threads` worker threads
    /// (`1` runs everything inline on the calling thread).
    pub fn with_threads(threads: usize) -> Harness {
        Harness {
            threads: Some(threads.max(1)),
            ..Harness::default()
        }
    }

    /// The process-wide shared harness: every experiment run through the
    /// registry uses this instance, so traces and cells are shared across
    /// experiments, not just within one.
    pub fn global() -> &'static Harness {
        static GLOBAL: OnceLock<Harness> = OnceLock::new();
        GLOBAL.get_or_init(Harness::new)
    }

    /// Current cache counters.
    pub fn stats(&self) -> HarnessStats {
        HarnessStats {
            traces_generated: self.traces_generated.load(Ordering::Relaxed),
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            traces_shared: self.traces_shared.load(Ordering::Relaxed),
            cells_simulated: self.cells_simulated.load(Ordering::Relaxed),
            cell_hits: self.cell_hits.load(Ordering::Relaxed),
            cells_shared: self.cells_shared.load(Ordering::Relaxed),
        }
    }

    /// The trace for `spec` at `trace_len`, generating it on first request
    /// and sharing the same allocation afterwards.
    ///
    /// Concurrent first requests are deduplicated: exactly one caller
    /// generates, the rest block on the same slot and then share it.
    pub fn trace(&self, spec: &WorkloadSpec, trace_len: usize) -> Arc<TraceEntry> {
        let slot = {
            let mut map = self.traces.lock().expect("harness trace store");
            map.entry((spec.name.clone(), trace_len))
                .or_default()
                .clone()
        };
        // A slot that is already populated is a plain hit; an empty slot we
        // end up not initializing means we blocked on a concurrent
        // generation and shared its result.
        let finished_before = slot.get().is_some();
        let mut computed = false;
        let entry = slot.get_or_init(|| {
            computed = true;
            let trace = spec.generate(trace_len);
            let stats = TraceStats::measure(&trace);
            Arc::new(TraceEntry {
                spec: spec.clone(),
                trace,
                stats,
            })
        });
        let counter = if computed {
            &self.traces_generated
        } else if finished_before {
            &self.trace_hits
        } else {
            &self.traces_shared
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Arc::clone(entry)
    }

    /// Simulates one cell, reusing the cached result when an identical
    /// `(workload, trace_len, config)` cell already ran.
    fn cell_stats(
        &self,
        entry: &TraceEntry,
        trace_len: usize,
        config: &FrontendConfig,
    ) -> Arc<SimStats> {
        let key = (
            entry.spec.name.clone(),
            trace_len,
            config_fingerprint(config),
        );
        let slot = {
            let mut map = self.cells.lock().expect("harness cell cache");
            map.entry(key).or_default().clone()
        };
        let finished_before = slot.get().is_some();
        let mut computed = false;
        let stats = slot.get_or_init(|| {
            computed = true;
            Arc::new(Simulator::run_trace(config, &entry.trace))
        });
        let counter = if computed {
            &self.cells_simulated
        } else if finished_before {
            &self.cell_hits
        } else {
            &self.cells_shared
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Arc::clone(stats)
    }

    /// Evaluates `configs` × `workloads` over traces of `trace_len`.
    ///
    /// Parallelism is cell-granular: each worker steals one
    /// `(workload, config)` cell at a time, so a matrix of any shape —
    /// one workload × many configs, many × one — saturates the machine.
    /// Results come back workload-major in the input orders, independent
    /// of thread count and scheduling.
    pub fn run_matrix(
        &self,
        workloads: &[WorkloadSpec],
        trace_len: usize,
        configs: &[(String, FrontendConfig)],
    ) -> MatrixResults {
        let total = workloads.len() * configs.len();
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .min(total.max(1));

        // Hand cells out config-major (cell k ↦ workload k % W) so the
        // first W cells touch W *different* traces: concurrent first-time
        // generation instead of every thread blocking on workload 0's slot.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, RunResult)>> = Mutex::new(Vec::with_capacity(total));
        let work = |harness: &Harness| loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= total {
                return;
            }
            let (w, c) = (k % workloads.len(), k / workloads.len());
            let entry = harness.trace(&workloads[w], trace_len);
            let (label, config) = &configs[c];
            let stats = harness.cell_stats(&entry, trace_len, config);
            let result = RunResult {
                workload: workloads[w].name.clone(),
                config: label.clone(),
                stats: (*stats).clone(),
                trace_stats: entry.stats.clone(),
            };
            collected
                .lock()
                .expect("harness results")
                // Slot index is workload-major: the final output order.
                .push((w * configs.len() + c, result));
        };

        if threads <= 1 {
            work(self);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| work(self));
                }
            });
        }

        let mut cells = collected.into_inner().expect("harness results");
        cells.sort_by_key(|(slot, _)| *slot);
        debug_assert_eq!(cells.len(), total);
        MatrixResults::new(cells.into_iter().map(|(_, r)| r).collect())
    }
}

/// The content fingerprint of a configuration: its full field-by-field
/// `Debug` rendering (see [`CellKey`]'s docs for why this is sound).
pub fn config_fingerprint(config: &FrontendConfig) -> String {
    format!("{config:?}")
}

/// The results of one matrix run, with an index for O(1) cell lookup.
///
/// Dereferences to the workload-major `[RunResult]` slice for iteration.
#[derive(Clone, Debug)]
pub struct MatrixResults {
    results: Vec<RunResult>,
    index: HashMap<(String, String), usize>,
}

impl MatrixResults {
    /// Builds the index over `results` (later duplicates win, matching the
    /// behavior of re-running the cell).
    pub fn new(results: Vec<RunResult>) -> MatrixResults {
        let index = results
            .iter()
            .enumerate()
            .map(|(i, r)| ((r.workload.clone(), r.config.clone()), i))
            .collect();
        MatrixResults { results, index }
    }

    /// The cell for `(workload, config)`, if it was part of the matrix.
    pub fn get(&self, workload: &str, config: &str) -> Option<&RunResult> {
        self.index
            .get(&(workload.to_string(), config.to_string()))
            .map(|&i| &self.results[i])
    }

    /// The cell for `(workload, config)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is missing — experiments always look up cells of
    /// the matrix they just ran, so a miss is a programming error.
    pub fn cell(&self, workload: &str, config: &str) -> &RunResult {
        self.get(workload, config)
            .unwrap_or_else(|| panic!("missing cell ({workload}, {config})"))
    }

    /// Consumes the results for persistence.
    pub fn into_cells(self) -> Vec<RunResult> {
        self.results
    }
}

impl Deref for MatrixResults {
    type Target = [RunResult];
    fn deref(&self) -> &[RunResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{suite, SuiteKind};
    use crate::Scale;
    use fdip::PrefetcherKind;

    const LEN: usize = 8_000;

    fn configs() -> Vec<(String, FrontendConfig)> {
        vec![
            ("base".to_string(), FrontendConfig::default()),
            (
                "fdip".to_string(),
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
        ]
    }

    #[test]
    fn trace_store_generates_once() {
        let harness = Harness::new();
        let spec = &suite(SuiteKind::Client, Scale::quick())[0];
        let a = harness.trace(spec, LEN);
        let b = harness.trace(spec, LEN);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(harness.stats().traces_generated, 1);
        assert_eq!(harness.stats().trace_hits, 1);
        // A different length is a different trace.
        let c = harness.trace(spec, LEN / 2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(harness.stats().traces_generated, 2);
    }

    #[test]
    fn cell_cache_is_content_keyed_across_labels() {
        let harness = Harness::new();
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let first = harness.run_matrix(&workloads, LEN, &configs());
        // Same config content under different labels: all hits.
        let relabeled = vec![
            ("no-prefetch".to_string(), FrontendConfig::default()),
            (
                "prefetch".to_string(),
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
        ];
        let second = harness.run_matrix(&workloads, LEN, &relabeled);
        let stats = harness.stats();
        assert_eq!(stats.cells_simulated, 2, "{stats:?}");
        assert_eq!(stats.cell_hits, 2, "{stats:?}");
        assert_eq!(stats.traces_generated, 1, "{stats:?}");
        assert_eq!(
            first.cell("client-1", "fdip").stats,
            second.cell("client-1", "prefetch").stats
        );
    }

    #[test]
    fn matrix_order_is_workload_major() {
        let harness = Harness::new();
        let workloads = suite(SuiteKind::All, Scale::quick());
        let results = harness.run_matrix(&workloads, LEN, &configs());
        assert_eq!(results.len(), workloads.len() * 2);
        for (w, spec) in workloads.iter().enumerate() {
            assert_eq!(results[2 * w].workload, spec.name);
            assert_eq!(results[2 * w].config, "base");
            assert_eq!(results[2 * w + 1].config, "fdip");
        }
    }

    #[test]
    fn lookup_is_option_on_the_library_path() {
        let harness = Harness::new();
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let results = harness.run_matrix(&workloads, LEN, &configs());
        assert!(results.get("client-1", "base").is_some());
        assert!(results.get("client-1", "nope").is_none());
        assert!(results.get("ghost", "base").is_none());
    }

    #[test]
    #[should_panic(expected = "missing cell")]
    fn missing_cell_panics() {
        MatrixResults::new(Vec::new()).cell("nope", "nada");
    }

    #[test]
    fn shared_counters_account_for_concurrent_requests() {
        let harness = Harness::new();
        let spec = &suite(SuiteKind::Client, Scale::quick())[0];
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _ = harness.trace(spec, LEN);
                });
            }
        });
        // Exactly one generation; the others were hits or coalesced onto
        // the in-flight one, but never duplicated work.
        let st = harness.stats();
        assert_eq!(st.traces_generated, 1, "{st:?}");
        assert_eq!(st.trace_hits + st.traces_shared, 3, "{st:?}");
    }

    #[test]
    fn stats_serialize_and_total() {
        let st = HarnessStats {
            traces_generated: 1,
            cells_simulated: 2,
            cell_hits: 3,
            cells_shared: 4,
            ..HarnessStats::default()
        };
        assert_eq!(st.cell_requests(), 9);
        let json = fdip_types::ToJson::to_json(&st).to_string();
        assert!(json.contains(r#""cells_shared":4"#), "{json}");
        assert!(json.contains(r#""traces_shared":0"#), "{json}");
    }

    #[test]
    fn fingerprints_separate_distinct_configs() {
        let base = config_fingerprint(&FrontendConfig::default());
        let fdip =
            config_fingerprint(&FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()));
        assert_ne!(base, fdip);
        assert_eq!(base, config_fingerprint(&FrontendConfig::default()));
    }
}
