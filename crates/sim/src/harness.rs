//! The shared experiment harness: trace store, content-keyed cell cache,
//! and a fault-tolerant cell-granular deterministic scheduler.
//!
//! Every experiment in the catalogue ultimately evaluates *cells* — one
//! `(workload, config)` simulation over a generated trace. Before this
//! harness existed each experiment regenerated its suite traces and
//! re-simulated overlapping cells from scratch; `exp_all` generated the
//! full-suite traces ~25 times over and ran the no-prefetch baseline a
//! dozen times per workload. The harness makes both kinds of redundant
//! work structurally impossible within a process:
//!
//! * the **trace store** generates each `(workload, trace_len)` trace at
//!   most once and shares it as an [`Arc<TraceEntry>`];
//! * the **cell cache** keys finished simulations by *content* — workload
//!   name, trace length, and the config's full debug rendering — so a
//!   config reused under a different label (every experiment names the
//!   baseline differently) still hits;
//! * the **scheduler** hands out individual cells to worker threads
//!   work-stealing style, then assembles results in workload-major input
//!   order, so output is byte-identical regardless of thread count
//!   (covered by `determinism.rs`);
//! * the **lockstep batch pass** runs a matrix's not-yet-cached configs
//!   for each workload through [`fdip::run_batch`] — one shared BPU walk
//!   per walk key instead of one per config — before the per-cell
//!   scheduler mops up whatever the pass could not claim. Batched cells
//!   produce byte-identical statistics to solo runs (enforced by
//!   `fdip`'s differential proptests and the tests here), share the same
//!   cache slots and fingerprints, and journal identically; the pass
//!   stands down entirely when a fault plan, process isolation, or a
//!   cell budget is active, or when [`Harness::set_batching`] turned it
//!   off (`--batch=off` on the CLIs).
//!
//! On top of the caching sits the fault model (see [`crate::fault`]):
//!
//! * every cell computes under `catch_unwind`, so a panicking cell
//!   becomes a typed [`CellError`] in its [`RunResult`] instead of
//!   tearing down the whole matrix;
//! * retryable failures are re-attempted under the harness's
//!   [`RetryPolicy`] with deterministic jittered backoff; a per-cell
//!   wall-clock budget cancels runaway simulations cooperatively
//!   ([`CellError::Timeout`]);
//! * failures are **never cached** — the failed slot resets to idle so a
//!   later request (or a resumed run) can try again;
//! * with a journal attached ([`Harness::attach_journal`]), every
//!   completed cell is appended to a crash-tolerant JSONL file and a
//!   restart preloads it, re-simulating only what never finished;
//! * every lock acquisition recovers from poisoning
//!   (`PoisonError::into_inner`): the caches hold plain finished data, so
//!   a panic while holding a guard cannot leave them logically torn.
//!
//! [`Harness::stats`] exposes hit/miss plus failure/retry/journal
//! counters; the acceptance tests in `tests/experiment_smoke.rs` and
//! `tests/fault_tolerance.rs` use them to prove `exp_all` simulates no
//! duplicate cell and resumes without re-simulating journaled ones.
//!
//! # Examples
//!
//! ```
//! use fdip::FrontendConfig;
//! use fdip_sim::harness::Harness;
//! use fdip_sim::workload::{suite, SuiteKind};
//! use fdip_sim::Scale;
//!
//! let harness = Harness::new();
//! let workloads = suite(SuiteKind::Client, Scale::quick());
//! let configs = vec![("base".to_string(), FrontendConfig::default())];
//! let first = harness.run_matrix(&workloads, 10_000, &configs);
//! let again = harness.run_matrix(&workloads, 10_000, &configs);
//! let cell = first.try_cell("client-1", "base").unwrap();
//! assert_eq!(cell.stats, again.try_cell("client-1", "base").unwrap().stats);
//! assert_eq!(harness.stats().cells_simulated, 1);
//! assert_eq!(harness.stats().cell_hits, 1);
//! ```

use std::collections::HashMap;
use std::io;
use std::ops::Deref;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use fdip::{run_batch, CancelToken, Cancelled, FrontendConfig, SimStats, Simulator};
use fdip_trace::{Trace, TraceStats};

use crate::fault::{fnv1a, splitmix64, CellError, FaultAction, FaultPlan, RetryPolicy};
use crate::fleet::{CacheLookup, CacheSummary, Fleet, FleetConfig, ResultCache};
use crate::ipc::WorkerFault;
use crate::journal::{self, Journal, JournalEntry, JournalSummary};
use crate::net::NetFault;
use crate::runner::RunResult;
use crate::supervisor::{Supervisor, SupervisorConfig};
use crate::workload::WorkloadSpec;

/// Locks a mutex, recovering from poisoning. Every shared structure in
/// the harness holds plain finished values (or a state flag that the
/// owner restores outside the panicking region), so a guard abandoned by
/// a panic cannot leave torn data behind — recovery is always sound here.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A generated trace plus its one-pass characterization, shared read-only
/// across every experiment in the process.
#[derive(Debug)]
pub struct TraceEntry {
    /// The workload this trace realizes.
    pub spec: WorkloadSpec,
    /// The generated trace.
    pub trace: Trace,
    /// Its measured statistics.
    pub stats: TraceStats,
}

/// Snapshot of the harness's cache and fault counters.
///
/// Each counter is an atomic the workers bump as they go, so a snapshot
/// is cheap enough for a `/metrics` scrape on every request. *Hits* are
/// requests served from an already-finished entry; *shared* counts
/// requests that arrived while another thread was still computing the
/// same entry and blocked on its slot instead of duplicating the work
/// (in-flight coalescing).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct HarnessStats {
    /// Traces actually generated (trace-store misses).
    pub traces_generated: u64,
    /// Trace requests served from the store after generation finished.
    pub trace_hits: u64,
    /// Trace requests coalesced onto another thread's in-flight generation.
    pub traces_shared: u64,
    /// Cells actually simulated (cell-cache misses).
    pub cells_simulated: u64,
    /// Cells computed by the lockstep batch pass (a subset of
    /// `cells_simulated`; zero when batching is off or ineligible).
    pub cells_batched: u64,
    /// Cell requests served from the cache after simulation finished.
    pub cell_hits: u64,
    /// Cell requests coalesced onto another thread's in-flight simulation.
    pub cells_shared: u64,
    /// Cell requests that ended in a terminal [`CellError`].
    pub cells_failed: u64,
    /// Retry attempts made after a retryable cell failure.
    pub cell_retries: u64,
    /// Cells cancelled for exceeding their wall-clock budget.
    pub cell_timeouts: u64,
    /// Cells preloaded from an attached journal instead of simulated.
    pub journal_restored: u64,
    /// Journal lines whose CRC32 frame failed verification (bit rot).
    pub journal_corrupt_lines: u64,
    /// Worker processes respawned into a previously used pool slot
    /// (isolated mode only; see [`crate::supervisor`]).
    pub worker_restarts: u64,
    /// Worker processes SIGKILLed by the supervisor (budget preemption or
    /// lost heartbeat; isolated mode only).
    pub worker_kills: u64,
    /// Crash-loop backoff pauses taken before respawning a worker
    /// (isolated mode only).
    pub worker_crash_loops: u64,
    /// Worker seats registered across the fleet (fleet mode only; see
    /// [`crate::fleet`]).
    pub fleet_workers: u64,
    /// Fleet nodes that went silent mid-run (one per down-transition).
    pub node_losses: u64,
    /// Cell attempts re-dispatched to the fleet after a failed attempt.
    pub cells_redispatched: u64,
    /// Cells served from the shared on-disk result cache instead of
    /// simulated (requires [`Harness::attach_cache`]).
    pub remote_cache_hits: u64,
    /// Lost fleet nodes readmitted (on probation) after a reprobe
    /// completed a full re-handshake.
    pub node_readmissions: u64,
    /// Cells whose slow primary dispatch triggered a speculative second
    /// copy on another node (fleet hedging).
    pub cells_hedged: u64,
    /// Hedged cells where the speculative copy finished first.
    pub hedge_wins: u64,
}

impl HarnessStats {
    /// Total cell requests, however they were served (or failed).
    pub fn cell_requests(&self) -> u64 {
        self.cells_simulated + self.cell_hits + self.cells_shared + self.cells_failed
    }
}

impl fdip_types::ToJson for HarnessStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(
            self,
            traces_generated,
            trace_hits,
            traces_shared,
            cells_simulated,
            cells_batched,
            cell_hits,
            cells_shared,
            cells_failed,
            cell_retries,
            cell_timeouts,
            journal_restored,
            journal_corrupt_lines,
            worker_restarts,
            worker_kills,
            worker_crash_loops,
            fleet_workers,
            node_losses,
            cells_redispatched,
            remote_cache_hits,
            node_readmissions,
            cells_hedged,
            hedge_wins,
        )
    }
}

/// Identifies a trace by content: workload name (which fixes profile and
/// seed) and target length.
type TraceKey = (String, usize);

/// Identifies a cell by content: workload name, target length, and the
/// configuration's full `Debug` rendering.
///
/// `FrontendConfig` holds `f64` fields, so it cannot derive `Hash`/`Eq`;
/// its derived `Debug` output enumerates every field and Rust's float
/// `Debug` is shortest-round-trip, so the rendering is a faithful
/// fingerprint of the config's content.
type CellKey = (String, usize, String);

type Slot<T> = Arc<OnceLock<T>>;

/// Lifecycle of one cell-cache slot. Unlike the trace store's `OnceLock`,
/// a cell compute can *fail*, so the slot is an explicit state machine: a
/// failed compute resets to `Idle` (failures are never cached) and wakes
/// any waiters, who then claim the compute themselves.
#[derive(Clone, Debug, Default)]
enum CellState {
    /// Nobody has (successfully) computed this cell yet.
    #[default]
    Idle,
    /// A worker claimed the compute; waiters block on the condvar.
    Computing,
    /// Finished statistics, shared by every later request.
    Done(Arc<SimStats>),
}

#[derive(Debug, Default)]
struct CellSlot {
    state: Mutex<CellState>,
    done: Condvar,
}

/// The process-wide experiment execution engine. See the module docs.
#[derive(Default)]
pub struct Harness {
    traces: Mutex<HashMap<TraceKey, Slot<Arc<TraceEntry>>>>,
    cells: Mutex<HashMap<CellKey, Arc<CellSlot>>>,
    /// Worker-thread override; `None` means `available_parallelism()`.
    threads: Option<usize>,
    faults: Mutex<Option<Arc<FaultPlan>>>,
    retry: Mutex<RetryPolicy>,
    journal: Mutex<Option<Arc<Journal>>>,
    /// When set, cell attempts run in supervised worker processes.
    isolation: Mutex<Option<Arc<Supervisor>>>,
    /// When set, cell attempts are dispatched to remote worker daemons
    /// (takes precedence over local isolation).
    fleet: Mutex<Option<Arc<Fleet>>>,
    /// When set, finished cells persist to (and are restored from) the
    /// shared on-disk result cache.
    disk_cache: Mutex<Option<Arc<ResultCache>>>,
    /// Inverted so `Default` yields batching *on* (see
    /// [`set_batching`](Self::set_batching)).
    batch_off: std::sync::atomic::AtomicBool,
    traces_generated: AtomicU64,
    trace_hits: AtomicU64,
    traces_shared: AtomicU64,
    cells_simulated: AtomicU64,
    cells_batched: AtomicU64,
    cell_hits: AtomicU64,
    cells_shared: AtomicU64,
    cells_failed: AtomicU64,
    cell_retries: AtomicU64,
    cell_timeouts: AtomicU64,
    journal_restored: AtomicU64,
    journal_corrupt_lines: AtomicU64,
    remote_cache_hits: AtomicU64,
}

impl Harness {
    /// An empty harness sized to the machine's parallelism.
    pub fn new() -> Harness {
        Harness::default()
    }

    /// An empty harness pinned to exactly `threads` worker threads
    /// (`1` runs everything inline on the calling thread).
    pub fn with_threads(threads: usize) -> Harness {
        Harness {
            threads: Some(threads.max(1)),
            ..Harness::default()
        }
    }

    /// The process-wide shared harness: every experiment run through the
    /// registry uses this instance, so traces and cells are shared across
    /// experiments, not just within one. Its locks recover from
    /// poisoning, so a panicking cell in one experiment never bricks the
    /// instance for the rest of the process.
    pub fn global() -> &'static Harness {
        static GLOBAL: OnceLock<Harness> = OnceLock::new();
        GLOBAL.get_or_init(Harness::new)
    }

    /// Current cache and fault counters (worker counters folded in from
    /// the supervisor when isolation is enabled).
    pub fn stats(&self) -> HarnessStats {
        let supervisor = lock(&self.isolation)
            .as_deref()
            .map(Supervisor::stats)
            .unwrap_or_default();
        let fleet = lock(&self.fleet)
            .as_deref()
            .map(Fleet::stats)
            .unwrap_or_default();
        HarnessStats {
            traces_generated: self.traces_generated.load(Ordering::Relaxed),
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            traces_shared: self.traces_shared.load(Ordering::Relaxed),
            cells_simulated: self.cells_simulated.load(Ordering::Relaxed),
            cells_batched: self.cells_batched.load(Ordering::Relaxed),
            cell_hits: self.cell_hits.load(Ordering::Relaxed),
            cells_shared: self.cells_shared.load(Ordering::Relaxed),
            cells_failed: self.cells_failed.load(Ordering::Relaxed),
            cell_retries: self.cell_retries.load(Ordering::Relaxed),
            cell_timeouts: self.cell_timeouts.load(Ordering::Relaxed),
            journal_restored: self.journal_restored.load(Ordering::Relaxed),
            journal_corrupt_lines: self.journal_corrupt_lines.load(Ordering::Relaxed),
            worker_restarts: supervisor.worker_restarts,
            worker_kills: supervisor.worker_kills,
            worker_crash_loops: supervisor.worker_crash_loops,
            fleet_workers: fleet.fleet_workers,
            node_losses: fleet.node_losses,
            cells_redispatched: fleet.cells_redispatched,
            remote_cache_hits: self.remote_cache_hits.load(Ordering::Relaxed),
            node_readmissions: fleet.node_readmissions,
            cells_hedged: fleet.cells_hedged,
            hedge_wins: fleet.hedge_wins,
        }
    }

    /// Per-node fleet health states (addr, state name), empty when no
    /// fleet is attached — the `/metrics` health gauge family.
    pub fn fleet_node_health(&self) -> Vec<(String, &'static str)> {
        lock(&self.fleet)
            .as_deref()
            .map(|fleet| {
                fleet
                    .node_health()
                    .into_iter()
                    .map(|(addr, health)| (addr, health.name()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Raw fleet counters (including MTTR accounting not folded into
    /// [`HarnessStats`]), default when no fleet is attached.
    pub fn fleet_stats(&self) -> crate::fleet::FleetStats {
        lock(&self.fleet)
            .as_deref()
            .map(Fleet::stats)
            .unwrap_or_default()
    }

    /// Routes all subsequent cell computes through a supervised pool of
    /// worker processes (see [`crate::supervisor`]): panics, aborts, and
    /// runaway loops cost one worker, not this process, and the per-cell
    /// budget becomes a hard SIGKILL deadline instead of a cooperative
    /// cancellation. Caching, retries, journaling, and result ordering
    /// are unchanged.
    pub fn enable_isolation(&self, config: SupervisorConfig) -> Arc<Supervisor> {
        let supervisor = Arc::new(Supervisor::new(config));
        *lock(&self.isolation) = Some(Arc::clone(&supervisor));
        supervisor
    }

    /// Whether cell computes are currently process-isolated.
    pub fn isolation_enabled(&self) -> bool {
        lock(&self.isolation).is_some()
    }

    /// Routes all subsequent cell computes to a TCP fleet of worker
    /// daemons (see [`crate::fleet`]): every way a node can vanish —
    /// killed process, severed link, silent partition, corrupt frame —
    /// becomes a retryable [`CellError::Crashed`] and the cell is
    /// re-dispatched elsewhere, so node loss never fails a run. Caching,
    /// retries, journaling, and result ordering are unchanged. Takes
    /// precedence over local isolation.
    ///
    /// # Errors
    ///
    /// Fails only when *no* configured node is reachable.
    pub fn enable_fleet(&self, config: FleetConfig) -> io::Result<Arc<Fleet>> {
        let fleet = Arc::new(Fleet::connect(config)?);
        *lock(&self.fleet) = Some(Arc::clone(&fleet));
        Ok(fleet)
    }

    /// Whether cell computes are currently dispatched to a fleet.
    pub fn fleet_enabled(&self) -> bool {
        lock(&self.fleet).is_some()
    }

    /// Attaches the shared on-disk result cache at `dir`: every cell
    /// compute first consults it (a verified hit skips simulation
    /// entirely, local or remote) and every completed cell is persisted
    /// to it atomically. Returns what a scan of the directory found, for
    /// startup reporting.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create or open the directory; *corrupt
    /// entries* are skipped and counted, not errors.
    pub fn attach_cache(&self, dir: &Path) -> io::Result<CacheSummary> {
        let cache = ResultCache::open(dir)?;
        let summary = cache.scan();
        *lock(&self.disk_cache) = Some(Arc::new(cache));
        Ok(summary)
    }

    /// Installs (or clears) a deterministic fault-injection plan. Fires
    /// only on cells that actually *compute*; cached cells never fault.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *lock(&self.faults) = plan.map(Arc::new);
    }

    /// Enables or disables the lockstep batch pass (on by default).
    /// Results are byte-identical either way — turning it off trades the
    /// shared-walk speedup for per-cell scheduling, and exists so a
    /// suspected batching miscompare can be bisected against solo runs
    /// (`--batch=off` on `fdip exp` / `exp_all`).
    pub fn set_batching(&self, on: bool) {
        self.batch_off.store(!on, Ordering::Relaxed);
    }

    /// Whether [`run_matrix`](Self::run_matrix) may use the lockstep
    /// batch pass. Fault plans, isolation, and cell budgets additionally
    /// suspend it per matrix without clearing this flag.
    pub fn batching_enabled(&self) -> bool {
        !self.batch_off.load(Ordering::Relaxed)
    }

    /// Replaces the retry policy applied to every subsequent cell compute.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *lock(&self.retry) = policy;
    }

    /// The retry policy currently in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        *lock(&self.retry)
    }

    /// Attaches a cell journal at `path`: existing valid entries are
    /// preloaded into the cell cache (so they will not be re-simulated),
    /// and every cell completed from now on is appended and flushed.
    ///
    /// Returns how many cells were restored and how many corrupt lines
    /// were skipped.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from reading or opening the journal;
    /// *corrupt contents* are skipped, not errors.
    pub fn attach_journal(&self, path: &Path) -> io::Result<JournalSummary> {
        let replay = journal::read_entries(path)?;
        let mut restored = 0usize;
        {
            let mut cells = lock(&self.cells);
            for entry in replay.entries {
                let slot = cells
                    .entry((entry.workload, entry.trace_len, entry.config))
                    .or_default()
                    .clone();
                let mut state = lock(&slot.state);
                if matches!(*state, CellState::Idle) {
                    *state = CellState::Done(Arc::new(entry.stats));
                    restored += 1;
                }
            }
        }
        self.journal_restored
            .fetch_add(restored as u64, Ordering::Relaxed);
        self.journal_corrupt_lines
            .fetch_add(replay.corrupt as u64, Ordering::Relaxed);
        *lock(&self.journal) = Some(Arc::new(Journal::open_append(path)?));
        Ok(JournalSummary {
            restored,
            skipped: replay.skipped,
            corrupt: replay.corrupt,
        })
    }

    /// Detaches the journal; subsequent completions are no longer
    /// recorded. Already-preloaded cells stay cached.
    pub fn detach_journal(&self) {
        *lock(&self.journal) = None;
    }

    /// The trace for `spec` at `trace_len`, generating it on first request
    /// and sharing the same allocation afterwards.
    ///
    /// Concurrent first requests are deduplicated: exactly one caller
    /// generates, the rest block on the same slot and then share it.
    pub fn trace(&self, spec: &WorkloadSpec, trace_len: usize) -> Arc<TraceEntry> {
        let slot = {
            let mut map = lock(&self.traces);
            map.entry((spec.name.clone(), trace_len))
                .or_default()
                .clone()
        };
        // A slot that is already populated is a plain hit; an empty slot we
        // end up not initializing means we blocked on a concurrent
        // generation and shared its result.
        let finished_before = slot.get().is_some();
        let mut computed = false;
        let entry = slot.get_or_init(|| {
            computed = true;
            let trace = spec.generate(trace_len);
            let stats = TraceStats::measure(&trace);
            Arc::new(TraceEntry {
                spec: spec.clone(),
                trace,
                stats,
            })
        });
        let counter = if computed {
            &self.traces_generated
        } else if finished_before {
            &self.trace_hits
        } else {
            &self.traces_shared
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Arc::clone(entry)
    }

    /// Serves one cell: from the cache if an identical
    /// `(workload, trace_len, config)` cell already finished (including
    /// journal-restored ones), otherwise by computing it under the fault
    /// model. Exactly one trace-store request is made per call, so cache
    /// counters stay deterministic across thread counts.
    fn cell_stats(
        &self,
        spec: &WorkloadSpec,
        trace_len: usize,
        label: &str,
        config: &FrontendConfig,
    ) -> Result<(Arc<TraceEntry>, Arc<SimStats>), CellError> {
        let fingerprint = config_fingerprint(config);
        let slot = {
            let mut map = lock(&self.cells);
            map.entry((spec.name.clone(), trace_len, fingerprint.clone()))
                .or_default()
                .clone()
        };
        let mut waited = false;
        {
            let mut state = lock(&slot.state);
            loop {
                match &*state {
                    CellState::Done(stats) => {
                        let stats = Arc::clone(stats);
                        drop(state);
                        let counter = if waited {
                            &self.cells_shared
                        } else {
                            &self.cell_hits
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        let entry = self.trace(spec, trace_len);
                        return Ok((entry, stats));
                    }
                    CellState::Computing => {
                        waited = true;
                        state = slot
                            .done
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    // Idle — either first request, or a previous compute
                    // failed (failures are never cached): claim it.
                    CellState::Idle => {
                        *state = CellState::Computing;
                        break;
                    }
                }
            }
        }
        // The claim is ours. A verified entry in the shared disk cache
        // settles it without simulating — this is how a restarted server
        // is warm from request one and a second fleet run simulates zero
        // cells.
        if let Some(cache) = lock(&self.disk_cache).clone() {
            if let CacheLookup::Hit(stats) = cache.lookup(&spec.name, trace_len, &fingerprint) {
                let stats: Arc<SimStats> = Arc::new(*stats);
                *lock(&slot.state) = CellState::Done(Arc::clone(&stats));
                slot.done.notify_all();
                self.remote_cache_hits.fetch_add(1, Ordering::Relaxed);
                self.cell_hits.fetch_add(1, Ordering::Relaxed);
                let entry = self.trace(spec, trace_len);
                return Ok((entry, stats));
            }
        }
        match self.compute_cell(spec, trace_len, label, config, &fingerprint) {
            Ok((entry, stats)) => {
                *lock(&slot.state) = CellState::Done(Arc::clone(&stats));
                slot.done.notify_all();
                self.cells_simulated.fetch_add(1, Ordering::Relaxed);
                let record = JournalEntry {
                    workload: spec.name.clone(),
                    trace_len,
                    config: fingerprint,
                    stats: (*stats).clone(),
                };
                if let Some(journal) = lock(&self.journal).clone() {
                    if let Err(err) = journal.append(&record) {
                        eprintln!(
                            "warning: journal append to {} failed: {err}",
                            journal.path().display()
                        );
                    }
                }
                self.cache_store(&record);
                Ok((entry, stats))
            }
            Err(error) => {
                *lock(&slot.state) = CellState::Idle;
                slot.done.notify_all();
                if matches!(error, CellError::Timeout { .. }) {
                    self.cell_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                self.cells_failed.fetch_add(1, Ordering::Relaxed);
                Err(error)
            }
        }
    }

    /// Persists one completed cell to the attached disk cache, if any;
    /// a store failure degrades to a warning (the result is already in
    /// memory — only warm restarts lose out).
    fn cache_store(&self, record: &JournalEntry) {
        if let Some(cache) = lock(&self.disk_cache).clone() {
            if let Err(err) = cache.store(record) {
                eprintln!(
                    "warning: cell cache store to {} failed: {err}",
                    cache.dir().display()
                );
            }
        }
    }

    /// Computes one claimed cell under the fault model: up to
    /// `max_attempts` tries, each isolated by `catch_unwind`, with
    /// deterministic jittered backoff between retryable failures and a
    /// cooperative wall-clock budget per attempt.
    fn compute_cell(
        &self,
        spec: &WorkloadSpec,
        trace_len: usize,
        label: &str,
        config: &FrontendConfig,
        fingerprint: &str,
    ) -> Result<(Arc<TraceEntry>, Arc<SimStats>), CellError> {
        let retry = self.retry_policy();
        let plan = lock(&self.faults).clone();
        let isolation = lock(&self.isolation).clone();
        let fleet = lock(&self.fleet).clone();
        let seed = plan.as_ref().map_or(0, |p| p.seed());
        let jitter_key =
            splitmix64(fnv1a(&spec.name) ^ fnv1a(fingerprint) ^ (trace_len as u64) ^ seed);
        let max_attempts = retry.max_attempts.max(1);
        let mut error = CellError::Transient {
            message: "cell was never attempted".to_string(),
            attempts: 0,
        };
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                self.cell_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(retry.backoff_before(attempt, jitter_key));
            }
            let outcome = if let Some(fleet) = fleet.as_deref() {
                // Fleet attempts cannot panic here either: whatever
                // happened on (or to) the remote node arrives as a typed
                // error through the same taxonomy.
                Ok(self.attempt_cell_fleet(
                    fleet,
                    spec,
                    trace_len,
                    label,
                    config,
                    plan.as_deref(),
                    &retry,
                    attempt,
                ))
            } else if let Some(supervisor) = isolation.as_deref() {
                // Isolated attempts cannot panic here: the panic (or
                // worse) happens in the worker process and comes back as
                // a typed error.
                Ok(self.attempt_cell_isolated(
                    supervisor,
                    spec,
                    trace_len,
                    label,
                    config,
                    plan.as_deref(),
                    &retry,
                    attempt,
                ))
            } else {
                let token = match retry.cell_budget {
                    Some(budget) => CancelToken::with_deadline(budget),
                    None => CancelToken::new(),
                };
                quiet_catch_unwind(AssertUnwindSafe(|| {
                    self.attempt_cell(
                        spec,
                        trace_len,
                        label,
                        config,
                        plan.as_deref(),
                        &retry,
                        &token,
                        attempt,
                    )
                }))
            };
            match outcome {
                Ok(Ok(pair)) => return Ok(pair),
                Ok(Err(err)) => error = err,
                Err(payload) => {
                    error = CellError::Panic {
                        message: panic_message(payload.as_ref()),
                        attempts: attempt,
                    };
                }
            }
            if !error.retryable() {
                break;
            }
        }
        Err(error)
    }

    /// One isolated attempt at a cell: fire any armed fault, fetch the
    /// trace, honor the cancellation token, simulate.
    #[allow(clippy::too_many_arguments)]
    fn attempt_cell(
        &self,
        spec: &WorkloadSpec,
        trace_len: usize,
        label: &str,
        config: &FrontendConfig,
        plan: Option<&FaultPlan>,
        retry: &RetryPolicy,
        token: &CancelToken,
        attempt: u32,
    ) -> Result<(Arc<TraceEntry>, Arc<SimStats>), CellError> {
        let budget_ms = retry
            .cell_budget
            .map_or(0, |b| u64::try_from(b.as_millis()).unwrap_or(u64::MAX));
        let action = plan.and_then(|p| p.fire(&spec.name, label));
        match action {
            Some(FaultAction::Panic) => {
                panic!("injected fault: panic at ({}, {label})", spec.name)
            }
            Some(FaultAction::TraceDecode) => {
                return Err(CellError::Transient {
                    message: format!("injected fault: trace decode failed for {}", spec.name),
                    attempts: attempt,
                });
            }
            Some(FaultAction::Transient) => {
                return Err(CellError::Transient {
                    message: format!(
                        "injected fault: transient failure at ({}, {label})",
                        spec.name
                    ),
                    attempts: attempt,
                });
            }
            // Crash-class faults would take this whole process down; the
            // CLI gates them behind --isolate, and this backstop keeps a
            // plan smuggled in some other way visible instead of silent.
            Some(action) if action.requires_isolation() => {
                return Err(CellError::Transient {
                    message: format!(
                        "injected fault at ({}, {label}) requires process isolation (--isolate)",
                        spec.name
                    ),
                    attempts: attempt,
                });
            }
            // Network faults exist only at the fleet transport; same
            // visibility backstop.
            Some(action) if action.requires_fleet() => {
                return Err(CellError::Transient {
                    message: format!(
                        "injected fault at ({}, {label}) requires fleet dispatch (--fleet)",
                        spec.name
                    ),
                    attempts: attempt,
                });
            }
            _ => {}
        }
        let entry = self.trace(spec, trace_len);
        if let Some(FaultAction::Slow(delay)) = action {
            sleep_cancellable(delay, token);
        }
        if token.is_cancelled() {
            return Err(CellError::Timeout { budget_ms });
        }
        match Simulator::new(config, &entry.trace).run_cancellable(token) {
            Ok(stats) => Ok((entry, Arc::new(stats))),
            Err(Cancelled) => Err(CellError::Timeout { budget_ms }),
        }
    }

    /// One attempt at a cell in a supervised worker process: injected
    /// faults are either realized supervisor-side (the purely logical
    /// `transient`/`trace` kinds) or shipped to the worker to happen
    /// inside the disposable process (`panic`/`slow`/`abort`/`hang`/
    /// `bigalloc`). The wall-clock budget is enforced by the supervisor
    /// with SIGKILL, so even a cell that never polls anything stops.
    #[allow(clippy::too_many_arguments)]
    fn attempt_cell_isolated(
        &self,
        supervisor: &Supervisor,
        spec: &WorkloadSpec,
        trace_len: usize,
        label: &str,
        config: &FrontendConfig,
        plan: Option<&FaultPlan>,
        retry: &RetryPolicy,
        attempt: u32,
    ) -> Result<(Arc<TraceEntry>, Arc<SimStats>), CellError> {
        let budget_ms = retry
            .cell_budget
            .map_or(0, |b| u64::try_from(b.as_millis()).unwrap_or(u64::MAX));
        let action = plan.and_then(|p| p.fire(&spec.name, label));
        let fault = match action {
            Some(FaultAction::TraceDecode) => {
                return Err(CellError::Transient {
                    message: format!("injected fault: trace decode failed for {}", spec.name),
                    attempts: attempt,
                });
            }
            Some(FaultAction::Transient) => {
                return Err(CellError::Transient {
                    message: format!(
                        "injected fault: transient failure at ({}, {label})",
                        spec.name
                    ),
                    attempts: attempt,
                });
            }
            Some(FaultAction::Panic) => Some(WorkerFault::Panic),
            Some(FaultAction::Slow(delay)) => Some(WorkerFault::Slow(
                u64::try_from(delay.as_millis()).unwrap_or(u64::MAX),
            )),
            Some(FaultAction::Abort) => Some(WorkerFault::Abort),
            Some(FaultAction::Hang) => Some(WorkerFault::Hang),
            Some(FaultAction::BigAlloc) => Some(WorkerFault::BigAlloc),
            // Network faults have no local transport to act on; keep a
            // smuggled plan visible instead of silently ignoring it.
            Some(
                FaultAction::NetDrop
                | FaultAction::NetPartition
                | FaultAction::NetSlowlink(_)
                | FaultAction::NetTruncFrame,
            ) => {
                return Err(CellError::Transient {
                    message: format!(
                        "injected fault at ({}, {label}) requires fleet dispatch (--fleet)",
                        spec.name
                    ),
                    attempts: attempt,
                });
            }
            None => None,
        };
        let stats = supervisor.run_cell(spec, trace_len, budget_ms, fault, config, attempt)?;
        // The worker generated its own copy; this one serves the
        // RunResult's trace characterization and is usually a store hit
        // thanks to run_matrix's pregeneration barrier.
        let entry = self.trace(spec, trace_len);
        Ok((entry, Arc::new(stats)))
    }

    /// One attempt at a cell on the fleet: logical faults are realized
    /// here, worker faults ship to the remote node's disposable child,
    /// and network faults are realized at the transport itself
    /// ([`NetFault`]) — severed links, silent partitions, slow links, and
    /// corrupt frames, each recovering through the same retry taxonomy a
    /// genuine node loss would.
    #[allow(clippy::too_many_arguments)]
    fn attempt_cell_fleet(
        &self,
        fleet: &Fleet,
        spec: &WorkloadSpec,
        trace_len: usize,
        label: &str,
        config: &FrontendConfig,
        plan: Option<&FaultPlan>,
        retry: &RetryPolicy,
        attempt: u32,
    ) -> Result<(Arc<TraceEntry>, Arc<SimStats>), CellError> {
        let budget_ms = retry
            .cell_budget
            .map_or(0, |b| u64::try_from(b.as_millis()).unwrap_or(u64::MAX));
        let action = plan.and_then(|p| p.fire(&spec.name, label));
        let mut fault = None;
        let mut net_fault = None;
        match action {
            Some(FaultAction::TraceDecode) => {
                return Err(CellError::Transient {
                    message: format!("injected fault: trace decode failed for {}", spec.name),
                    attempts: attempt,
                });
            }
            Some(FaultAction::Transient) => {
                return Err(CellError::Transient {
                    message: format!(
                        "injected fault: transient failure at ({}, {label})",
                        spec.name
                    ),
                    attempts: attempt,
                });
            }
            Some(FaultAction::Panic) => fault = Some(WorkerFault::Panic),
            Some(FaultAction::Slow(delay)) => {
                fault = Some(WorkerFault::Slow(
                    u64::try_from(delay.as_millis()).unwrap_or(u64::MAX),
                ));
            }
            Some(FaultAction::Abort) => fault = Some(WorkerFault::Abort),
            Some(FaultAction::Hang) => fault = Some(WorkerFault::Hang),
            Some(FaultAction::BigAlloc) => fault = Some(WorkerFault::BigAlloc),
            Some(FaultAction::NetDrop) => net_fault = Some(NetFault::Drop),
            Some(FaultAction::NetPartition) => net_fault = Some(NetFault::Partition),
            Some(FaultAction::NetSlowlink(delay)) => net_fault = Some(NetFault::Slowlink(delay)),
            Some(FaultAction::NetTruncFrame) => net_fault = Some(NetFault::TruncFrame),
            None => {}
        }
        let stats = fleet.run_cell(
            spec, trace_len, budget_ms, fault, net_fault, config, attempt,
        )?;
        // The remote node generated its own trace; this request serves the
        // RunResult's characterization from the local store.
        let entry = self.trace(spec, trace_len);
        Ok((entry, Arc::new(stats)))
    }

    /// The lockstep batch pass over one matrix: for each workload, claim
    /// every idle cell slot (first occurrence per config fingerprint) and
    /// simulate the claimed configs together through [`fdip::run_batch`]
    /// — one shared BPU walk per walk key. Returns finished results
    /// indexed by workload-major slot; `None` slots flow through the
    /// per-cell scheduler (already-cached cells, cells another thread is
    /// computing, duplicate-fingerprint labels — which then hit the cache
    /// exactly as they would solo — and everything when the pass is
    /// ineligible).
    ///
    /// Eligibility mirrors the solo path's extra machinery: a fault plan
    /// (faults are per-cell attempts), process isolation (cells run in
    /// disposable workers), or a cell wall-clock budget (cancellation is
    /// not plumbed through the lockstep loop) each suspend the pass, as
    /// does [`set_batching`](Self::set_batching)`(false)` or a
    /// single-config matrix (nothing to share).
    fn batch_pass(
        &self,
        workloads: &[WorkloadSpec],
        trace_len: usize,
        configs: &[(String, FrontendConfig)],
        threads: usize,
    ) -> Vec<Option<RunResult>> {
        let mut out: Vec<Option<RunResult>> = Vec::new();
        out.resize_with(workloads.len() * configs.len(), || None);
        if !self.batching_enabled()
            || configs.len() < 2
            || lock(&self.faults).is_some()
            || lock(&self.isolation).is_some()
            || lock(&self.fleet).is_some()
            || self.retry_policy().cell_budget.is_some()
        {
            return out;
        }
        // One batch per workload; workloads parallelize across threads
        // (each batch itself is single-threaded lockstep).
        type WorkloadChunk<'a> = (usize, &'a mut [Option<RunResult>]);
        let queue: Mutex<Vec<WorkloadChunk<'_>>> =
            Mutex::new(out.chunks_mut(configs.len()).enumerate().collect());
        let drain = |harness: &Harness| loop {
            let Some((w, chunk)) = lock(&queue).pop() else {
                return;
            };
            harness.batch_workload(&workloads[w], trace_len, configs, chunk);
        };
        if threads <= 1 {
            drain(self);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads.min(workloads.len()) {
                    scope.spawn(|| drain(self));
                }
            });
        }
        drop(queue);
        out
    }

    /// Claims and batch-simulates one workload's idle cells; fills the
    /// workload's `out` slice (indexed by config position) for every cell
    /// it completed. With fewer than two claimable cells the claims are
    /// released untouched — a lone cell gains nothing from the batch
    /// machinery. A panic inside the batch releases every claimed slot to
    /// idle so the per-cell path recomputes (and types) the failure solo.
    fn batch_workload(
        &self,
        spec: &WorkloadSpec,
        trace_len: usize,
        configs: &[(String, FrontendConfig)],
        out: &mut [Option<RunResult>],
    ) {
        // (config index, slot, fingerprint) per claimed cell.
        let mut claimed: Vec<(usize, Arc<CellSlot>, String)> = Vec::new();
        for (c, (_, config)) in configs.iter().enumerate() {
            let fingerprint = config_fingerprint(config);
            if claimed.iter().any(|(_, _, f)| f == &fingerprint) {
                continue; // duplicate label: later a plain cache hit
            }
            let slot = {
                let mut map = lock(&self.cells);
                map.entry((spec.name.clone(), trace_len, fingerprint.clone()))
                    .or_default()
                    .clone()
            };
            let mut state = lock(&slot.state);
            if matches!(*state, CellState::Idle) {
                // The disk cache settles claims here too; the per-cell
                // scheduler then serves the slot as an ordinary hit.
                if let Some(cache) = lock(&self.disk_cache).clone() {
                    if let CacheLookup::Hit(stats) =
                        cache.lookup(&spec.name, trace_len, &fingerprint)
                    {
                        *state = CellState::Done(Arc::new(*stats));
                        drop(state);
                        slot.done.notify_all();
                        self.remote_cache_hits.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                *state = CellState::Computing;
                drop(state);
                claimed.push((c, slot, fingerprint));
            }
        }
        if claimed.len() < 2 {
            for (_, slot, _) in &claimed {
                *lock(&slot.state) = CellState::Idle;
                slot.done.notify_all();
            }
            return;
        }
        // One trace-store request per claimed cell, exactly as the
        // per-cell path would make — keeps the hit/shared telemetry
        // split identical whether or not cells batch.
        let mut entry = self.trace(spec, trace_len);
        for _ in 1..claimed.len() {
            entry = self.trace(spec, trace_len);
        }
        let batch_configs: Vec<FrontendConfig> = claimed
            .iter()
            .map(|(c, _, _)| configs[*c].1.clone())
            .collect();
        let outcome =
            quiet_catch_unwind(AssertUnwindSafe(|| run_batch(&batch_configs, &entry.trace)));
        let Ok(batch_stats) = outcome else {
            for (_, slot, _) in &claimed {
                *lock(&slot.state) = CellState::Idle;
                slot.done.notify_all();
            }
            return;
        };
        let journal = lock(&self.journal).clone();
        for ((c, slot, fingerprint), stats) in claimed.into_iter().zip(batch_stats) {
            let stats = Arc::new(stats);
            *lock(&slot.state) = CellState::Done(Arc::clone(&stats));
            slot.done.notify_all();
            self.cells_simulated.fetch_add(1, Ordering::Relaxed);
            self.cells_batched.fetch_add(1, Ordering::Relaxed);
            let record = JournalEntry {
                workload: spec.name.clone(),
                trace_len,
                config: fingerprint,
                stats: (*stats).clone(),
            };
            if let Some(journal) = &journal {
                if let Err(err) = journal.append(&record) {
                    eprintln!(
                        "warning: journal append to {} failed: {err}",
                        journal.path().display()
                    );
                }
            }
            self.cache_store(&record);
            out[c] = Some(RunResult {
                workload: spec.name.clone(),
                config: configs[c].0.clone(),
                stats: (*stats).clone(),
                trace_stats: entry.stats.clone(),
                error: None,
            });
        }
    }

    /// Evaluates `configs` × `workloads` over traces of `trace_len`.
    ///
    /// Parallelism is cell-granular: each worker steals one
    /// `(workload, config)` cell at a time, so a matrix of any shape —
    /// one workload × many configs, many × one — saturates the machine.
    /// Results come back workload-major in the input orders, independent
    /// of thread count and scheduling.
    ///
    /// A cell that fails terminally (see [`crate::fault`]) still yields
    /// its [`RunResult`] row, carrying the [`CellError`] and default
    /// statistics; the rest of the matrix is unaffected. Use
    /// [`MatrixResults::try_cell`] / [`MatrixResults::failures`] to
    /// observe failures.
    pub fn run_matrix(
        &self,
        workloads: &[WorkloadSpec],
        trace_len: usize,
        configs: &[(String, FrontendConfig)],
    ) -> MatrixResults {
        let total = workloads.len() * configs.len();
        let threads = self
            .threads
            .unwrap_or_else(|| {
                // Under isolation or fleet dispatch, one dispatching
                // thread per worker seat saturates the pool; more would
                // only queue on it.
                if let Some(fleet) = lock(&self.fleet).as_deref() {
                    fleet.workers()
                } else {
                    match lock(&self.isolation).as_deref() {
                        Some(supervisor) => supervisor.workers(),
                        None => std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(4),
                    }
                }
            })
            .min(total.max(1));

        // Generate every trace up front, one task per workload, before any
        // cell runs. Cell workers then only ever *hit* the finished store,
        // which pins the hit/shared telemetry split — without the barrier a
        // worker could catch a sibling workload's generation still in
        // flight and count `traces_shared` instead of `trace_hits`, making
        // `stats()` scheduling-dependent (tests/determinism.rs pins it).
        let next_trace = std::sync::atomic::AtomicUsize::new(0);
        let generate = |harness: &Harness| loop {
            let w = next_trace.fetch_add(1, Ordering::Relaxed);
            if w >= workloads.len() {
                return;
            }
            harness.trace(&workloads[w], trace_len);
        };
        if threads <= 1 {
            generate(self);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads.min(workloads.len()) {
                    scope.spawn(|| generate(self));
                }
            });
        }

        // Lockstep batch pass: simulate each workload's idle cells
        // together over one shared BPU walk where their keys allow. The
        // per-cell loop below then only sees cache hits for those slots.
        let prefilled = self.batch_pass(workloads, trace_len, configs, threads);
        let filled: Vec<bool> = prefilled.iter().map(Option::is_some).collect();

        // Hand cells out config-major (cell k ↦ workload k % W) so
        // neighboring steals touch different traces and the work mix per
        // thread stays varied.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, RunResult)>> = Mutex::new(Vec::with_capacity(total));
        for (slot, result) in prefilled.into_iter().enumerate() {
            if let Some(result) = result {
                lock(&collected).push((slot, result));
            }
        }
        let work = |harness: &Harness| loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= total {
                return;
            }
            let (w, c) = (k % workloads.len(), k / workloads.len());
            if filled[w * configs.len() + c] {
                continue;
            }
            let spec = &workloads[w];
            let (label, config) = &configs[c];
            let result = match harness.cell_stats(spec, trace_len, label, config) {
                Ok((entry, stats)) => RunResult {
                    workload: spec.name.clone(),
                    config: label.clone(),
                    stats: (*stats).clone(),
                    trace_stats: entry.stats.clone(),
                    error: None,
                },
                Err(error) => RunResult {
                    workload: spec.name.clone(),
                    config: label.clone(),
                    stats: SimStats::default(),
                    trace_stats: TraceStats::default(),
                    error: Some(error),
                },
            };
            // Slot index is workload-major: the final output order.
            lock(&collected).push((w * configs.len() + c, result));
        };

        if threads <= 1 {
            work(self);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| work(self));
                }
            });
        }

        let mut cells = collected
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        cells.sort_by_key(|(slot, _)| *slot);
        debug_assert_eq!(cells.len(), total);
        MatrixResults::new(cells.into_iter().map(|(_, r)| r).collect())
    }
}

thread_local! {
    /// True while this thread is inside a harness cell attempt, where any
    /// panic is caught and converted to a [`CellError`].
    static IN_CELL_ATTEMPT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `catch_unwind` without the default hook's backtrace spew: a panic that
/// is about to become a typed [`CellError`] is an *expected* outcome, so
/// printing a full backtrace per attempt (retries included) only buries
/// real diagnostics. The process-wide hook is replaced once with a
/// delegating wrapper; panics outside cell attempts still report exactly
/// as before.
fn quiet_catch_unwind<R>(body: AssertUnwindSafe<impl FnOnce() -> R>) -> std::thread::Result<R> {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_CELL_ATTEMPT.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
    IN_CELL_ATTEMPT.with(|flag| flag.set(true));
    let outcome = panic::catch_unwind(body);
    IN_CELL_ATTEMPT.with(|flag| flag.set(false));
    outcome
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Sleeps up to `total`, in small slices so an expiring [`CancelToken`]
/// cuts the wait short (used by the injected-slowness fault).
fn sleep_cancellable(total: Duration, token: &CancelToken) {
    const STEP: Duration = Duration::from_millis(5);
    let mut remaining = total;
    while !remaining.is_zero() {
        if token.is_cancelled() {
            return;
        }
        let chunk = remaining.min(STEP);
        std::thread::sleep(chunk);
        remaining -= chunk;
    }
}

/// The content fingerprint of a configuration: its full field-by-field
/// `Debug` rendering (see [`CellKey`]'s docs for why this is sound).
pub fn config_fingerprint(config: &FrontendConfig) -> String {
    format!("{config:?}")
}

/// The results of one matrix run, with an index for O(1) cell lookup.
///
/// Dereferences to the workload-major `[RunResult]` slice for iteration.
#[derive(Clone, Debug)]
pub struct MatrixResults {
    results: Vec<RunResult>,
    index: HashMap<(String, String), usize>,
}

impl MatrixResults {
    /// Builds the index over `results` (later duplicates win, matching the
    /// behavior of re-running the cell).
    pub fn new(results: Vec<RunResult>) -> MatrixResults {
        let index = results
            .iter()
            .enumerate()
            .map(|(i, r)| ((r.workload.clone(), r.config.clone()), i))
            .collect();
        MatrixResults { results, index }
    }

    /// The cell for `(workload, config)`, if it was part of the matrix
    /// (failed cells included — check
    /// [`RunResult::error`](crate::runner::RunResult)).
    pub fn get(&self, workload: &str, config: &str) -> Option<&RunResult> {
        self.index
            .get(&(workload.to_string(), config.to_string()))
            .map(|&i| &self.results[i])
    }

    /// The successfully simulated cell for `(workload, config)`.
    ///
    /// # Errors
    ///
    /// [`CellError::Missing`] when the pair was not part of the matrix;
    /// the cell's own [`CellError`] when it failed. Experiments use this
    /// to degrade gracefully — render the rows they can, mark the rest.
    pub fn try_cell(&self, workload: &str, config: &str) -> Result<&RunResult, CellError> {
        let result = self
            .get(workload, config)
            .ok_or_else(|| CellError::Missing {
                workload: workload.to_string(),
                config: config.to_string(),
            })?;
        match &result.error {
            Some(error) => Err(error.clone()),
            None => Ok(result),
        }
    }

    /// The cell for `(workload, config)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is missing. Failed cells are returned with
    /// default statistics, which silently corrupts derived numbers —
    /// prefer [`try_cell`](Self::try_cell).
    #[deprecated(note = "use try_cell, which surfaces failed cells as errors")]
    pub fn cell(&self, workload: &str, config: &str) -> &RunResult {
        self.get(workload, config)
            .unwrap_or_else(|| panic!("missing cell ({workload}, {config})"))
    }

    /// The cells that failed, in matrix order.
    pub fn failures(&self) -> impl Iterator<Item = &RunResult> {
        self.results.iter().filter(|r| r.error.is_some())
    }

    /// Consumes the results for persistence.
    pub fn into_cells(self) -> Vec<RunResult> {
        self.results
    }
}

impl Deref for MatrixResults {
    type Target = [RunResult];
    fn deref(&self) -> &[RunResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{suite, SuiteKind};
    use crate::Scale;
    use fdip::PrefetcherKind;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    const LEN: usize = 8_000;

    fn configs() -> Vec<(String, FrontendConfig)> {
        vec![
            ("base".to_string(), FrontendConfig::default()),
            (
                "fdip".to_string(),
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
        ]
    }

    /// A policy that retries immediately, so fault tests stay fast.
    fn eager_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            backoff: Duration::ZERO,
            cell_budget: None,
        }
    }

    fn temp_journal(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fdip-harness-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn trace_store_generates_once() {
        let harness = Harness::new();
        let spec = &suite(SuiteKind::Client, Scale::quick())[0];
        let a = harness.trace(spec, LEN);
        let b = harness.trace(spec, LEN);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(harness.stats().traces_generated, 1);
        assert_eq!(harness.stats().trace_hits, 1);
        // A different length is a different trace.
        let c = harness.trace(spec, LEN / 2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(harness.stats().traces_generated, 2);
    }

    #[test]
    fn cell_cache_is_content_keyed_across_labels() {
        let harness = Harness::new();
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let first = harness.run_matrix(&workloads, LEN, &configs());
        // Same config content under different labels: all hits.
        let relabeled = vec![
            ("no-prefetch".to_string(), FrontendConfig::default()),
            (
                "prefetch".to_string(),
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
        ];
        let second = harness.run_matrix(&workloads, LEN, &relabeled);
        let stats = harness.stats();
        assert_eq!(stats.cells_simulated, 2, "{stats:?}");
        assert_eq!(stats.cell_hits, 2, "{stats:?}");
        assert_eq!(stats.traces_generated, 1, "{stats:?}");
        assert_eq!(
            first.try_cell("client-1", "fdip").unwrap().stats,
            second.try_cell("client-1", "prefetch").unwrap().stats
        );
    }

    #[test]
    fn matrix_order_is_workload_major() {
        let harness = Harness::new();
        let workloads = suite(SuiteKind::All, Scale::quick());
        let results = harness.run_matrix(&workloads, LEN, &configs());
        assert_eq!(results.len(), workloads.len() * 2);
        for (w, spec) in workloads.iter().enumerate() {
            assert_eq!(results[2 * w].workload, spec.name);
            assert_eq!(results[2 * w].config, "base");
            assert_eq!(results[2 * w + 1].config, "fdip");
        }
    }

    #[test]
    fn lookup_is_option_on_the_library_path() {
        let harness = Harness::new();
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let results = harness.run_matrix(&workloads, LEN, &configs());
        assert!(results.get("client-1", "base").is_some());
        assert!(results.get("client-1", "nope").is_none());
        assert!(results.get("ghost", "base").is_none());
        assert!(matches!(
            results.try_cell("ghost", "base"),
            Err(CellError::Missing { .. })
        ));
        assert_eq!(results.failures().count(), 0);
    }

    #[test]
    #[should_panic(expected = "missing cell")]
    fn missing_cell_panics() {
        #[allow(deprecated)]
        MatrixResults::new(Vec::new()).cell("nope", "nada");
    }

    #[test]
    fn shared_counters_account_for_concurrent_requests() {
        let harness = Harness::new();
        let spec = &suite(SuiteKind::Client, Scale::quick())[0];
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _ = harness.trace(spec, LEN);
                });
            }
        });
        // Exactly one generation; the others were hits or coalesced onto
        // the in-flight one, but never duplicated work.
        let st = harness.stats();
        assert_eq!(st.traces_generated, 1, "{st:?}");
        assert_eq!(st.trace_hits + st.traces_shared, 3, "{st:?}");
    }

    #[test]
    fn stats_serialize_and_total() {
        let st = HarnessStats {
            traces_generated: 1,
            cells_simulated: 2,
            cell_hits: 3,
            cells_shared: 4,
            cells_failed: 5,
            ..HarnessStats::default()
        };
        assert_eq!(st.cell_requests(), 14);
        let json = fdip_types::ToJson::to_json(&st).to_string();
        assert!(json.contains(r#""cells_shared":4"#), "{json}");
        assert!(json.contains(r#""traces_shared":0"#), "{json}");
        assert!(json.contains(r#""cells_failed":5"#), "{json}");
        assert!(json.contains(r#""journal_restored":0"#), "{json}");
    }

    #[test]
    fn fingerprints_separate_distinct_configs() {
        let base = config_fingerprint(&FrontendConfig::default());
        let fdip =
            config_fingerprint(&FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()));
        assert_ne!(base, fdip);
        assert_eq!(base, config_fingerprint(&FrontendConfig::default()));
    }

    #[test]
    fn injected_panic_is_isolated_to_its_cell() {
        let harness = Harness::new();
        harness.set_retry_policy(eager_retry(2));
        harness.set_fault_plan(Some(FaultPlan::parse("panic@client-1/fdip").unwrap()));
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let results = harness.run_matrix(&workloads, LEN, &configs());

        // The panicking cell is a typed failure; its neighbor is fine.
        assert!(results.try_cell("client-1", "base").is_ok());
        let err = results.try_cell("client-1", "fdip").unwrap_err();
        assert!(
            matches!(&err, CellError::Panic { attempts: 2, message } if message.contains("injected")),
            "{err:?}"
        );
        assert_eq!(results.failures().count(), 1);
        let st = harness.stats();
        assert_eq!(st.cells_failed, 1, "{st:?}");
        assert_eq!(st.cell_retries, 1, "{st:?}");
        assert_eq!(st.cells_simulated, 1, "{st:?}");
    }

    #[test]
    fn transient_fault_retries_to_the_fault_free_value() {
        let harness = Harness::new();
        harness.set_retry_policy(eager_retry(3));
        harness.set_fault_plan(Some(FaultPlan::parse("transient@client-1/base:2").unwrap()));
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let faulty = harness.run_matrix(&workloads, LEN, &configs());
        let st = harness.stats();
        assert_eq!(st.cells_failed, 0, "{st:?}");
        assert_eq!(st.cell_retries, 2, "{st:?}");

        let clean = Harness::new().run_matrix(&workloads, LEN, &configs());
        assert_eq!(
            faulty.try_cell("client-1", "base").unwrap().stats,
            clean.try_cell("client-1", "base").unwrap().stats
        );
    }

    #[test]
    fn slow_cell_times_out_against_its_budget_without_retry() {
        let harness = Harness::new();
        harness.set_retry_policy(RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
            cell_budget: Some(Duration::from_millis(30)),
        });
        harness.set_fault_plan(Some(FaultPlan::parse("slow@client-1/base:10000").unwrap()));
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let results = harness.run_matrix(&workloads, LEN, &configs());
        let err = results.try_cell("client-1", "base").unwrap_err();
        assert_eq!(err, CellError::Timeout { budget_ms: 30 });
        let st = harness.stats();
        assert_eq!(st.cell_timeouts, 1, "{st:?}");
        assert_eq!(st.cells_failed, 1, "{st:?}");
        // Timeouts are terminal: no retry was burned on it.
        assert_eq!(st.cell_retries, 0, "{st:?}");
        // The untargeted fdip cell still simulated inside the budget.
        assert!(results.try_cell("client-1", "fdip").is_ok());
    }

    #[test]
    fn failed_cells_are_not_cached_and_recover_on_rerun() {
        let harness = Harness::new();
        harness.set_retry_policy(eager_retry(1));
        harness.set_fault_plan(Some(FaultPlan::parse("panic@client-1/base:1").unwrap()));
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let first = harness.run_matrix(&workloads, LEN, &configs());
        assert!(first.try_cell("client-1", "base").is_err());
        assert_eq!(harness.stats().cells_failed, 1);

        // The plan's single shot is spent; the slot went back to idle, so
        // the rerun computes the cell successfully instead of serving a
        // cached failure.
        let second = harness.run_matrix(&workloads, LEN, &configs());
        assert!(second.try_cell("client-1", "base").is_ok());
        assert_eq!(harness.stats().cells_failed, 1);
    }

    #[test]
    fn poisoned_locks_recover_even_on_the_global_harness() {
        // Poison a private lock the way a panicking thread would, then
        // prove the harness still serves requests. Run against the
        // process-wide instance on purpose: this is the regression test
        // for a panic in one experiment bricking the rest of the run.
        let harness = Harness::global();
        let spec = &suite(SuiteKind::Client, Scale::quick())[0];
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = harness.traces.lock().unwrap();
                panic!("poison the trace store");
            })
            .join()
        });
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = harness.cells.lock().unwrap();
                panic!("poison the cell cache");
            })
            .join()
        });
        // Both locks are now poisoned; every path must recover.
        let entry = harness.trace(spec, LEN / 4);
        assert!(!entry.trace.is_empty());
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let results = harness.run_matrix(&workloads, LEN / 4, &configs());
        assert!(results.try_cell("client-1", "base").is_ok());
    }

    #[test]
    fn journal_resume_re_simulates_nothing_and_is_byte_identical() {
        let path = temp_journal("resume");
        let workloads = suite(SuiteKind::Client, Scale::quick());

        let first = Harness::new();
        let summary = first.attach_journal(&path).unwrap();
        assert_eq!(summary, JournalSummary::default());
        let a = first.run_matrix(&workloads, LEN, &configs());
        assert_eq!(first.stats().cells_simulated, 2);

        // A "restarted" harness attaches the same journal: every cell is
        // preloaded, zero cells simulate, output is byte-identical.
        let second = Harness::new();
        let summary = second.attach_journal(&path).unwrap();
        assert_eq!(summary.restored, 2);
        assert_eq!(summary.skipped, 0);
        let b = second.run_matrix(&workloads, LEN, &configs());
        let st = second.stats();
        assert_eq!(st.cells_simulated, 0, "{st:?}");
        assert_eq!(st.journal_restored, 2, "{st:?}");
        assert_eq!(st.cell_hits, 2, "{st:?}");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(
                fdip_types::ToJson::to_json(x).to_string(),
                fdip_types::ToJson::to_json(y).to_string()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_matrix_is_byte_identical_to_solo() {
        let workloads = suite(SuiteKind::Client, Scale::quick());
        // Mix shared-walk configs with a walk-key singleton so the batch
        // exercises both the shared and private BPU paths.
        let configs = vec![
            ("base".to_string(), FrontendConfig::default()),
            (
                "fdip".to_string(),
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
            (
                "ftb".to_string(),
                FrontendConfig::default()
                    .with_btb(fdip::BtbVariant::basic_block(2048))
                    .with_prefetcher(PrefetcherKind::fdip()),
            ),
        ];

        let batched = Harness::new();
        let a = batched.run_matrix(&workloads, LEN, &configs);
        let bst = batched.stats();
        assert_eq!(bst.cells_batched, 3, "{bst:?}");
        assert_eq!(bst.cells_simulated, 3, "{bst:?}");

        let solo = Harness::new();
        solo.set_batching(false);
        let b = solo.run_matrix(&workloads, LEN, &configs);
        let sst = solo.stats();
        assert_eq!(sst.cells_batched, 0, "{sst:?}");
        assert_eq!(sst.cells_simulated, 3, "{sst:?}");
        // Trace-store telemetry must not reveal which path ran either.
        assert_eq!(
            bst.traces_generated, sst.traces_generated,
            "{bst:?} {sst:?}"
        );
        assert_eq!(bst.trace_hits, sst.trace_hits, "{bst:?} {sst:?}");

        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(
                fdip_types::ToJson::to_json(x).to_string(),
                fdip_types::ToJson::to_json(y).to_string()
            );
        }
    }

    #[test]
    fn fault_plan_suspends_the_batch_pass() {
        let harness = Harness::new();
        harness.set_retry_policy(eager_retry(3));
        harness.set_fault_plan(Some(FaultPlan::parse("transient@client-1/base:1").unwrap()));
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let results = harness.run_matrix(&workloads, LEN, &configs());
        // Every cell went through the per-cell path, where the fault hook
        // lives: the fault fired (and retried) instead of being skipped.
        let st = harness.stats();
        assert_eq!(st.cells_batched, 0, "{st:?}");
        assert_eq!(st.cell_retries, 1, "{st:?}");
        assert!(results.try_cell("client-1", "base").is_ok());
    }

    #[test]
    fn duplicate_labels_batch_once_and_hit_for_the_rest() {
        let harness = Harness::new();
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let dup = vec![
            ("a".to_string(), FrontendConfig::default()),
            (
                "b".to_string(),
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
            ("a-again".to_string(), FrontendConfig::default()),
        ];
        let results = harness.run_matrix(&workloads, LEN, &dup);
        let st = harness.stats();
        // Two distinct fingerprints batch; the relabeled duplicate is an
        // ordinary cache hit, exactly as it is on the solo path.
        assert_eq!(st.cells_batched, 2, "{st:?}");
        assert_eq!(st.cells_simulated, 2, "{st:?}");
        assert_eq!(st.cell_hits, 1, "{st:?}");
        assert_eq!(
            results.try_cell("client-1", "a").unwrap().stats,
            results.try_cell("client-1", "a-again").unwrap().stats
        );
    }
}
