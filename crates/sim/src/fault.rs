//! The harness's fault model: the cell error taxonomy, the retry policy,
//! and deterministic fault injection.
//!
//! A long `exp_all` run evaluates thousands of cells; one panicking or
//! hanging cell must degrade that run, not destroy it. This module defines
//! what a degraded cell looks like ([`CellError`]), how hard the harness
//! tries before giving up ([`RetryPolicy`]), and how every one of those
//! paths is exercised deterministically in tests and CI ([`FaultPlan`]).
//!
//! Injection is coordinate-addressed: a fault fires when the harness
//! *computes* the cell whose `(workload, config-label)` pair matches a
//! site in the plan. Because the cell cache is content-keyed, a cell that
//! is already cached never computes and therefore never faults — same
//! property as the cache itself, so a plan is reproducible run to run.

use std::sync::Mutex;
use std::time::Duration;

use fdip_types::{Json, ToJson};

/// Why one cell of a matrix failed to produce statistics.
///
/// Carried in [`RunResult`](crate::runner::RunResult) and surfaced as
/// `FAILED(...)` table markers, structured JSON error bodies in
/// `fdip-serve`, and [`MatrixResults::try_cell`]
/// (crate::harness::MatrixResults::try_cell) errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellError {
    /// The `(workload, config)` pair was not part of the matrix at all.
    Missing {
        /// Requested workload name.
        workload: String,
        /// Requested config label.
        config: String,
    },
    /// The cell's worker panicked on every attempt.
    Panic {
        /// The panic payload (or a placeholder for non-string payloads).
        message: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The cell exceeded its wall-clock budget and was cancelled.
    /// Deliberately not retried: a timed-out cell would almost certainly
    /// time out again and double the damage.
    Timeout {
        /// The configured per-cell budget, in milliseconds.
        budget_ms: u64,
    },
    /// A transient failure (injected, or a recoverable decode error)
    /// persisted through every retry.
    Transient {
        /// Failure description.
        message: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The worker *process* computing the cell died — abort, stack
    /// overflow, OOM kill, or an unresponsive worker the supervisor had
    /// to SIGKILL. Only produced under `--isolate`; in-process execution
    /// cannot survive these to report them.
    Crashed {
        /// The signal that terminated the worker (`Some(6)` for SIGABRT,
        /// `Some(9)` for SIGKILL, …), when it died to one.
        signal: Option<i32>,
        /// The worker's exit code, when it exited on its own.
        code: Option<i32>,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl CellError {
    /// Short machine-readable discriminant (the JSON `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            CellError::Missing { .. } => "missing",
            CellError::Panic { .. } => "panic",
            CellError::Timeout { .. } => "timeout",
            CellError::Transient { .. } => "transient",
            CellError::Crashed { .. } => "crashed",
        }
    }

    /// Whether the harness retries this failure class. Panics, transient
    /// errors, and worker crashes may be one-off (a crash can be an OOM
    /// kill under momentary pressure, or collateral from a recycled
    /// worker); timeouts and missing cells are structural and retrying
    /// them only burns the budget again.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            CellError::Panic { .. } | CellError::Transient { .. } | CellError::Crashed { .. }
        )
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Missing { workload, config } => {
                write!(f, "missing cell ({workload}, {config})")
            }
            CellError::Panic { message, attempts } => {
                write!(f, "panicked after {attempts} attempt(s): {message}")
            }
            CellError::Timeout { budget_ms } => {
                write!(f, "exceeded the {budget_ms}ms cell budget")
            }
            CellError::Transient { message, attempts } => {
                write!(f, "failed after {attempts} attempt(s): {message}")
            }
            CellError::Crashed {
                signal,
                code,
                attempts,
            } => match (signal, code) {
                (Some(sig), _) => {
                    write!(
                        f,
                        "worker killed by signal {sig} after {attempts} attempt(s)"
                    )
                }
                (None, Some(code)) => {
                    write!(
                        f,
                        "worker exited with code {code} after {attempts} attempt(s)"
                    )
                }
                (None, None) => write!(
                    f,
                    "worker stopped responding and was killed after {attempts} attempt(s)"
                ),
            },
        }
    }
}

impl std::error::Error for CellError {}

impl ToJson for CellError {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("kind", Json::str(self.kind()))];
        match self {
            CellError::Missing { workload, config } => {
                pairs.push(("workload", Json::str(workload)));
                pairs.push(("config", Json::str(config)));
            }
            CellError::Panic { message, attempts } | CellError::Transient { message, attempts } => {
                pairs.push(("message", Json::str(message)));
                pairs.push(("attempts", Json::uint(u64::from(*attempts))));
            }
            CellError::Timeout { budget_ms } => {
                pairs.push(("budget_ms", Json::uint(*budget_ms)));
            }
            CellError::Crashed {
                signal,
                code,
                attempts,
            } => {
                if let Some(sig) = signal {
                    pairs.push(("signal", Json::uint(u64::from(sig.unsigned_abs()))));
                }
                if let Some(code) = code {
                    pairs.push(("code", Json::uint(u64::from(code.unsigned_abs()))));
                }
                pairs.push(("attempts", Json::uint(u64::from(*attempts))));
            }
        }
        Json::obj(pairs)
    }
}

/// How hard the harness works on one cell before declaring it failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell request (first try included). At least 1.
    pub max_attempts: u32,
    /// Base backoff before a retry; attempt `n` waits roughly
    /// `backoff * 2^(n-2)` plus deterministic jitter, capped at 2 seconds.
    pub backoff: Duration,
    /// Wall-clock budget per attempt; an attempt past it is cancelled
    /// cooperatively and reported as [`CellError::Timeout`]. `None`
    /// disables the watchdog.
    pub cell_budget: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(25),
            cell_budget: None,
        }
    }
}

impl RetryPolicy {
    /// The delay to sleep before attempt `attempt` (2-based: the first
    /// retry). Exponential in the attempt number with deterministic jitter
    /// derived from `jitter_key` (the cell's content hash plus the plan
    /// seed), so two harnesses replaying the same faults back off
    /// identically without thundering in lockstep across cells.
    pub fn backoff_before(&self, attempt: u32, jitter_key: u64) -> Duration {
        const CAP: Duration = Duration::from_secs(2);
        let doublings = attempt.saturating_sub(2).min(6);
        let base = self.backoff.saturating_mul(1 << doublings);
        let jitter_range = self.backoff.as_nanos().clamp(1, u64::MAX as u128) as u64;
        let jitter = splitmix64(jitter_key ^ u64::from(attempt)) % jitter_range;
        (base + Duration::from_nanos(jitter)).min(CAP)
    }
}

/// SplitMix64: the workspace's standard seed scrambler (the in-tree `rand`
/// shim uses it the same way). Deterministic, stateless, good avalanche.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a string, for content-keyed jitter.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// What an armed fault site does to the attempt that trips it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the worker (exercises `catch_unwind` isolation).
    Panic,
    /// Fail the attempt with a transient, retryable error.
    Transient,
    /// Fail the attempt as a trace-decode error (also retryable).
    TraceDecode,
    /// Sleep this long before simulating (exercises the watchdog).
    Slow(Duration),
    /// `std::process::abort()` in the worker process — uncatchable by
    /// `catch_unwind`, so only meaningful under `--isolate`.
    Abort,
    /// Busy-loop forever without ever polling the `CancelToken` — the
    /// runaway cell cooperative cancellation cannot preempt. Only the
    /// supervisor's hard wall-clock SIGKILL ends it.
    Hang,
    /// Attempt an allocation larger than the address space, driving the
    /// allocator into `handle_alloc_error` → abort (a deterministic
    /// stand-in for an OOM kill). Isolation-only.
    BigAlloc,
    /// Sever the fleet connection instead of dispatching — a node dying
    /// the instant it was picked. Fleet-only.
    NetDrop,
    /// Dispatch over the fleet, then go deaf: heartbeats and the reply
    /// never arrive, exercising the heartbeat-loss recovery path.
    /// Fleet-only.
    NetPartition,
    /// Delay the fleet dispatch by this long — a congested link.
    /// Fleet-only.
    NetSlowlink(Duration),
    /// Replace the fleet request with a truncated garbage frame, so the
    /// remote end must reject it and the dialer must re-dispatch.
    /// Fleet-only.
    NetTruncFrame,
}

impl FaultAction {
    /// Whether this action can only be contained by process isolation.
    /// The in-process harness refuses plans carrying these (they would
    /// take the whole run down), and the CLI rejects them without
    /// `--isolate`.
    pub fn requires_isolation(&self) -> bool {
        matches!(
            self,
            FaultAction::Abort | FaultAction::Hang | FaultAction::BigAlloc
        )
    }

    /// Whether this action injects at the fleet transport and therefore
    /// needs `--fleet` to mean anything: without remote dispatch there is
    /// no connection to drop, partition, slow, or corrupt.
    pub fn requires_fleet(&self) -> bool {
        matches!(
            self,
            FaultAction::NetDrop
                | FaultAction::NetPartition
                | FaultAction::NetSlowlink(_)
                | FaultAction::NetTruncFrame
        )
    }
}

/// What kind of fault a site injects, and how many times.
#[derive(Clone, Debug, PartialEq, Eq)]
enum FaultKind {
    /// Panic; `times: None` panics on every attempt (a permanent failure).
    Panic { times: Option<u32> },
    /// Fail the first `times` attempts, then succeed.
    Transient { times: u32 },
    /// Trace-decode failure for the first `times` attempts.
    TraceDecode { times: u32 },
    /// Sleep `ms` before simulating, every attempt.
    Slow { ms: u64 },
    /// Abort the worker process; `times: None` aborts every attempt.
    Abort { times: Option<u32> },
    /// Spin forever (never polls cancellation), every attempt.
    Hang,
    /// Abort via an impossible allocation; `times: None` = every attempt.
    BigAlloc { times: Option<u32> },
    /// Sever the fleet connection for the first `times` attempts.
    Drop { times: u32 },
    /// Partition (dispatch then silence) for the first `times` attempts.
    Partition { times: u32 },
    /// Delay every fleet dispatch by `ms`.
    Slowlink { ms: u64 },
    /// Corrupt the request frame for the first `times` attempts.
    TruncFrame { times: u32 },
}

impl FaultKind {
    fn requires_isolation(&self) -> bool {
        matches!(
            self,
            FaultKind::Abort { .. } | FaultKind::Hang | FaultKind::BigAlloc { .. }
        )
    }

    fn requires_fleet(&self) -> bool {
        matches!(
            self,
            FaultKind::Drop { .. }
                | FaultKind::Partition { .. }
                | FaultKind::Slowlink { .. }
                | FaultKind::TruncFrame { .. }
        )
    }
}

/// One coordinate-addressed injection site.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FaultSite {
    /// Workload name to match, or `*` for any.
    workload: String,
    /// Config label to match, or `*` for any.
    config: String,
    kind: FaultKind,
}

impl FaultSite {
    fn matches(&self, workload: &str, config: &str) -> bool {
        (self.workload == "*" || self.workload == workload)
            && (self.config == "*" || self.config == config)
    }
}

/// A deterministic set of faults to inject at chosen
/// `(workload, config-label)` coordinates.
///
/// Built from a compact spec (CLI `--faults`, env `FDIP_FAULTS`):
///
/// ```text
/// spec  := item (',' item)*
/// item  := 'seed=' N
///        | 'panic@' W '/' C [':' TIMES]     TIMES omitted = every attempt
///        | 'transient@' W '/' C [':' TIMES] default 1
///        | 'trace@' W '/' C [':' TIMES]     default 1
///        | 'slow@' W '/' C ':' MILLIS
///        | 'abort@' W '/' C [':' TIMES]     isolation-only; default every
///        | 'hang@' W '/' C                  isolation-only
///        | 'bigalloc@' W '/' C [':' TIMES]  isolation-only; default every
///        | 'drop@' W '/' C [':' TIMES]      fleet-only; default 1
///        | 'partition@' W '/' C [':' TIMES] fleet-only; default 1
///        | 'slowlink@' W '/' C ':' MILLIS   fleet-only
///        | 'truncframe@' W '/' C [':' TIMES] fleet-only; default 1
/// W, C  := workload name / config label, or '*'
/// ```
///
/// The `abort`/`hang`/`bigalloc` kinds crash or wedge the *process*
/// computing the cell, so they are accepted only when cells execute in
/// supervised worker processes (`--isolate`); see
/// [`requires_isolation`](Self::requires_isolation).
///
/// The `drop`/`partition`/`slowlink`/`truncframe` kinds inject at the
/// fleet transport (severed connections, silent peers, slow links,
/// corrupt frames) and are accepted only under `--fleet`; see
/// [`requires_fleet`](Self::requires_fleet). They default to firing
/// *once* so a drilled run converges: the re-dispatch must succeed and
/// the output must match a fault-free run.
///
/// `panic@server-1/fdip,transient@client-1/base:2,slow@*/nlp:500` panics
/// the `(server-1, fdip)` cell permanently, fails `(client-1, base)`
/// twice before letting it succeed, and delays every `nlp` cell by half a
/// second. Each site counts its own firings under a lock, so a plan is
/// deterministic regardless of worker-thread interleaving.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<FaultSite>,
    fired: Mutex<Vec<u32>>,
}

impl FaultPlan {
    /// Parses a fault spec (grammar in the type docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed item.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(seed) = item.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("bad fault seed {seed:?}"))?;
                continue;
            }
            let (kind, coords) = item
                .split_once('@')
                .ok_or_else(|| format!("fault item {item:?} is missing '@'"))?;
            let (coords, arg) = match coords.split_once(':') {
                Some((c, a)) => (c, Some(a)),
                None => (coords, None),
            };
            let (workload, config) = coords
                .split_once('/')
                .ok_or_else(|| format!("fault coordinates {coords:?} must be workload/config"))?;
            if workload.is_empty() || config.is_empty() {
                return Err(format!("empty coordinate in {item:?}"));
            }
            let parse_times = |what: &str| -> Result<Option<u32>, String> {
                match arg {
                    None => Ok(None),
                    Some(raw) => raw
                        .parse::<u32>()
                        .map(Some)
                        .map_err(|_| format!("bad {what} count {raw:?} in {item:?}")),
                }
            };
            let kind = match kind {
                "panic" => FaultKind::Panic {
                    times: parse_times("panic")?,
                },
                "transient" => FaultKind::Transient {
                    times: parse_times("transient")?.unwrap_or(1),
                },
                "trace" => FaultKind::TraceDecode {
                    times: parse_times("trace")?.unwrap_or(1),
                },
                "slow" => FaultKind::Slow {
                    ms: arg
                        .ok_or_else(|| format!("slow fault {item:?} needs ':MILLIS'"))?
                        .parse()
                        .map_err(|_| format!("bad slow millis in {item:?}"))?,
                },
                "abort" => FaultKind::Abort {
                    times: parse_times("abort")?,
                },
                "hang" => {
                    if arg.is_some() {
                        return Err(format!("hang fault {item:?} takes no ':ARG'"));
                    }
                    FaultKind::Hang
                }
                "bigalloc" => FaultKind::BigAlloc {
                    times: parse_times("bigalloc")?,
                },
                "drop" => FaultKind::Drop {
                    times: parse_times("drop")?.unwrap_or(1),
                },
                "partition" => FaultKind::Partition {
                    times: parse_times("partition")?.unwrap_or(1),
                },
                "slowlink" => FaultKind::Slowlink {
                    ms: arg
                        .ok_or_else(|| format!("slowlink fault {item:?} needs ':MILLIS'"))?
                        .parse()
                        .map_err(|_| format!("bad slowlink millis in {item:?}"))?,
                },
                "truncframe" => FaultKind::TruncFrame {
                    times: parse_times("truncframe")?.unwrap_or(1),
                },
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} \
                         (panic|transient|trace|slow|abort|hang|bigalloc\
                         |drop|partition|slowlink|truncframe)"
                    ))
                }
            };
            plan.sites.push(FaultSite {
                workload: workload.to_string(),
                config: config.to_string(),
                kind,
            });
        }
        plan.fired = Mutex::new(vec![0; plan.sites.len()]);
        Ok(plan)
    }

    /// Reads a plan from the `FDIP_FAULTS` environment variable.
    ///
    /// # Errors
    ///
    /// As [`parse`](Self::parse); an unset variable is `Ok(None)`.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("FDIP_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// The plan's jitter seed (`seed=` item; 0 by default).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of injection sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Whether any site injects a process-lethal fault (`abort`, `hang`,
    /// `bigalloc`) that only supervised worker isolation can contain.
    pub fn requires_isolation(&self) -> bool {
        self.sites.iter().any(|s| s.kind.requires_isolation())
    }

    /// Whether any site injects a network fault (`drop`, `partition`,
    /// `slowlink`, `truncframe`) that only fleet dispatch can realize.
    pub fn requires_fleet(&self) -> bool {
        self.sites.iter().any(|s| s.kind.requires_fleet())
    }

    /// Arms the next fault for one compute attempt at
    /// `(workload, config)`, consuming a shot from the first matching site
    /// that still has any. At most one action fires per attempt.
    pub fn fire(&self, workload: &str, config: &str) -> Option<FaultAction> {
        let mut fired = self
            .fired
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, site) in self.sites.iter().enumerate() {
            if !site.matches(workload, config) {
                continue;
            }
            let (limit, action) = match &site.kind {
                FaultKind::Panic { times } => (*times, FaultAction::Panic),
                FaultKind::Transient { times } => (Some(*times), FaultAction::Transient),
                FaultKind::TraceDecode { times } => (Some(*times), FaultAction::TraceDecode),
                FaultKind::Slow { ms } => (None, FaultAction::Slow(Duration::from_millis(*ms))),
                FaultKind::Abort { times } => (*times, FaultAction::Abort),
                FaultKind::Hang => (None, FaultAction::Hang),
                FaultKind::BigAlloc { times } => (*times, FaultAction::BigAlloc),
                FaultKind::Drop { times } => (Some(*times), FaultAction::NetDrop),
                FaultKind::Partition { times } => (Some(*times), FaultAction::NetPartition),
                FaultKind::Slowlink { ms } => {
                    (None, FaultAction::NetSlowlink(Duration::from_millis(*ms)))
                }
                FaultKind::TruncFrame { times } => (Some(*times), FaultAction::NetTruncFrame),
            };
            if limit.is_some_and(|n| fired[i] >= n) {
                continue;
            }
            fired[i] += 1;
            return Some(action);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=7, panic@server-1/fdip, transient@client-1/base:2, trace@*/base, slow@w/c:500",
        )
        .unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.site_count(), 4);
        assert!(!plan.is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_items() {
        for bad in [
            "panic",
            "panic@w",
            "panic@/c",
            "panic@w/",
            "warp@w/c",
            "slow@w/c",
            "slow@w/c:fast",
            "transient@w/c:-1",
            "seed=abc",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn sites_consume_shots_in_order() {
        let plan = FaultPlan::parse("transient@w/c:2").unwrap();
        assert_eq!(plan.fire("w", "c"), Some(FaultAction::Transient));
        assert_eq!(plan.fire("w", "c"), Some(FaultAction::Transient));
        assert_eq!(plan.fire("w", "c"), None);
        assert_eq!(plan.fire("other", "c"), None);
    }

    #[test]
    fn bare_panic_fires_forever_and_wildcards_match() {
        let plan = FaultPlan::parse("panic@*/fdip").unwrap();
        for _ in 0..10 {
            assert_eq!(plan.fire("anything", "fdip"), Some(FaultAction::Panic));
        }
        assert_eq!(plan.fire("anything", "base"), None);
    }

    #[test]
    fn bounded_panic_recovers() {
        let plan = FaultPlan::parse("panic@w/c:1").unwrap();
        assert_eq!(plan.fire("w", "c"), Some(FaultAction::Panic));
        assert_eq!(plan.fire("w", "c"), None);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = RetryPolicy::default();
        let a = p.backoff_before(2, 42);
        let b = p.backoff_before(2, 42);
        assert_eq!(a, b);
        // Exponential envelope: attempt 4 waits at least twice attempt 2's
        // base component.
        assert!(p.backoff_before(4, 42) >= p.backoff, "{:?}", p.backoff);
        // Never beyond the cap even for absurd attempt numbers.
        assert!(p.backoff_before(40, 42) <= Duration::from_secs(2));
        // Jitter varies with the key.
        assert_ne!(p.backoff_before(2, 1), p.backoff_before(2, 2));
    }

    #[test]
    fn cell_error_display_kind_and_json() {
        let e = CellError::Transient {
            message: "flaky".into(),
            attempts: 3,
        };
        assert!(e.retryable());
        assert_eq!(e.kind(), "transient");
        assert!(e.to_string().contains("3 attempt(s)"));
        let json = e.to_json().to_string();
        assert!(json.contains(r#""kind":"transient""#), "{json}");
        assert!(json.contains(r#""attempts":3"#), "{json}");

        let t = CellError::Timeout { budget_ms: 500 };
        assert!(!t.retryable());
        assert!(t.to_json().to_string().contains(r#""budget_ms":500"#));

        let m = CellError::Missing {
            workload: "w".into(),
            config: "c".into(),
        };
        assert!(!m.retryable());
        assert!(m.to_string().contains("missing cell (w, c)"));
    }

    #[test]
    fn isolation_only_kinds_parse_and_are_flagged() {
        let plan = FaultPlan::parse("abort@w/c,hang@*/c,bigalloc@w/*:2").unwrap();
        assert_eq!(plan.site_count(), 3);
        assert!(plan.requires_isolation());
        assert_eq!(plan.fire("w", "c"), Some(FaultAction::Abort));
        assert_eq!(plan.fire("x", "c"), Some(FaultAction::Hang));
        assert_eq!(plan.fire("w", "z"), Some(FaultAction::BigAlloc));
        assert_eq!(plan.fire("w", "z"), Some(FaultAction::BigAlloc));
        assert_eq!(plan.fire("w", "z"), None);
        for action in [FaultAction::Abort, FaultAction::Hang, FaultAction::BigAlloc] {
            assert!(action.requires_isolation(), "{action:?}");
        }
        assert!(!FaultAction::Panic.requires_isolation());

        let tame = FaultPlan::parse("panic@w/c,slow@w/c:5").unwrap();
        assert!(!tame.requires_isolation());

        assert!(FaultPlan::parse("hang@w/c:3").is_err());
        assert!(FaultPlan::parse("abort@w/c:soon").is_err());
    }

    #[test]
    fn fleet_only_kinds_parse_and_are_flagged() {
        let plan =
            FaultPlan::parse("drop@w/c,partition@*/c:2,slowlink@w/c:50,truncframe@w/*").unwrap();
        assert_eq!(plan.site_count(), 4);
        assert!(plan.requires_fleet());
        assert!(!plan.requires_isolation());
        // Network shots default to once (drills must converge on retry).
        assert_eq!(plan.fire("w", "c"), Some(FaultAction::NetDrop));
        assert_eq!(plan.fire("x", "c"), Some(FaultAction::NetPartition));
        assert_eq!(plan.fire("x", "c"), Some(FaultAction::NetPartition));
        assert_eq!(plan.fire("x", "c"), None);
        assert_eq!(
            plan.fire("w", "z"),
            Some(FaultAction::NetTruncFrame),
            "truncframe wildcard"
        );
        assert_eq!(plan.fire("w", "z"), None);
        // Slowlink fires every attempt, like slow.
        let slow = FaultPlan::parse("slowlink@w/c:50").unwrap();
        for _ in 0..3 {
            assert_eq!(
                slow.fire("w", "c"),
                Some(FaultAction::NetSlowlink(Duration::from_millis(50)))
            );
        }
        for action in [
            FaultAction::NetDrop,
            FaultAction::NetPartition,
            FaultAction::NetSlowlink(Duration::from_millis(1)),
            FaultAction::NetTruncFrame,
        ] {
            assert!(action.requires_fleet(), "{action:?}");
            assert!(!action.requires_isolation(), "{action:?}");
        }
        assert!(!FaultAction::Abort.requires_fleet());
        assert!(!FaultPlan::parse("abort@w/c").unwrap().requires_fleet());

        assert!(FaultPlan::parse("slowlink@w/c").is_err());
        assert!(FaultPlan::parse("slowlink@w/c:fast").is_err());
        assert!(FaultPlan::parse("drop@w/c:many").is_err());
    }

    #[test]
    fn crashed_error_display_kind_and_json() {
        let sig = CellError::Crashed {
            signal: Some(9),
            code: None,
            attempts: 1,
        };
        assert_eq!(sig.kind(), "crashed");
        assert!(sig.retryable());
        assert!(sig.to_string().contains("signal 9"), "{sig}");
        let json = sig.to_json().to_string();
        assert!(json.contains(r#""kind":"crashed""#), "{json}");
        assert!(json.contains(r#""signal":9"#), "{json}");
        assert!(!json.contains(r#""code""#), "{json}");

        let exited = CellError::Crashed {
            signal: None,
            code: Some(2),
            attempts: 3,
        };
        assert!(exited.to_string().contains("code 2"), "{exited}");
        assert!(exited.to_json().to_string().contains(r#""code":2"#));

        let lost = CellError::Crashed {
            signal: None,
            code: None,
            attempts: 1,
        };
        assert!(lost.to_string().contains("stopped responding"), "{lost}");
    }

    #[test]
    fn from_env_roundtrip() {
        // Avoid mutating the process environment (other tests run in
        // parallel); just cover the unset branch plus parse directly.
        if std::env::var("FDIP_FAULTS").is_err() {
            assert!(FaultPlan::from_env().unwrap().is_none());
        }
    }
}
