//! The supervisor side of process-isolated cell execution: a pool of
//! worker *processes*, hard preemption, and typed crash classification.
//!
//! PR 3's in-process fault tolerance has a hard floor: `catch_unwind`
//! cannot contain `std::process::abort`, a stack overflow, or an OOM
//! kill, and the cooperative [`CancelToken`](fdip::CancelToken) cannot
//! preempt a cell that never polls it. The supervisor buys true
//! containment the way every production training/inference stack does —
//! by putting each cell in a disposable child process:
//!
//! * **pool** — N slots, each holding at most one live worker (the
//!   current binary self-exec'd with [`crate::worker::WORKER_ENV`] set),
//!   spawned lazily and recycled after `recycle_after` cells;
//! * **heartbeats** — a busy worker proves liveness every ~100 ms; going
//!   silent for `heartbeat_timeout` means *wedged, not slow* → SIGKILL;
//! * **hard budgets** — a cell's wall-clock budget is enforced with
//!   SIGKILL, so `hang`/runaway cells die at the deadline even though
//!   they never poll anything;
//! * **classification** — every way a worker can die maps onto a typed
//!   [`CellError`]: the exit status's signal/code becomes
//!   [`CellError::Crashed`], a budget kill becomes
//!   [`CellError::Timeout`], an in-worker panic comes back as
//!   [`CellError::Panic`] (the worker survives those);
//! * **crash-loop detection** — consecutive crashes on a slot past
//!   `crash_loop_threshold` insert a deterministic, exponentially growing
//!   pause before the next respawn, so a poisoned machine degrades into
//!   slow retries instead of a fork bomb.
//!
//! The harness routes cell attempts here when isolation is enabled
//! ([`crate::harness::Harness::enable_isolation`]); scheduling, caching,
//! retry policy, journaling, and result ordering all stay in the
//! harness, so isolated runs keep the deterministic, thread-count-
//! invariant output the seed tests pin.

use std::io;
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fdip::{FrontendConfig, SimStats};

use crate::fault::CellError;
use crate::harness::lock;
use crate::ipc::{read_frame, write_frame, RunRequest, WorkerFault, WorkerReply};
use crate::workload::WorkloadSpec;

/// Pool sizing and liveness policy for a [`Supervisor`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Worker processes in the pool.
    pub workers: usize,
    /// Cells a worker runs before it is retired and respawned fresh
    /// (bounds the blast radius of slow leaks in long sweeps).
    pub recycle_after: u64,
    /// Silence longer than this from a busy worker means it is wedged,
    /// not slow, and gets SIGKILLed.
    pub heartbeat_timeout: Duration,
    /// Consecutive crashes on one slot before respawns start backing off.
    pub crash_loop_threshold: u32,
    /// Base pause once a slot is crash-looping; doubles per further crash
    /// (capped), deterministically — no randomness, so drills reproduce.
    pub crash_backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            workers: default_worker_count(),
            recycle_after: 64,
            heartbeat_timeout: Duration::from_secs(5),
            crash_loop_threshold: 3,
            crash_backoff: Duration::from_millis(200),
        }
    }
}

/// Default pool size for `--isolate` with no explicit count: the
/// machine's parallelism, capped at 4 — workers duplicate trace storage,
/// so the cap keeps memory bounded on wide machines.
pub fn default_worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(1, 4)
}

/// Counters the supervisor accumulates; folded into
/// [`HarnessStats`](crate::harness::HarnessStats) and exported by
/// `fdip-serve` `/metrics`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Workers respawned into a slot that had run a worker before
    /// (crash replacement or post-recycle respawn).
    pub worker_restarts: u64,
    /// Workers SIGKILLed by the supervisor (budget preemption, lost
    /// heartbeat, or a recycle that would not exit gracefully).
    pub worker_kills: u64,
    /// Times a crash-looping slot forced a backoff pause before respawn.
    pub worker_crash_loops: u64,
}

/// What the stdout reader thread forwards to the dispatching thread.
enum ReaderEvent {
    /// A decoded protocol frame.
    Reply(WorkerReply),
    /// Clean EOF: the worker exited (or was killed).
    Eof,
    /// The stream broke mid-frame — treated like a crash. The error is
    /// kept for debugging; classification uses the exit status instead.
    Failed(#[allow(dead_code)] io::Error),
}

/// A live worker process attached to a pool slot.
struct LiveWorker {
    child: Child,
    stdin: ChildStdin,
    events: Receiver<ReaderEvent>,
}

/// One pool slot's bookkeeping; the mutex serializes the slot, not the
/// pool — N cells run in N slots concurrently.
#[derive(Default)]
struct SlotState {
    worker: Option<LiveWorker>,
    cells_done: u64,
    consecutive_crashes: u32,
    ever_spawned: bool,
}

/// A pool of supervised worker processes executing cells one at a time
/// each. See the module docs for the state machine.
pub struct Supervisor {
    config: SupervisorConfig,
    slots: Vec<Mutex<SlotState>>,
    free: Mutex<Vec<usize>>,
    available: Condvar,
    next_id: AtomicU64,
    worker_restarts: AtomicU64,
    worker_kills: AtomicU64,
    worker_crash_loops: AtomicU64,
}

impl Supervisor {
    /// A pool per `config`; workers spawn lazily on first dispatch.
    pub fn new(config: SupervisorConfig) -> Supervisor {
        let workers = config.workers.max(1);
        Supervisor {
            config: SupervisorConfig { workers, ..config },
            slots: (0..workers).map(|_| Mutex::default()).collect(),
            free: Mutex::new((0..workers).rev().collect()),
            available: Condvar::new(),
            next_id: AtomicU64::new(1),
            worker_restarts: AtomicU64::new(0),
            worker_kills: AtomicU64::new(0),
            worker_crash_loops: AtomicU64::new(0),
        }
    }

    /// The pool size.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Current counters.
    pub fn stats(&self) -> SupervisorStats {
        SupervisorStats {
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            worker_kills: self.worker_kills.load(Ordering::Relaxed),
            worker_crash_loops: self.worker_crash_loops.load(Ordering::Relaxed),
        }
    }

    /// Runs one cell attempt on a pooled worker, blocking until a slot is
    /// free. `budget_ms == 0` means unbounded; `attempt` is stamped into
    /// any resulting [`CellError`] for the harness's retry accounting.
    ///
    /// # Errors
    ///
    /// Every worker death comes back typed: [`CellError::Timeout`] for a
    /// budget kill, [`CellError::Crashed`] for signals/aborts/lost
    /// heartbeats, [`CellError::Panic`] / [`CellError::Transient`] when
    /// the worker survived and reported the failure itself.
    pub fn run_cell(
        &self,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: Option<WorkerFault>,
        config: &FrontendConfig,
        attempt: u32,
    ) -> Result<SimStats, CellError> {
        let slot = self.acquire_slot();
        let result = self.run_on_slot(slot, workload, trace_len, budget_ms, fault, config, attempt);
        self.release_slot(slot);
        result
    }

    fn acquire_slot(&self) -> usize {
        let mut free = lock(&self.free);
        loop {
            if let Some(index) = free.pop() {
                return index;
            }
            free = self
                .available
                .wait(free)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn release_slot(&self, index: usize) {
        lock(&self.free).push(index);
        self.available.notify_one();
    }

    #[allow(clippy::too_many_arguments)]
    fn run_on_slot(
        &self,
        index: usize,
        workload: &WorkloadSpec,
        trace_len: usize,
        budget_ms: u64,
        fault: Option<WorkerFault>,
        config: &FrontendConfig,
        attempt: u32,
    ) -> Result<SimStats, CellError> {
        let mut slot = lock(&self.slots[index]);
        self.drain_stale_events(&mut slot);
        if slot.worker.is_none() {
            if slot.consecutive_crashes >= self.config.crash_loop_threshold {
                // Deterministic exponential pause: crash-looping degrades
                // into slow retries, never a fork bomb.
                self.worker_crash_loops.fetch_add(1, Ordering::Relaxed);
                let excess = slot.consecutive_crashes - self.config.crash_loop_threshold;
                std::thread::sleep(self.config.crash_backoff * 2u32.pow(excess.min(4)));
            }
            let replacing = slot.ever_spawned;
            match spawn_worker() {
                Ok(worker) => {
                    slot.worker = Some(worker);
                    slot.ever_spawned = true;
                    if replacing {
                        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(err) => {
                    slot.consecutive_crashes += 1;
                    return Err(CellError::Transient {
                        message: format!("spawning a worker process failed: {err}"),
                        attempts: attempt,
                    });
                }
            }
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let request = RunRequest {
            id,
            workload: workload.clone(),
            trace_len,
            budget_ms,
            fault,
            config: config.clone(),
        };
        {
            let worker = slot.worker.as_mut().expect("worker just ensured");
            if write_frame(&mut worker.stdin, &request.to_json()).is_err() {
                // Died between cells; classify from the exit status.
                let status = reap(slot.worker.take().expect("worker present"));
                slot.consecutive_crashes += 1;
                return Err(crashed_from_status(status, attempt));
            }
        }

        let budget_deadline =
            (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));
        let mut heartbeat_deadline = Instant::now() + self.config.heartbeat_timeout;
        loop {
            let mut wake = heartbeat_deadline;
            if let Some(deadline) = budget_deadline {
                wake = wake.min(deadline);
            }
            let timeout = wake.saturating_duration_since(Instant::now());
            let event = slot
                .worker
                .as_ref()
                .expect("worker live while waiting")
                .events
                .recv_timeout(timeout);
            match event {
                Ok(ReaderEvent::Reply(WorkerReply::Heartbeat)) => {
                    heartbeat_deadline = Instant::now() + self.config.heartbeat_timeout;
                }
                Ok(ReaderEvent::Reply(WorkerReply::Ok {
                    id: reply_id,
                    stats,
                })) if reply_id == id => {
                    self.finish_cell(&mut slot);
                    return Ok(*stats);
                }
                Ok(ReaderEvent::Reply(WorkerReply::Err {
                    id: reply_id,
                    kind,
                    message,
                    ..
                })) if reply_id == id => {
                    // The worker *survived* this failure; only its cell is
                    // lost, and the process is reusable.
                    self.finish_cell(&mut slot);
                    return Err(if kind == "panic" {
                        CellError::Panic {
                            message,
                            attempts: attempt,
                        }
                    } else {
                        CellError::Transient {
                            message,
                            attempts: attempt,
                        }
                    });
                }
                // A reply for a superseded id — possible only after a kill
                // raced a completion; drop it.
                Ok(ReaderEvent::Reply(_)) => {}
                Ok(ReaderEvent::Eof) | Ok(ReaderEvent::Failed(_)) => {
                    let status = reap(slot.worker.take().expect("worker present"));
                    slot.consecutive_crashes += 1;
                    return Err(crashed_from_status(status, attempt));
                }
                Err(RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    if budget_deadline.is_some_and(|deadline| now >= deadline) {
                        // Intentional preemption: the worker was healthy,
                        // the cell overran. Not a crash-loop signal.
                        self.kill_worker(slot.worker.take().expect("worker present"));
                        return Err(CellError::Timeout { budget_ms });
                    }
                    if now >= heartbeat_deadline {
                        self.kill_worker(slot.worker.take().expect("worker present"));
                        slot.consecutive_crashes += 1;
                        return Err(CellError::Crashed {
                            signal: None,
                            code: None,
                            attempts: attempt,
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let status = reap(slot.worker.take().expect("worker present"));
                    slot.consecutive_crashes += 1;
                    return Err(crashed_from_status(status, attempt));
                }
            }
        }
    }

    /// Books a completed cell on the slot and retires the worker if it
    /// has served its quota.
    fn finish_cell(&self, slot: &mut SlotState) {
        slot.consecutive_crashes = 0;
        slot.cells_done += 1;
        if slot.cells_done >= self.config.recycle_after {
            slot.cells_done = 0;
            if let Some(worker) = slot.worker.take() {
                self.retire_worker(worker);
            }
        }
    }

    /// Graceful retirement: close stdin (EOF ends the worker loop), give
    /// it a moment, escalate to SIGKILL if it will not leave.
    fn retire_worker(&self, worker: LiveWorker) {
        let LiveWorker {
            mut child, stdin, ..
        } = worker;
        drop(stdin);
        for _ in 0..50 {
            match child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(_) => break,
            }
        }
        self.worker_kills.fetch_add(1, Ordering::Relaxed);
        let _ = child.kill();
        let _ = child.wait();
    }

    /// SIGKILL and reap, counting the kill.
    fn kill_worker(&self, worker: LiveWorker) {
        self.worker_kills.fetch_add(1, Ordering::Relaxed);
        let mut child = worker.child;
        let _ = child.kill();
        let _ = child.wait();
    }

    /// Discards events buffered while the slot sat idle (a final
    /// heartbeat that raced the previous reply, or the EOF of a worker
    /// that died between cells — the latter marks the slot dead so
    /// dispatch respawns instead of writing into a broken pipe).
    fn drain_stale_events(&self, slot: &mut SlotState) {
        let dead = match &slot.worker {
            Some(worker) => {
                let mut dead = false;
                while let Ok(event) = worker.events.try_recv() {
                    if matches!(event, ReaderEvent::Eof | ReaderEvent::Failed(_)) {
                        dead = true;
                    }
                }
                dead
            }
            None => false,
        };
        if dead {
            let status = reap(slot.worker.take().expect("worker present"));
            // Dying between cells still counts toward the crash loop.
            slot.consecutive_crashes += 1;
            let _ = status;
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        for slot in &self.slots {
            if let Some(worker) = lock(slot).worker.take() {
                // Shutdown is not a drill: kill without ceremony or stats.
                let mut child = worker.child;
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Self-execs the current binary as a worker. The `worker` argument is
/// cosmetic (it names the process in `ps`); activation is the
/// environment variable, which works for every harness binary without
/// touching its argv parsing.
fn spawn_worker() -> io::Result<LiveWorker> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("worker")
        .env(crate::worker::WORKER_ENV, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let stdin = child.stdin.take().expect("stdin was piped");
    let mut stdout = child.stdout.take().expect("stdout was piped");
    let (sender, events) = mpsc::channel();
    // Plain pipes have no read timeout, so a dedicated thread blocks on
    // the pipe and the dispatcher waits on the channel, which does. The
    // thread exits with the pipe and is never joined.
    std::thread::spawn(move || loop {
        let event = match read_frame(&mut stdout) {
            Ok(Some(frame)) => match WorkerReply::from_json(&frame) {
                Some(reply) => ReaderEvent::Reply(reply),
                None => ReaderEvent::Failed(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unintelligible worker frame",
                )),
            },
            Ok(None) => ReaderEvent::Eof,
            Err(err) => ReaderEvent::Failed(err),
        };
        let terminal = !matches!(event, ReaderEvent::Reply(_));
        if sender.send(event).is_err() || terminal {
            return;
        }
    });
    Ok(LiveWorker {
        child,
        stdin,
        events,
    })
}

/// Reaps a worker that is already gone (or nearly): SIGKILL is a no-op on
/// a zombie and does not change its recorded exit status, so this is safe
/// to call in every death path.
fn reap(worker: LiveWorker) -> io::Result<ExitStatus> {
    let mut child = worker.child;
    let _ = child.kill();
    child.wait()
}

/// Classifies an exit status into [`CellError::Crashed`].
fn crashed_from_status(status: io::Result<ExitStatus>, attempts: u32) -> CellError {
    match status {
        Ok(status) => CellError::Crashed {
            signal: exit_signal(&status),
            code: status.code(),
            attempts,
        },
        Err(_) => CellError::Crashed {
            signal: None,
            code: None,
            attempts,
        },
    }
}

#[cfg(unix)]
fn exit_signal(status: &ExitStatus) -> Option<i32> {
    std::os::unix::process::ExitStatusExt::signal(status)
}

#[cfg(not(unix))]
fn exit_signal(_status: &ExitStatus) -> Option<i32> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // Spawning real workers needs a worker-capable executable;
    // `current_exe()` inside `cargo test` is the libtest runner, which
    // must never be self-exec'd. End-to-end supervision is covered by the
    // `tests/isolation.rs` integration test against the real `fdip`
    // binary; these tests pin the pure logic.

    #[test]
    fn config_defaults_are_sane() {
        let config = SupervisorConfig::default();
        assert!(config.workers >= 1 && config.workers <= 4);
        assert!(config.recycle_after > 0);
        assert!(config.heartbeat_timeout >= Duration::from_secs(1));
        assert!(config.crash_loop_threshold >= 1);
        let sup = Supervisor::new(SupervisorConfig {
            workers: 0,
            ..config
        });
        assert_eq!(sup.workers(), 1, "zero workers clamps to one");
        assert_eq!(sup.stats(), SupervisorStats::default());
    }

    #[test]
    fn slot_acquisition_hands_out_every_slot() {
        let sup = Supervisor::new(SupervisorConfig {
            workers: 3,
            ..SupervisorConfig::default()
        });
        let a = sup.acquire_slot();
        let b = sup.acquire_slot();
        let c = sup.acquire_slot();
        let mut handed = [a, b, c];
        handed.sort_unstable();
        assert_eq!(handed, [0, 1, 2]);
        sup.release_slot(b);
        assert_eq!(sup.acquire_slot(), b);
    }

    #[test]
    fn crash_classification_covers_signal_code_and_unknown() {
        let err = crashed_from_status(Err(io::Error::other("status lost")), 2);
        assert_eq!(
            err,
            CellError::Crashed {
                signal: None,
                code: None,
                attempts: 2
            }
        );
        // A real exit status from a real (instantly exiting) process.
        let status = Command::new("false").status();
        if let Ok(status) = status {
            let err = crashed_from_status(Ok(status), 1);
            assert_eq!(
                err,
                CellError::Crashed {
                    signal: None,
                    code: Some(1),
                    attempts: 1
                }
            );
        }
    }
}
