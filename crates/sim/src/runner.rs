//! Experiment result types and numeric helpers.
//!
//! Execution itself lives in [`crate::harness`]: the free [`run_matrix`]
//! here is a thin convenience wrapper over the process-wide
//! [`Harness::global`](crate::harness::Harness::global) instance for call
//! sites that just want a vector of cells.

use fdip::{FrontendConfig, SimStats};
use fdip_trace::TraceStats;
use fdip_types::{json_fields, Json, ToJson};

use crate::fault::CellError;
use crate::harness::Harness;
use crate::workload::WorkloadSpec;

/// One evaluated cell of the matrix.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// Simulation statistics (default-valued when the cell failed).
    pub stats: SimStats,
    /// Characterization of the trace the cell ran over.
    pub trace_stats: TraceStats,
    /// Why the cell failed, when it did. `None` for a successful cell.
    pub error: Option<CellError>,
}

impl ToJson for RunResult {
    fn to_json(&self) -> Json {
        let mut doc = json_fields!(self, workload, config, stats, trace_stats);
        // Emit the error only when present: successful cells keep the
        // exact schema-v1 rendering, so clean runs (and journal resumes)
        // stay byte-identical to pre-fault-model output.
        if let Some(error) = &self.error {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("error".to_string(), error.to_json()));
            }
        }
        doc
    }
}

/// Runs `configs` × `workloads` on the process-wide harness and returns
/// the cells workload-major.
///
/// Within a process, repeated calls share traces and finished cells — see
/// [`crate::harness`] for the caching and determinism guarantees.
pub fn run_matrix(
    workloads: &[WorkloadSpec],
    trace_len: usize,
    configs: &[(String, FrontendConfig)],
) -> Vec<RunResult> {
    Harness::global()
        .run_matrix(workloads, trace_len, configs)
        .into_cells()
}

/// Geometric mean of the positive values in the iterator (1.0 when none).
///
/// Non-positive values have no geometric mean; rather than poisoning the
/// whole aggregate with a NaN in release builds (the old behavior was a
/// `debug_assert` only), they are skipped. A simulation producing a
/// non-positive speedup or IPC indicates a broken run, so debug builds
/// still flag it loudly.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        debug_assert!(v > 0.0, "geomean requires positive values, got {v}");
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{suite, SuiteKind};
    use crate::Scale;
    use fdip::PrefetcherKind;

    #[test]
    fn matrix_is_ordered_and_complete() {
        let workloads = suite(SuiteKind::All, Scale::quick());
        let configs = vec![
            ("base".to_string(), FrontendConfig::default()),
            (
                "fdip".to_string(),
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
        ];
        let results = run_matrix(&workloads, 20_000, &configs);
        assert_eq!(results.len(), workloads.len() * configs.len());
        // Workload-major order, config order within.
        assert_eq!(results[0].workload, workloads[0].name);
        assert_eq!(results[0].config, "base");
        assert_eq!(results[1].config, "fdip");
        for r in &results {
            assert!(r.stats.instructions > 0);
        }
    }

    #[test]
    fn runner_is_deterministic_across_invocations() {
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let configs = vec![("base".to_string(), FrontendConfig::default())];
        let a = run_matrix(&workloads, 15_000, &configs);
        let b = run_matrix(&workloads, 15_000, &configs);
        assert_eq!(a[0].stats, b[0].stats);
    }

    #[test]
    fn geomean_math() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        assert!((geomean([5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_skips_nonpositive_in_release() {
        // In release builds the debug_assert compiles out and bad values
        // must be skipped, not folded into a NaN.
        if cfg!(debug_assertions) {
            return;
        }
        let g = geomean([2.0, 0.0, -3.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12, "{g}");
        assert_eq!(geomean([0.0]), 1.0);
    }

    #[test]
    fn run_result_serializes() {
        let r = RunResult {
            workload: "w".into(),
            config: "c".into(),
            stats: SimStats::default(),
            trace_stats: TraceStats::default(),
            error: None,
        };
        let json = r.to_json().to_string();
        assert!(json.starts_with(r#"{"workload":"w","config":"c","stats":{"#));
        assert!(json.contains(r#""trace_stats":{"len":0"#));
        // A clean cell carries no "error" key at all — schema v1 output is
        // byte-identical to the pre-fault-model rendering.
        assert!(!json.contains(r#""error""#));

        let failed = RunResult {
            error: Some(CellError::Timeout { budget_ms: 100 }),
            ..r
        };
        let json = failed.to_json().to_string();
        assert!(
            json.contains(r#""error":{"kind":"timeout","budget_ms":100}"#),
            "{json}"
        );
    }
}
