//! Deterministic, parallel experiment execution.
//!
//! A *matrix* run evaluates every named configuration against every
//! workload. Workloads are distributed across threads (each thread
//! generates its trace once and runs all configurations over it);
//! determinism is preserved because each (workload, config) cell is
//! independent and results are re-sorted at the end.

use std::sync::Mutex;

use fdip::{FrontendConfig, SimStats, Simulator};
use fdip_trace::TraceStats;

use crate::workload::WorkloadSpec;

/// One evaluated cell of the matrix.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// Simulation statistics.
    pub stats: SimStats,
    /// Characterization of the trace the cell ran over.
    pub trace_stats: TraceStats,
}

/// Runs `configs` × `workloads`, in parallel over workloads.
///
/// Results are ordered workload-major, matching the input orders exactly,
/// regardless of thread scheduling.
pub fn run_matrix(
    workloads: &[WorkloadSpec],
    trace_len: usize,
    configs: &[(String, FrontendConfig)],
) -> Vec<RunResult> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(workloads.len().max(1));
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<(usize, Vec<RunResult>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = {
                    let mut guard = next.lock().expect("runner mutex");
                    let i = *guard;
                    if i >= workloads.len() {
                        return;
                    }
                    *guard += 1;
                    i
                };
                let spec = &workloads[index];
                let trace = spec.generate(trace_len);
                let trace_stats = TraceStats::measure(&trace);
                let cell_results: Vec<RunResult> = configs
                    .iter()
                    .map(|(label, config)| RunResult {
                        workload: spec.name.clone(),
                        config: label.clone(),
                        stats: Simulator::run_trace(config, &trace),
                        trace_stats: trace_stats.clone(),
                    })
                    .collect();
                results
                    .lock()
                    .expect("runner mutex")
                    .push((index, cell_results));
            });
        }
    });

    let mut collected = results.into_inner().expect("runner mutex");
    collected.sort_by_key(|(index, _)| *index);
    collected.into_iter().flat_map(|(_, r)| r).collect()
}

/// Finds the cell for (workload, config).
///
/// # Panics
///
/// Panics if the cell is missing — experiments always populate full
/// matrices.
pub fn cell<'r>(results: &'r [RunResult], workload: &str, config: &str) -> &'r RunResult {
    results
        .iter()
        .find(|r| r.workload == workload && r.config == config)
        .unwrap_or_else(|| panic!("missing cell ({workload}, {config})"))
}

/// Geometric mean of an iterator of positive values (1.0 when empty).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        debug_assert!(v > 0.0, "geomean requires positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{suite, SuiteKind};
    use crate::Scale;
    use fdip::PrefetcherKind;

    #[test]
    fn matrix_is_ordered_and_complete() {
        let workloads = suite(SuiteKind::All, Scale::quick());
        let configs = vec![
            ("base".to_string(), FrontendConfig::default()),
            (
                "fdip".to_string(),
                FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            ),
        ];
        let results = run_matrix(&workloads, 20_000, &configs);
        assert_eq!(results.len(), workloads.len() * configs.len());
        // Workload-major order, config order within.
        assert_eq!(results[0].workload, workloads[0].name);
        assert_eq!(results[0].config, "base");
        assert_eq!(results[1].config, "fdip");
        // Every cell resolvable.
        for w in &workloads {
            for (label, _) in &configs {
                let r = cell(&results, &w.name, label);
                assert!(r.stats.instructions > 0);
            }
        }
    }

    #[test]
    fn runner_is_deterministic_across_invocations() {
        let workloads = suite(SuiteKind::Client, Scale::quick());
        let configs = vec![("base".to_string(), FrontendConfig::default())];
        let a = run_matrix(&workloads, 15_000, &configs);
        let b = run_matrix(&workloads, 15_000, &configs);
        assert_eq!(a[0].stats, b[0].stats);
    }

    #[test]
    fn geomean_math() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        assert!((geomean([5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "missing cell")]
    fn missing_cell_panics() {
        let _ = cell(&[], "nope", "nada");
    }
}
