//! The supervisor ↔ worker wire protocol: length-prefixed JSON frames
//! over the worker's stdin/stdout, plus the full machine-config codec.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! JSON (the workspace's hand-rolled [`Json`], no external deps). Frames
//! are bounded by [`MAX_FRAME_BYTES`] on both sides, so a corrupted
//! length prefix can never drive an unbounded allocation.
//!
//! Three message shapes travel the pipe:
//!
//! * supervisor → worker: [`RunRequest`] (`op: "run"`) — one cell to
//!   simulate: workload, trace length, config, wall-clock budget, and an
//!   optional injected fault;
//! * worker → supervisor: [`WorkerReply::Heartbeat`] (`op: "hb"`) on a
//!   steady timer, so the supervisor can distinguish *slow* from *dead*;
//! * worker → supervisor: [`WorkerReply::Ok`] / [`WorkerReply::Err`]
//!   carrying the finished [`SimStats`] or a typed failure.
//!
//! The config codec ([`config_to_json`] / [`config_from_json`]) covers
//! every field of [`FrontendConfig`] — BTB variants, predictors, the
//! memory hierarchy, all five prefetchers. Fidelity is load-bearing: the
//! cell cache and journal key cells by the config's full `Debug`
//! fingerprint, so a lossy codec would silently fork a cell's identity
//! between supervisor and worker. `tests` proves the round trip
//! fingerprint-exact over a battery of representative configs.

use std::io::{self, Read, Write};

use fdip::{
    BtbVariant, CpfMode, FdipConfig, FrontendConfig, PifConfig, PredictorKind, PrefetcherKind,
    ShotgunConfig, SimStats,
};
use fdip_btb::{BtbConfig, PartitionConfig, TagScheme};
use fdip_mem::{CacheGeometry, HierarchyConfig, ReplacementPolicy, StreamBufferConfig};
use fdip_types::{FromJson, Json, ToJson};

use crate::workload::{WorkloadSource, WorkloadSpec};

/// Upper bound on one IPC frame. A run request (config + workload) is a
/// few KiB and a reply (SimStats) smaller still; anything larger means a
/// desynchronized or corrupted stream and is an error, not an allocation.
/// Shared with the TCP transport ([`crate::net::MAX_FRAME_BYTES`]).
pub const MAX_FRAME_BYTES: usize = crate::net::MAX_FRAME_BYTES;

/// Writes `doc` as one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates I/O errors; rejects frames over [`MAX_FRAME_BYTES`].
pub fn write_frame(writer: &mut impl Write, doc: &Json) -> io::Result<()> {
    crate::net::write_frame(writer, doc)
}

/// Reads one frame. `Ok(None)` is a clean EOF *at a frame boundary* (the
/// peer closed the pipe between messages — the orderly shutdown signal);
/// EOF mid-frame is an error.
///
/// Delegates to the typed [`crate::net::read_frame`] and flattens its
/// [`FrameError`](crate::net::FrameError) into `io::Error` for the pipe
/// transport, where the caller (supervisor/worker) treats every decode
/// failure the same way: retire the peer.
///
/// # Errors
///
/// I/O errors, torn frames, oversize lengths, or non-JSON payloads.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Json>> {
    crate::net::read_frame(reader).map_err(io::Error::from)
}

/// A fault the supervisor asks the worker to realize *inside* the worker
/// process, so isolation drills exercise the real containment path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// Panic before simulating (caught in the worker, reported as `err`).
    Panic,
    /// Sleep this many milliseconds before simulating.
    Slow(u64),
    /// `std::process::abort()`.
    Abort,
    /// Busy-loop forever without polling anything.
    Hang,
    /// Abort via an impossible allocation (`handle_alloc_error`).
    BigAlloc,
}

impl WorkerFault {
    fn to_wire(&self) -> String {
        match self {
            WorkerFault::Panic => "panic".to_string(),
            WorkerFault::Slow(ms) => format!("slow:{ms}"),
            WorkerFault::Abort => "abort".to_string(),
            WorkerFault::Hang => "hang".to_string(),
            WorkerFault::BigAlloc => "bigalloc".to_string(),
        }
    }

    fn from_wire(raw: &str) -> Option<WorkerFault> {
        if let Some(ms) = raw.strip_prefix("slow:") {
            return ms.parse().ok().map(WorkerFault::Slow);
        }
        match raw {
            "panic" => Some(WorkerFault::Panic),
            "abort" => Some(WorkerFault::Abort),
            "hang" => Some(WorkerFault::Hang),
            "bigalloc" => Some(WorkerFault::BigAlloc),
            _ => None,
        }
    }
}

/// One cell for a worker to simulate.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// Correlation id; the worker echoes it in its reply.
    pub id: u64,
    /// The workload whose trace to (re)generate.
    pub workload: WorkloadSpec,
    /// Trace length in instructions.
    pub trace_len: usize,
    /// Wall-clock budget in milliseconds (0 = unbounded). The *supervisor*
    /// enforces it with SIGKILL; it rides along so logs can show it.
    pub budget_ms: u64,
    /// Fault to realize inside the worker, if the drill asks for one.
    pub fault: Option<WorkerFault>,
    /// The machine configuration to simulate.
    pub config: FrontendConfig,
}

impl RunRequest {
    /// Encodes the request as its wire document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("op", Json::str("run")),
            ("id", Json::uint(self.id)),
            (
                "workload",
                Json::obj([
                    ("name", Json::str(&self.workload.name)),
                    ("source", Json::str(self.workload.source.to_wire())),
                    ("seed", Json::uint(self.workload.seed)),
                ]),
            ),
            ("trace_len", Json::uint(self.trace_len as u64)),
            ("budget_ms", Json::uint(self.budget_ms)),
        ];
        if let Some(fault) = &self.fault {
            pairs.push(("fault", Json::str(fault.to_wire())));
        }
        pairs.push(("config", config_to_json(&self.config)));
        Json::obj(pairs)
    }

    /// Decodes a wire document produced by [`to_json`](Self::to_json).
    pub fn from_json(doc: &Json) -> Option<RunRequest> {
        if doc.get("op")?.as_str()? != "run" {
            return None;
        }
        let w = doc.get("workload")?;
        let source = WorkloadSource::from_wire(w.get("source")?.as_str()?)?;
        let fault = match doc.get("fault") {
            Some(raw) => Some(WorkerFault::from_wire(raw.as_str()?)?),
            None => None,
        };
        Some(RunRequest {
            id: doc.get("id")?.as_u64()?,
            workload: WorkloadSpec {
                name: String::from_json(w.get("name")?)?,
                source,
                seed: w.get("seed")?.as_u64()?,
            },
            trace_len: usize::try_from(doc.get("trace_len")?.as_u64()?).ok()?,
            budget_ms: doc.get("budget_ms")?.as_u64()?,
            fault,
            config: config_from_json(doc.get("config")?)?,
        })
    }
}

/// What a worker sends back up the pipe.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerReply {
    /// "Still alive" — sent on a steady timer regardless of cell state.
    Heartbeat,
    /// The cell finished; `id` echoes the request.
    Ok {
        /// Correlation id from the request.
        id: u64,
        /// The finished statistics (boxed: `SimStats` is hundreds of
        /// bytes and would dwarf the other variants).
        stats: Box<SimStats>,
    },
    /// The cell failed inside the worker (panic or injected transient);
    /// the worker survives and can take another cell. A worker daemon
    /// proxying a remote child also synthesizes this with
    /// `kind: "crashed"` when the child dies, carrying the exit signal
    /// or code so the dialer can classify the loss exactly as the local
    /// supervisor would.
    Err {
        /// Correlation id from the request.
        id: u64,
        /// Failure class: `"panic"`, `"transient"`, or `"crashed"`.
        kind: String,
        /// Human-readable description.
        message: String,
        /// Fatal signal number, for `"crashed"` replies (unix).
        signal: Option<i32>,
        /// Exit code, for `"crashed"` replies that exited abnormally.
        code: Option<i32>,
    },
}

impl WorkerReply {
    /// Encodes the reply as its wire document.
    pub fn to_json(&self) -> Json {
        match self {
            WorkerReply::Heartbeat => Json::obj([("op", Json::str("hb"))]),
            WorkerReply::Ok { id, stats } => Json::obj([
                ("op", Json::str("ok")),
                ("id", Json::uint(*id)),
                ("stats", stats.to_json()),
            ]),
            WorkerReply::Err {
                id,
                kind,
                message,
                signal,
                code,
            } => {
                let mut pairs = vec![
                    ("op", Json::str("err")),
                    ("id", Json::uint(*id)),
                    ("kind", Json::str(kind)),
                    ("message", Json::str(message)),
                ];
                // Signals (1..=64) and unix exit codes (0..=255) are
                // non-negative; clamp defensively rather than panic.
                if let Some(signal) = signal {
                    pairs.push(("signal", Json::uint(u64::try_from(*signal).unwrap_or(0))));
                }
                if let Some(code) = code {
                    pairs.push(("code", Json::uint(u64::try_from(*code).unwrap_or(0))));
                }
                Json::obj(pairs)
            }
        }
    }

    /// Decodes a wire document produced by [`to_json`](Self::to_json).
    pub fn from_json(doc: &Json) -> Option<WorkerReply> {
        match doc.get("op")?.as_str()? {
            "hb" => Some(WorkerReply::Heartbeat),
            "ok" => Some(WorkerReply::Ok {
                id: doc.get("id")?.as_u64()?,
                stats: Box::new(SimStats::from_json(doc.get("stats")?)?),
            }),
            "err" => Some(WorkerReply::Err {
                id: doc.get("id")?.as_u64()?,
                kind: String::from_json(doc.get("kind")?)?,
                message: String::from_json(doc.get("message")?)?,
                signal: match doc.get("signal") {
                    Some(raw) => Some(i32::try_from(raw.as_u64()?).ok()?),
                    None => None,
                },
                code: match doc.get("code") {
                    Some(raw) => Some(i32::try_from(raw.as_u64()?).ok()?),
                    None => None,
                },
            }),
            _ => None,
        }
    }
}

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key)?.as_u64()
}

fn get_usize(doc: &Json, key: &str) -> Option<usize> {
    usize::try_from(get_u64(doc, key)?).ok()
}

fn get_u32(doc: &Json, key: &str) -> Option<u32> {
    u32::try_from(get_u64(doc, key)?).ok()
}

fn get_bool(doc: &Json, key: &str) -> Option<bool> {
    doc.get(key)?.as_bool()
}

fn tag_scheme_to_json(scheme: TagScheme) -> Json {
    Json::str(match scheme {
        TagScheme::Full => "full",
        TagScheme::Compressed16 => "compressed16",
    })
}

fn tag_scheme_from_json(doc: &Json) -> Option<TagScheme> {
    match doc.as_str()? {
        "full" => Some(TagScheme::Full),
        "compressed16" => Some(TagScheme::Compressed16),
        _ => None,
    }
}

fn btb_to_json(btb: &BtbVariant) -> Json {
    let plain = |kind: &str, c: &BtbConfig| {
        Json::obj([
            ("kind", Json::str(kind)),
            ("sets", Json::uint(c.sets as u64)),
            ("ways", Json::uint(c.ways as u64)),
            ("tags", tag_scheme_to_json(c.tag_scheme)),
        ])
    };
    match btb {
        BtbVariant::Conventional(c) => plain("conventional", c),
        BtbVariant::BasicBlock(c) => plain("basic_block", c),
        BtbVariant::Partitioned(p) => Json::obj([
            ("kind", Json::str("partitioned")),
            (
                "entries",
                Json::arr(p.entries.iter().map(|&e| Json::uint(e as u64))),
            ),
            ("ways", Json::uint(p.ways as u64)),
            ("tags", tag_scheme_to_json(p.tag_scheme)),
        ]),
        BtbVariant::Ideal => Json::obj([("kind", Json::str("ideal"))]),
    }
}

fn btb_from_json(doc: &Json) -> Option<BtbVariant> {
    let plain = |doc: &Json| {
        Some(BtbConfig {
            sets: get_usize(doc, "sets")?,
            ways: get_usize(doc, "ways")?,
            tag_scheme: tag_scheme_from_json(doc.get("tags")?)?,
        })
    };
    match doc.get("kind")?.as_str()? {
        "conventional" => Some(BtbVariant::Conventional(plain(doc)?)),
        "basic_block" => Some(BtbVariant::BasicBlock(plain(doc)?)),
        "partitioned" => {
            let raw = doc.get("entries")?.as_array()?;
            if raw.len() != 4 {
                return None;
            }
            let mut entries = [0usize; 4];
            for (slot, value) in entries.iter_mut().zip(raw) {
                *slot = usize::try_from(value.as_u64()?).ok()?;
            }
            Some(BtbVariant::Partitioned(PartitionConfig {
                entries,
                ways: get_usize(doc, "ways")?,
                tag_scheme: tag_scheme_from_json(doc.get("tags")?)?,
            }))
        }
        "ideal" => Some(BtbVariant::Ideal),
        _ => None,
    }
}

fn predictor_to_json(predictor: &PredictorKind) -> Json {
    match predictor {
        PredictorKind::Bimodal { log2_entries } => Json::obj([
            ("kind", Json::str("bimodal")),
            ("log2_entries", Json::uint(u64::from(*log2_entries))),
        ]),
        PredictorKind::Gshare {
            log2_entries,
            history_bits,
        } => Json::obj([
            ("kind", Json::str("gshare")),
            ("log2_entries", Json::uint(u64::from(*log2_entries))),
            ("history_bits", Json::uint(u64::from(*history_bits))),
        ]),
        PredictorKind::Hybrid {
            log2_entries,
            history_bits,
        } => Json::obj([
            ("kind", Json::str("hybrid")),
            ("log2_entries", Json::uint(u64::from(*log2_entries))),
            ("history_bits", Json::uint(u64::from(*history_bits))),
        ]),
        PredictorKind::TwoLevelLocal {
            log2_branches,
            history_bits,
        } => Json::obj([
            ("kind", Json::str("local")),
            ("log2_branches", Json::uint(u64::from(*log2_branches))),
            ("history_bits", Json::uint(u64::from(*history_bits))),
        ]),
        PredictorKind::Tage {
            log2_base,
            log2_tagged,
            tables,
        } => Json::obj([
            ("kind", Json::str("tage")),
            ("log2_base", Json::uint(u64::from(*log2_base))),
            ("log2_tagged", Json::uint(u64::from(*log2_tagged))),
            ("tables", Json::uint(*tables as u64)),
        ]),
        PredictorKind::Perfect => Json::obj([("kind", Json::str("perfect"))]),
    }
}

fn predictor_from_json(doc: &Json) -> Option<PredictorKind> {
    match doc.get("kind")?.as_str()? {
        "bimodal" => Some(PredictorKind::Bimodal {
            log2_entries: get_u32(doc, "log2_entries")?,
        }),
        "gshare" => Some(PredictorKind::Gshare {
            log2_entries: get_u32(doc, "log2_entries")?,
            history_bits: get_u32(doc, "history_bits")?,
        }),
        "hybrid" => Some(PredictorKind::Hybrid {
            log2_entries: get_u32(doc, "log2_entries")?,
            history_bits: get_u32(doc, "history_bits")?,
        }),
        "local" => Some(PredictorKind::TwoLevelLocal {
            log2_branches: get_u32(doc, "log2_branches")?,
            history_bits: get_u32(doc, "history_bits")?,
        }),
        "tage" => Some(PredictorKind::Tage {
            log2_base: get_u32(doc, "log2_base")?,
            log2_tagged: get_u32(doc, "log2_tagged")?,
            tables: get_usize(doc, "tables")?,
        }),
        "perfect" => Some(PredictorKind::Perfect),
        _ => None,
    }
}

fn geometry_to_json(g: &CacheGeometry) -> Json {
    Json::obj([
        ("sets", Json::uint(g.sets as u64)),
        ("ways", Json::uint(g.ways as u64)),
        ("block_bytes", Json::uint(g.block_bytes)),
    ])
}

fn geometry_from_json(doc: &Json) -> Option<CacheGeometry> {
    Some(CacheGeometry {
        sets: get_usize(doc, "sets")?,
        ways: get_usize(doc, "ways")?,
        block_bytes: get_u64(doc, "block_bytes")?,
    })
}

fn policy_to_json(policy: ReplacementPolicy) -> Json {
    Json::str(match policy {
        ReplacementPolicy::Lru => "lru",
        ReplacementPolicy::Fifo => "fifo",
        ReplacementPolicy::Random => "random",
    })
}

fn policy_from_json(doc: &Json) -> Option<ReplacementPolicy> {
    match doc.as_str()? {
        "lru" => Some(ReplacementPolicy::Lru),
        "fifo" => Some(ReplacementPolicy::Fifo),
        "random" => Some(ReplacementPolicy::Random),
        _ => None,
    }
}

fn mem_to_json(mem: &HierarchyConfig) -> Json {
    Json::obj([
        ("l1", geometry_to_json(&mem.l1)),
        ("l1_policy", policy_to_json(mem.l1_policy)),
        ("l2", geometry_to_json(&mem.l2)),
        ("l2_latency", Json::uint(mem.l2_latency)),
        ("mem_latency", Json::uint(mem.mem_latency)),
        ("bus_transfer_cycles", Json::uint(mem.bus_transfer_cycles)),
        ("mshrs", Json::uint(mem.mshrs as u64)),
        (
            "prefetch_buffer_blocks",
            Json::uint(mem.prefetch_buffer_blocks as u64),
        ),
        ("tag_ports", Json::uint(u64::from(mem.tag_ports))),
        (
            "prefetch_mshr_reserve",
            Json::uint(mem.prefetch_mshr_reserve as u64),
        ),
        ("victim_blocks", Json::uint(mem.victim_blocks as u64)),
    ])
}

fn mem_from_json(doc: &Json) -> Option<HierarchyConfig> {
    Some(HierarchyConfig {
        l1: geometry_from_json(doc.get("l1")?)?,
        l1_policy: policy_from_json(doc.get("l1_policy")?)?,
        l2: geometry_from_json(doc.get("l2")?)?,
        l2_latency: get_u64(doc, "l2_latency")?,
        mem_latency: get_u64(doc, "mem_latency")?,
        bus_transfer_cycles: get_u64(doc, "bus_transfer_cycles")?,
        mshrs: get_usize(doc, "mshrs")?,
        prefetch_buffer_blocks: get_usize(doc, "prefetch_buffer_blocks")?,
        tag_ports: get_u32(doc, "tag_ports")?,
        prefetch_mshr_reserve: get_usize(doc, "prefetch_mshr_reserve")?,
        victim_blocks: get_usize(doc, "victim_blocks")?,
    })
}

fn cpf_to_json(cpf: CpfMode) -> Json {
    Json::str(match cpf {
        CpfMode::None => "none",
        CpfMode::Enqueue => "enqueue",
        CpfMode::Remove => "remove",
        CpfMode::Both => "both",
    })
}

fn cpf_from_json(doc: &Json) -> Option<CpfMode> {
    match doc.as_str()? {
        "none" => Some(CpfMode::None),
        "enqueue" => Some(CpfMode::Enqueue),
        "remove" => Some(CpfMode::Remove),
        "both" => Some(CpfMode::Both),
        _ => None,
    }
}

fn fdip_engine_to_json(c: &FdipConfig) -> Json {
    Json::obj([
        ("piq_entries", Json::uint(c.piq_entries as u64)),
        ("cpf", cpf_to_json(c.cpf)),
        (
            "recent_filter_entries",
            Json::uint(c.recent_filter_entries as u64),
        ),
        ("require_idle_bus", Json::Bool(c.require_idle_bus)),
        (
            "max_issue_per_cycle",
            Json::uint(u64::from(c.max_issue_per_cycle)),
        ),
        (
            "scan_blocks_per_cycle",
            Json::uint(u64::from(c.scan_blocks_per_cycle)),
        ),
        (
            "stall_path_lines",
            Json::uint(u64::from(c.stall_path_lines)),
        ),
    ])
}

fn fdip_engine_from_json(doc: &Json) -> Option<FdipConfig> {
    Some(FdipConfig {
        piq_entries: get_usize(doc, "piq_entries")?,
        cpf: cpf_from_json(doc.get("cpf")?)?,
        recent_filter_entries: get_usize(doc, "recent_filter_entries")?,
        require_idle_bus: get_bool(doc, "require_idle_bus")?,
        max_issue_per_cycle: get_u32(doc, "max_issue_per_cycle")?,
        scan_blocks_per_cycle: get_u32(doc, "scan_blocks_per_cycle")?,
        stall_path_lines: get_u32(doc, "stall_path_lines")?,
    })
}

fn prefetcher_to_json(prefetcher: &PrefetcherKind) -> Json {
    match prefetcher {
        PrefetcherKind::None => Json::obj([("kind", Json::str("none"))]),
        PrefetcherKind::NextLine => Json::obj([("kind", Json::str("next_line"))]),
        PrefetcherKind::StreamBuffers(c) => Json::obj([
            ("kind", Json::str("stream")),
            ("buffers", Json::uint(c.buffers as u64)),
            ("depth", Json::uint(c.depth as u64)),
            ("block_bytes", Json::uint(c.block_bytes)),
        ]),
        PrefetcherKind::Fdip(c) => Json::obj([
            ("kind", Json::str("fdip")),
            ("engine", fdip_engine_to_json(c)),
        ]),
        PrefetcherKind::Shotgun(s, f) => Json::obj([
            ("kind", Json::str("shotgun")),
            ("regions", Json::uint(s.regions as u64)),
            ("footprint_lines", Json::uint(u64::from(s.footprint_lines))),
            (
                "max_issue_per_cycle",
                Json::uint(u64::from(s.max_issue_per_cycle)),
            ),
            ("engine", fdip_engine_to_json(f)),
        ]),
        PrefetcherKind::Pif(c) => Json::obj([
            ("kind", Json::str("pif")),
            ("history_blocks", Json::uint(c.history_blocks as u64)),
            ("lookahead", Json::uint(c.lookahead as u64)),
            (
                "max_issue_per_cycle",
                Json::uint(u64::from(c.max_issue_per_cycle)),
            ),
        ]),
    }
}

fn prefetcher_from_json(doc: &Json) -> Option<PrefetcherKind> {
    match doc.get("kind")?.as_str()? {
        "none" => Some(PrefetcherKind::None),
        "next_line" => Some(PrefetcherKind::NextLine),
        "stream" => Some(PrefetcherKind::StreamBuffers(StreamBufferConfig {
            buffers: get_usize(doc, "buffers")?,
            depth: get_usize(doc, "depth")?,
            block_bytes: get_u64(doc, "block_bytes")?,
        })),
        "fdip" => Some(PrefetcherKind::Fdip(fdip_engine_from_json(
            doc.get("engine")?,
        )?)),
        "shotgun" => Some(PrefetcherKind::Shotgun(
            ShotgunConfig {
                regions: get_usize(doc, "regions")?,
                footprint_lines: get_u32(doc, "footprint_lines")?,
                max_issue_per_cycle: get_u32(doc, "max_issue_per_cycle")?,
            },
            fdip_engine_from_json(doc.get("engine")?)?,
        )),
        "pif" => Some(PrefetcherKind::Pif(PifConfig {
            history_blocks: get_usize(doc, "history_blocks")?,
            lookahead: get_usize(doc, "lookahead")?,
            max_issue_per_cycle: get_u32(doc, "max_issue_per_cycle")?,
        })),
        _ => None,
    }
}

/// Encodes a complete [`FrontendConfig`] as its wire document.
pub fn config_to_json(config: &FrontendConfig) -> Json {
    Json::obj([
        ("fetch_width", Json::uint(u64::from(config.fetch_width))),
        ("retire_width", Json::uint(u64::from(config.retire_width))),
        (
            "fetch_block_insts",
            Json::uint(u64::from(config.fetch_block_insts)),
        ),
        ("ftq_entries", Json::uint(config.ftq_entries as u64)),
        ("instr_buffer", Json::uint(config.instr_buffer as u64)),
        (
            "decode_redirect_penalty",
            Json::uint(config.decode_redirect_penalty),
        ),
        (
            "exec_redirect_penalty",
            Json::uint(config.exec_redirect_penalty),
        ),
        ("btb", btb_to_json(&config.btb)),
        ("predictor", predictor_to_json(&config.predictor)),
        ("ras_entries", Json::uint(config.ras_entries as u64)),
        ("mem", mem_to_json(&config.mem)),
        ("prefetcher", prefetcher_to_json(&config.prefetcher)),
        ("predecode_btb_fill", Json::Bool(config.predecode_btb_fill)),
    ])
}

/// Decodes a document produced by [`config_to_json`]. `None` on any
/// missing field, bad type, or unknown discriminant — the supervisor and
/// worker are always the same binary, so a decode failure means a
/// corrupted stream, not a version skew to paper over.
pub fn config_from_json(doc: &Json) -> Option<FrontendConfig> {
    Some(FrontendConfig {
        fetch_width: get_u32(doc, "fetch_width")?,
        retire_width: get_u32(doc, "retire_width")?,
        fetch_block_insts: get_u32(doc, "fetch_block_insts")?,
        ftq_entries: get_usize(doc, "ftq_entries")?,
        instr_buffer: get_usize(doc, "instr_buffer")?,
        decode_redirect_penalty: get_u64(doc, "decode_redirect_penalty")?,
        exec_redirect_penalty: get_u64(doc, "exec_redirect_penalty")?,
        btb: btb_from_json(doc.get("btb")?)?,
        predictor: predictor_from_json(doc.get("predictor")?)?,
        ras_entries: get_usize(doc, "ras_entries")?,
        mem: mem_from_json(doc.get("mem")?)?,
        prefetcher: prefetcher_from_json(doc.get("prefetcher")?)?,
        predecode_btb_fill: get_bool(doc, "predecode_btb_fill")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::config_fingerprint;
    use std::io::Cursor;

    /// A battery of configs covering every enum arm the codec must carry.
    fn battery() -> Vec<FrontendConfig> {
        let base = FrontendConfig::default;
        let mut configs = vec![
            base(),
            base().with_prefetcher(PrefetcherKind::NextLine),
            base().with_prefetcher(PrefetcherKind::StreamBuffers(StreamBufferConfig::default())),
            base().with_prefetcher(PrefetcherKind::fdip()),
            base().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Enqueue)),
            base().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Remove)),
            base().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Both)),
            base().with_prefetcher(PrefetcherKind::shotgun()),
            base().with_prefetcher(PrefetcherKind::Pif(PifConfig::default())),
            base().with_btb(BtbVariant::Ideal),
            base().with_btb(BtbVariant::basic_block(512)),
            base().with_btb(BtbVariant::partitioned(1024)),
            base().with_btb(BtbVariant::Partitioned(PartitionConfig {
                entries: [768, 256, 128, 64],
                ways: 4,
                tag_scheme: TagScheme::Full,
            })),
            base().with_predictor(PredictorKind::Bimodal { log2_entries: 12 }),
            base().with_predictor(PredictorKind::Gshare {
                log2_entries: 14,
                history_bits: 10,
            }),
            base().with_predictor(PredictorKind::TwoLevelLocal {
                log2_branches: 10,
                history_bits: 8,
            }),
            base().with_predictor(PredictorKind::Tage {
                log2_base: 12,
                log2_tagged: 9,
                tables: 5,
            }),
            base().with_predictor(PredictorKind::Perfect),
            base().with_predecode_btb_fill(true),
            base().with_ftq_entries(4),
        ];
        configs.push(base().with_mem(HierarchyConfig {
            l1_policy: ReplacementPolicy::Random,
            victim_blocks: 8,
            prefetch_buffer_blocks: 0,
            ..HierarchyConfig::default()
        }));
        configs.push(base().with_mem(HierarchyConfig {
            l1_policy: ReplacementPolicy::Fifo,
            mem_latency: 250,
            ..HierarchyConfig::default()
        }));
        configs
    }

    #[test]
    fn config_codec_round_trips_fingerprint_exact() {
        for config in battery() {
            let doc = config_to_json(&config);
            let back = config_from_json(&doc).expect("decode");
            assert_eq!(
                config_fingerprint(&config),
                config_fingerprint(&back),
                "codec forked the fingerprint for {config:?}"
            );
        }
    }

    #[test]
    fn config_decode_rejects_garbage() {
        assert!(config_from_json(&Json::parse("{}").unwrap()).is_none());
        let mut doc = config_to_json(&FrontendConfig::default());
        // Break one nested discriminant.
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "predictor" {
                    *v = Json::obj([("kind", Json::str("oracle9000"))]);
                }
            }
        }
        assert!(config_from_json(&doc).is_none());
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean_at_boundaries() {
        let mut buf = Vec::new();
        let doc = config_to_json(&FrontendConfig::default());
        write_frame(&mut buf, &doc).unwrap();
        write_frame(&mut buf, &Json::obj([("op", Json::str("hb"))])).unwrap();

        let mut cursor = Cursor::new(buf.clone());
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(doc));
        assert!(read_frame(&mut cursor).unwrap().is_some());
        assert_eq!(read_frame(&mut cursor).unwrap(), None);

        // EOF inside a frame is an error, not a silent None.
        let torn = &buf[..buf.len() - 3];
        let mut cursor = Cursor::new(torn.to_vec());
        assert!(read_frame(&mut cursor).unwrap().is_some());
        assert!(read_frame(&mut cursor).is_err());

        // A corrupted length prefix cannot drive a huge allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        huge.extend_from_slice(b"xxxx");
        assert!(read_frame(&mut Cursor::new(huge)).is_err());
    }

    #[test]
    fn request_and_reply_round_trip() {
        use fdip_trace::gen::Profile;
        let req = RunRequest {
            id: 42,
            workload: WorkloadSpec::new(Profile::Server, 1),
            trace_len: 60_000,
            budget_ms: 2_000,
            fault: Some(WorkerFault::Slow(250)),
            config: FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        };
        let back = RunRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(req, back);

        let plain = RunRequest {
            fault: None,
            ..req.clone()
        };
        assert_eq!(RunRequest::from_json(&plain.to_json()).unwrap().fault, None);

        for fault in [
            WorkerFault::Panic,
            WorkerFault::Abort,
            WorkerFault::Hang,
            WorkerFault::BigAlloc,
            WorkerFault::Slow(9),
        ] {
            assert_eq!(WorkerFault::from_wire(&fault.to_wire()), Some(fault));
        }

        let ok = WorkerReply::Ok {
            id: 42,
            stats: Box::new(SimStats {
                cycles: 10,
                instructions: 40,
                ..SimStats::default()
            }),
        };
        assert_eq!(WorkerReply::from_json(&ok.to_json()), Some(ok));
        let err = WorkerReply::Err {
            id: 7,
            kind: "panic".to_string(),
            message: "injected".to_string(),
            signal: None,
            code: None,
        };
        assert_eq!(WorkerReply::from_json(&err.to_json()), Some(err.clone()));
        // A proxy-synthesized crash reply carries the exit evidence.
        let crashed = WorkerReply::Err {
            id: 8,
            kind: "crashed".to_string(),
            message: "worker killed by signal 9".to_string(),
            signal: Some(9),
            code: None,
        };
        assert_eq!(
            WorkerReply::from_json(&crashed.to_json()),
            Some(crashed.clone())
        );
        let doc = crashed.to_json();
        assert_eq!(doc.get("signal").and_then(Json::as_u64), Some(9));
        assert!(doc.get("code").is_none());
        assert_eq!(
            WorkerReply::from_json(&WorkerReply::Heartbeat.to_json()),
            Some(WorkerReply::Heartbeat)
        );
        assert!(WorkerReply::from_json(&Json::obj([("op", Json::str("??"))])).is_none());
    }
}
