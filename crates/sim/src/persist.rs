//! Crash-proof file persistence: write-to-temp, fsync, atomic rename.
//!
//! Every results document the harness side of the repo writes —
//! `results/*.json`, CSV tables, text reports, bench baselines — must be
//! *whole or absent*: a `SIGKILL` (or power loss) mid-write may cost the
//! file, but it must never leave a torn half-document that a later reader
//! (CI's `--check` comparisons, `/v1/experiments/{id}`) trusts.
//! [`write_atomic`] provides that guarantee the standard POSIX way:
//!
//! 1. write the full contents to a fresh temp file *in the same
//!    directory* (rename is only atomic within a filesystem);
//! 2. `sync_all` the temp file, so the data is durable before it becomes
//!    visible under the real name;
//! 3. `rename` over the destination — atomic replacement on every
//!    platform the workspace targets.
//!
//! The temp name embeds the pid and a process-wide counter, so concurrent
//! writers (the bench binaries persist from multiple threads) never
//! collide, and a leftover temp file from a killed run is inert garbage
//! that the next successful write of the same document does not trip
//! over.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Writes `contents` to `path` atomically: the destination either keeps
/// its old contents (or stays absent) or holds the complete new contents,
/// never a prefix. See the module docs for the mechanism.
///
/// # Errors
///
/// Propagates the underlying filesystem error; on failure the temp file
/// is removed and the destination is untouched.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    let base = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        base.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(contents)?;
        // Durable before visible: without the fsync, a crash right after
        // the rename could expose a name pointing at unwritten blocks.
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// String-convenience wrapper over [`write_atomic`].
///
/// # Errors
///
/// As [`write_atomic`].
pub fn write_atomic_str(path: &Path, contents: &str) -> io::Result<()> {
    write_atomic(path, contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fdip-persist-{}-{tag}-{n}.json",
            std::process::id()
        ))
    }

    #[test]
    fn writes_and_replaces() {
        let path = temp_path("replace");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("fdip-persist-dir-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        write_atomic(&dir.join("doc.json"), b"{}").unwrap();
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["doc.json"], "{names:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let path = temp_path("concurrent");
        std::thread::scope(|s| {
            for i in 0..8 {
                let path = path.clone();
                s.spawn(move || {
                    let doc = format!("{{\"writer\":{i}}}").repeat(200);
                    write_atomic(&path, doc.as_bytes()).unwrap();
                });
            }
        });
        // Whatever writer won, the file is one complete document.
        let contents = fs::read_to_string(&path).unwrap();
        assert_eq!(contents.len(), "{\"writer\":0}".len() * 200);
        let first = &contents[..12];
        assert!(contents
            .as_bytes()
            .chunks(12)
            .all(|c| c == first.as_bytes()));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_destination_is_an_error_not_a_panic() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
        assert!(write_atomic(
            &std::env::temp_dir()
                .join("fdip-persist-no-such-dir")
                .join("doc.json"),
            b"x"
        )
        .is_err());
    }
}
