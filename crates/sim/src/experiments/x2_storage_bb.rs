//! X2 — storage breakdown of the basic-block-oriented BTB ("Revisited"
//! Table I). Pure arithmetic; reproduced bit-for-bit.

use fdip_btb::storage::bb_btb_table;

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::Table;
use crate::Scale;

/// Experiment id.
pub const ID: &str = "x2";
/// Experiment title.
pub const TITLE: &str = "storage breakdown, basic-block BTB (Table I)";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment (pure arithmetic; the harness is unused).
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(_harness: &Harness, _scale: Scale) -> ExperimentResult {
    let mut table = Table::new(
        format!("{ID}: {TITLE}"),
        &["entries", "organization", "entry size (bits)", "total"],
    );
    for row in bb_btb_table() {
        table.row([
            format_entries(row.entries),
            format!("{}-set, {}-way", row.sets, row.ways),
            row.entry_bits.to_string(),
            format!("{:.5}", row.total_kb())
                .trim_end_matches('0')
                .trim_end_matches('.')
                .to_string()
                + "K",
        ]);
    }
    ExperimentResult::tables(vec![table])
}

fn format_entries(entries: usize) -> String {
    if entries.is_multiple_of(1024) {
        format!("{}K", entries / 1024)
    } else {
        entries.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn reproduces_published_table_one() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let expect = [
            ["1K", "128-set, 8-way", "92", "11.5K"],
            ["2K", "256-set, 8-way", "91", "22.75K"],
            ["4K", "512-set, 8-way", "90", "45K"],
            ["8K", "1024-set, 8-way", "89", "89K"],
            ["16K", "2048-set, 8-way", "88", "176K"],
            ["32K", "4096-set, 8-way", "87", "348K"],
        ];
        assert_eq!(rows.len(), expect.len());
        for (row, want) in rows.iter().zip(expect) {
            assert_eq!(row.as_slice(), want.as_slice());
        }
    }
}
