//! A3 — ablation of the L1-I replacement policy under FDIP.

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_mem::{HierarchyConfig, ReplacementPolicy};

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, failed_row, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "a3";
/// Experiment title.
pub const TITLE: &str = "ablation: L1-I replacement policy";

const POLICIES: [(&str, ReplacementPolicy); 3] = [
    ("lru", ReplacementPolicy::Lru),
    ("fifo", ReplacementPolicy::Fifo),
    ("random", ReplacementPolicy::Random),
];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = Vec::new();
    for (label, policy) in POLICIES {
        let hierarchy = HierarchyConfig {
            l1_policy: policy,
            ..HierarchyConfig::default()
        };
        configs.push((
            format!("base {label}"),
            FrontendConfig::default().with_mem(hierarchy),
        ));
        configs.push((
            format!("fdip {label}"),
            FrontendConfig::default()
                .with_mem(hierarchy)
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &["policy", "base MPKI", "fdip speedup"],
    );
    for (label, _) in POLICIES {
        let mut speedups = Vec::new();
        let mut mpki = Vec::new();
        for w in &workloads {
            let (Ok(base), Ok(fdip)) = (
                results.try_cell(&w.name, &format!("base {label}")),
                results.try_cell(&w.name, &format!("fdip {label}")),
            ) else {
                continue;
            };
            let (base, fdip) = (&base.stats, &fdip.stats);
            speedups.push(fdip.speedup_over(base));
            mpki.push(base.l1i_mpki());
        }
        if speedups.is_empty() {
            table.row(failed_row(label.to_string(), 3));
            continue;
        }
        table.row([
            label.to_string(),
            f3(mpki.iter().sum::<f64>() / mpki.len() as f64),
            f3(geomean(speedups)),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdip_helps_under_every_policy() {
        let result = run(Scale::quick());
        for row in &result.tables[0].rows {
            let speedup: f64 = row[2].parse().unwrap();
            assert!(speedup > 1.0, "{row:?}");
        }
    }
}
