//! E1 — FDIP speedup over the no-prefetch baseline, per workload.

use crate::experiments::{base_config, fdip_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{f3, failed_row, pct, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e01";
/// Experiment title.
pub const TITLE: &str = "FDIP speedup over no-prefetch baseline";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::All, scale);
    let configs = vec![
        ("base".to_string(), base_config()),
        ("fdip".to_string(), fdip_config()),
    ];
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE}"),
        &["workload", "base IPC", "fdip IPC", "speedup", "gain"],
    );
    let mut speedups = Vec::new();
    for w in &workloads {
        let (Ok(base), Ok(fdip)) = (
            results.try_cell(&w.name, "base"),
            results.try_cell(&w.name, "fdip"),
        ) else {
            table.row(failed_row(&w.name, 5));
            continue;
        };
        let (base, fdip) = (&base.stats, &fdip.stats);
        let speedup = fdip.speedup_over(base);
        speedups.push(speedup);
        table.row([
            w.name.clone(),
            f3(base.ipc()),
            f3(fdip.ipc()),
            f3(speedup),
            pct(speedup - 1.0),
        ]);
    }
    table.row([
        "geomean".to_string(),
        String::new(),
        String::new(),
        f3(geomean(speedups.iter().copied())),
        pct(geomean(speedups.iter().copied()) - 1.0),
    ]);
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdip_always_helps_at_quick_scale() {
        let result = run(Scale::quick());
        let table = &result.tables[0];
        // Speedup column ≥ ~1.0 for every workload (prefetching can cost a
        // little on tiny client traces, never much).
        for row in &table.rows {
            let speedup: f64 = row[3].parse().unwrap();
            assert!(speedup > 0.95, "{row:?}");
        }
        // Server rows exceed 1.1 even at smoke scale.
        let server = table.rows.iter().find(|r| r[0].starts_with("server"));
        let speedup: f64 = server.unwrap()[3].parse().unwrap();
        assert!(speedup > 1.1, "server speedup {speedup}");
    }
}
