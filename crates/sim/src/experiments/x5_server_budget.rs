//! X5 — FDIP vs FDIP-X vs PIF across BTB storage budgets, server traces
//! ("Revisited" Figure 6). Same methodology as [X4](crate::experiments::x4_client_budget).

use crate::experiments::x4_client_budget::budget_sweep;
use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::workload::SuiteKind;
use crate::Scale;

/// Experiment id.
pub const ID: &str = "x5";
/// Experiment title.
pub const TITLE: &str = "FDIP / FDIP-X / PIF vs storage budget, server traces (Fig. 6)";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    budget_sweep(harness, ID, TITLE, SuiteKind::Server, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdip_x_never_loses_to_fdip_at_the_smallest_budget() {
        let result = run(Scale::quick());
        let row = &result.tables[0].rows[0]; // 11.5KB
        let fdip: f64 = row[1].parse().unwrap();
        let fdipx: f64 = row[2].parse().unwrap();
        // FDIP-X's extra reach must show at the stingiest budget (allow a
        // small tolerance at smoke scale).
        assert!(fdipx + 1.5 >= fdip, "fdip {fdip} vs fdip-x {fdipx}");
    }

    #[test]
    fn gains_grow_toward_the_infinite_budget() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let small: f64 = rows[0][1].parse().unwrap();
        let infinite: f64 = rows[rows.len() - 1][1].parse().unwrap();
        assert!(
            infinite + 1.0 >= small,
            "infinite {infinite} vs smallest {small}"
        );
    }
}
