//! The experiment catalogue.
//!
//! `e01`–`e10` reconstruct the canonical evaluation of the 1999 FDIP paper
//! (experiment identities are reconstructed from the paper's structure —
//! see DESIGN.md for the mismatch note). `x1`–`x6` reproduce the FDIP-X
//! extension's figures and tables (`x7`/`x8` add the Boomerang-style
//! predecode-BTB-fill and Shotgun-style spatial-footprint follow-ons).
//! `a1`–`a7` are ablations of design choices this reproduction had to
//! make.
//!
//! Every module exposes `ID`, `TITLE`, and `run(Scale) -> ExperimentResult`;
//! [`all`] returns the full registry in run order.

pub mod a1_stall_path;
pub mod a2_prefetch_destination;
pub mod a3_replacement;
pub mod a4_predictor;
pub mod a5_bandwidth;
pub mod a6_victim;
pub mod a7_btb_assoc;
pub mod e01_speedup;
pub mod e02_coverage;
pub mod e03_cpf;
pub mod e04_techniques;
pub mod e05_bus;
pub mod e06_latency;
pub mod e07_ftq;
pub mod e08_l1size;
pub mod e09_breakdown;
pub mod e10_baseline;
pub mod x1_offsets;
pub mod x2_storage_bb;
pub mod x3_storage_x;
pub mod x4_client_budget;
pub mod x5_server_budget;
pub mod x6_tags;
pub mod x7_boomerang;
pub mod x8_shotgun;

use fdip::{FrontendConfig, PrefetcherKind};

use crate::report::Table;
use crate::Scale;

/// Output of one experiment: tables plus an optional ASCII figure.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Tables, in presentation order.
    pub tables: Vec<Table>,
    /// Rendered ASCII chart, for figure-type experiments.
    pub chart: Option<String>,
}

impl ExperimentResult {
    /// Result with tables only.
    pub fn tables(tables: Vec<Table>) -> ExperimentResult {
        ExperimentResult {
            tables,
            chart: None,
        }
    }

    /// Renders everything as one text block.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.to_text());
            out.push('\n');
        }
        if let Some(chart) = &self.chart {
            out.push_str(chart);
            out.push('\n');
        }
        out
    }
}

/// The registry: `(id, title, runner)` in run order.
pub fn all() -> Vec<(&'static str, &'static str, fn(Scale) -> ExperimentResult)> {
    vec![
        (e01_speedup::ID, e01_speedup::TITLE, e01_speedup::run),
        (e02_coverage::ID, e02_coverage::TITLE, e02_coverage::run),
        (e03_cpf::ID, e03_cpf::TITLE, e03_cpf::run),
        (e04_techniques::ID, e04_techniques::TITLE, e04_techniques::run),
        (e05_bus::ID, e05_bus::TITLE, e05_bus::run),
        (e06_latency::ID, e06_latency::TITLE, e06_latency::run),
        (e07_ftq::ID, e07_ftq::TITLE, e07_ftq::run),
        (e08_l1size::ID, e08_l1size::TITLE, e08_l1size::run),
        (e09_breakdown::ID, e09_breakdown::TITLE, e09_breakdown::run),
        (e10_baseline::ID, e10_baseline::TITLE, e10_baseline::run),
        (x1_offsets::ID, x1_offsets::TITLE, x1_offsets::run),
        (x2_storage_bb::ID, x2_storage_bb::TITLE, x2_storage_bb::run),
        (x3_storage_x::ID, x3_storage_x::TITLE, x3_storage_x::run),
        (
            x4_client_budget::ID,
            x4_client_budget::TITLE,
            x4_client_budget::run,
        ),
        (
            x5_server_budget::ID,
            x5_server_budget::TITLE,
            x5_server_budget::run,
        ),
        (x6_tags::ID, x6_tags::TITLE, x6_tags::run),
        (x7_boomerang::ID, x7_boomerang::TITLE, x7_boomerang::run),
        (x8_shotgun::ID, x8_shotgun::TITLE, x8_shotgun::run),
        (a1_stall_path::ID, a1_stall_path::TITLE, a1_stall_path::run),
        (
            a2_prefetch_destination::ID,
            a2_prefetch_destination::TITLE,
            a2_prefetch_destination::run,
        ),
        (a3_replacement::ID, a3_replacement::TITLE, a3_replacement::run),
        (a4_predictor::ID, a4_predictor::TITLE, a4_predictor::run),
        (a5_bandwidth::ID, a5_bandwidth::TITLE, a5_bandwidth::run),
        (a6_victim::ID, a6_victim::TITLE, a6_victim::run),
        (a7_btb_assoc::ID, a7_btb_assoc::TITLE, a7_btb_assoc::run),
    ]
}

/// The no-prefetch baseline machine.
pub(crate) fn base_config() -> FrontendConfig {
    FrontendConfig::default()
}

/// The baseline machine with the default FDIP engine.
pub(crate) fn fdip_config() -> FrontendConfig {
    FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip())
}

/// Budget points of the FDIP-X study: basic-block-BTB entry counts, plus
/// `None` for the infinite point.
pub(crate) const BUDGET_ENTRIES: [Option<usize>; 7] = [
    Some(1024),
    Some(2048),
    Some(4096),
    Some(8192),
    Some(16384),
    Some(32768),
    None,
];

/// X-axis label of a budget point (the equal-budget basic-block BTB's
/// storage).
pub(crate) fn budget_label(entries: Option<usize>) -> String {
    match entries {
        Some(n) => {
            let row = fdip_btb::storage::bb_btb_row(n);
            format!("{:.5}", row.total_kb())
                .trim_end_matches('0')
                .trim_end_matches('.')
                .to_string()
                + "KB"
        }
        None => "inf".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let reg = all();
        assert_eq!(reg.len(), 25);
        let mut ids: Vec<_> = reg.iter().map(|(id, _, _)| *id).collect();
        let sorted_unique = {
            let mut v = ids.clone();
            v.sort();
            v.dedup();
            v
        };
        ids.sort();
        assert_eq!(ids, sorted_unique);
    }

    #[test]
    fn budget_labels_match_the_published_budgets() {
        let labels: Vec<String> = BUDGET_ENTRIES.iter().map(|e| budget_label(*e)).collect();
        assert_eq!(
            labels,
            vec!["11.5KB", "22.75KB", "45KB", "89KB", "176KB", "348KB", "inf"]
        );
    }
}
