//! The experiment catalogue.
//!
//! `e01`–`e10` reconstruct the canonical evaluation of the 1999 FDIP paper
//! (experiment identities are reconstructed from the paper's structure —
//! see DESIGN.md for the mismatch note). `x1`–`x6` reproduce the FDIP-X
//! extension's figures and tables (`x7`/`x8` add the Boomerang-style
//! predecode-BTB-fill and Shotgun-style spatial-footprint follow-ons).
//! `a1`–`a7` are ablations of design choices this reproduction had to
//! make. `r1`–`r2` run on *real-program* traces — instruction streams
//! executed from assembled `fdip-isa` programs and their multi-phase
//! scenarios — and calibrate the synthetic suites against them.
//!
//! Every module exposes `ID`, `TITLE`, a `Def` unit struct implementing
//! [`Experiment`], and a `run(Scale)` convenience wrapper over the
//! process-wide [`Harness`]; [`all`] returns the registry in run order and
//! [`find`] resolves one entry by id. `exp_all`, the per-experiment
//! binaries, and the `fdip tables` CLI subcommand all drive this registry.

pub mod a1_stall_path;
pub mod a2_prefetch_destination;
pub mod a3_replacement;
pub mod a4_predictor;
pub mod a5_bandwidth;
pub mod a6_victim;
pub mod a7_btb_assoc;
pub mod e01_speedup;
pub mod e02_coverage;
pub mod e03_cpf;
pub mod e04_techniques;
pub mod e05_bus;
pub mod e06_latency;
pub mod e07_ftq;
pub mod e08_l1size;
pub mod e09_breakdown;
pub mod e10_baseline;
pub mod r1_real_programs;
pub mod r2_calibration;
pub mod x1_offsets;
pub mod x2_storage_bb;
pub mod x3_storage_x;
pub mod x4_client_budget;
pub mod x5_server_budget;
pub mod x6_tags;
pub mod x7_boomerang;
pub mod x8_shotgun;

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_types::{Json, ToJson};

use crate::fault::CellError;
use crate::harness::{Harness, MatrixResults};
use crate::report::Table;
use crate::runner::RunResult;
use crate::Scale;

/// Version of the persisted `results/*.json` document layout. Bump when
/// renaming or re-shaping fields so downstream readers can dispatch.
pub const RESULTS_SCHEMA_VERSION: u64 = 1;

/// One catalogue entry: an identity plus a harness-driven runner.
///
/// Implementations are the per-module `Def` unit structs; consumers get
/// them from [`all`] / [`find`] and never name concrete types.
pub trait Experiment: Sync {
    /// Stable id, e.g. `e01` — the `results/` file stem.
    fn id(&self) -> &'static str;
    /// Human-readable title.
    fn title(&self) -> &'static str;
    /// Runs the experiment at `scale`, sourcing all simulation through
    /// `harness` so traces and identical cells are shared process-wide.
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult;
}

/// Output of one experiment: tables, an optional ASCII figure, and the raw
/// per-cell results behind them (for JSON persistence).
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Tables, in presentation order.
    pub tables: Vec<Table>,
    /// Rendered ASCII chart, for figure-type experiments.
    pub chart: Option<String>,
    /// The matrix cells the tables were derived from (empty for
    /// storage-arithmetic experiments that simulate nothing).
    pub cells: Vec<RunResult>,
}

impl ExperimentResult {
    /// Result with tables only.
    pub fn tables(tables: Vec<Table>) -> ExperimentResult {
        ExperimentResult {
            tables,
            chart: None,
            cells: Vec::new(),
        }
    }

    /// Attaches a rendered chart.
    pub fn with_chart(mut self, chart: String) -> ExperimentResult {
        self.chart = Some(chart);
        self
    }

    /// Attaches the raw matrix cells for machine-readable persistence.
    pub fn with_cells(mut self, cells: Vec<RunResult>) -> ExperimentResult {
        self.cells = cells;
        self
    }

    /// The versioned machine-readable document for `results/<id>.json`.
    pub fn to_json(&self, id: &str, title: &str) -> Json {
        Json::obj([
            ("schema_version", Json::uint(RESULTS_SCHEMA_VERSION)),
            ("id", Json::str(id)),
            ("title", Json::str(title)),
            ("tables", self.tables.to_json()),
            ("chart", self.chart.to_json()),
            ("cells", self.cells.to_json()),
        ])
    }

    /// Renders everything as one text block.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.to_text());
            out.push('\n');
        }
        if let Some(chart) = &self.chart {
            out.push_str(chart);
            out.push('\n');
        }
        out
    }
}

/// Finishes a matrix-driven experiment: attaches the raw cells and, when
/// the run degraded, appends a "failed cells" table so every `FAILED`
/// marker in the partial tables has its error spelled out next to it.
pub(crate) fn finish(mut tables: Vec<Table>, results: MatrixResults) -> ExperimentResult {
    if results.failures().next().is_some() {
        let mut failed = Table::new("failed cells", &["workload", "config", "error"]);
        for r in results.failures() {
            let error = r
                .error
                .as_ref()
                .map(CellError::to_string)
                .unwrap_or_default();
            failed.row([r.workload.clone(), r.config.clone(), error]);
        }
        tables.push(failed);
    }
    ExperimentResult::tables(tables).with_cells(results.into_cells())
}

/// The registry, in run order.
pub fn all() -> Vec<&'static dyn Experiment> {
    vec![
        &e01_speedup::Def,
        &e02_coverage::Def,
        &e03_cpf::Def,
        &e04_techniques::Def,
        &e05_bus::Def,
        &e06_latency::Def,
        &e07_ftq::Def,
        &e08_l1size::Def,
        &e09_breakdown::Def,
        &e10_baseline::Def,
        &r1_real_programs::Def,
        &r2_calibration::Def,
        &x1_offsets::Def,
        &x2_storage_bb::Def,
        &x3_storage_x::Def,
        &x4_client_budget::Def,
        &x5_server_budget::Def,
        &x6_tags::Def,
        &x7_boomerang::Def,
        &x8_shotgun::Def,
        &a1_stall_path::Def,
        &a2_prefetch_destination::Def,
        &a3_replacement::Def,
        &a4_predictor::Def,
        &a5_bandwidth::Def,
        &a6_victim::Def,
        &a7_btb_assoc::Def,
    ]
}

/// Resolves one registry entry by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    all().into_iter().find(|e| e.id() == id)
}

/// The no-prefetch baseline machine.
pub(crate) fn base_config() -> FrontendConfig {
    FrontendConfig::default()
}

/// The baseline machine with the default FDIP engine.
pub(crate) fn fdip_config() -> FrontendConfig {
    FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip())
}

/// Budget points of the FDIP-X study: basic-block-BTB entry counts, plus
/// `None` for the infinite point.
pub(crate) const BUDGET_ENTRIES: [Option<usize>; 7] = [
    Some(1024),
    Some(2048),
    Some(4096),
    Some(8192),
    Some(16384),
    Some(32768),
    None,
];

/// X-axis label of a budget point (the equal-budget basic-block BTB's
/// storage).
pub(crate) fn budget_label(entries: Option<usize>) -> String {
    match entries {
        Some(n) => {
            let row = fdip_btb::storage::bb_btb_row(n);
            format!("{:.5}", row.total_kb())
                .trim_end_matches('0')
                .trim_end_matches('.')
                .to_string()
                + "KB"
        }
        None => "inf".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let reg = all();
        assert_eq!(reg.len(), 27);
        let mut ids: Vec<_> = reg.iter().map(|e| e.id()).collect();
        let sorted_unique = {
            let mut v = ids.clone();
            v.sort();
            v.dedup();
            v
        };
        ids.sort();
        assert_eq!(ids, sorted_unique);
    }

    #[test]
    fn budget_labels_match_the_published_budgets() {
        let labels: Vec<String> = BUDGET_ENTRIES.iter().map(|e| budget_label(*e)).collect();
        assert_eq!(
            labels,
            vec!["11.5KB", "22.75KB", "45KB", "89KB", "176KB", "348KB", "inf"]
        );
    }
}
