//! X4 — FDIP vs FDIP-X vs PIF across BTB storage budgets, client traces
//! ("Revisited" Figure 5).
//!
//! Accounting: at each budget point *b* (labeled with the equal-budget
//! basic-block BTB's storage), the no-prefetch baseline and the FDIP run
//! use a *b*-entry basic-block BTB; FDIP-X uses the Table II partitioned
//! ensemble fitting the same budget; PIF keeps the same front-end BTB and
//! spends *b*'s byte budget on its temporal history instead, so each
//! series' gain is attributable to the structure the budget bought.

use fdip::{BtbVariant, FrontendConfig, PifConfig, PrefetcherKind};
use fdip_btb::storage::bb_btb_row;

use crate::experiments::{budget_label, ExperimentResult, BUDGET_ENTRIES};
use crate::harness::Harness;
use crate::report::{ascii_chart, f3, Series, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "x4";
/// Experiment title.
pub const TITLE: &str = "FDIP / FDIP-X / PIF vs storage budget, client traces (Fig. 5)";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    budget_sweep(harness, ID, TITLE, SuiteKind::Client, scale)
}

/// Bits one PIF history block costs (see `PifEngine::storage_bits`).
const PIF_BITS_PER_BLOCK: f64 = 42.0 + 74.0 / 4.0;

fn pif_for_budget(entries: Option<usize>) -> PifConfig {
    let history_blocks = match entries {
        Some(n) => {
            let budget_bits = bb_btb_row(n).total_bytes as f64 * 8.0;
            ((budget_bits / PIF_BITS_PER_BLOCK) as usize).max(1024)
        }
        None => 1 << 20,
    };
    PifConfig {
        history_blocks,
        ..PifConfig::default()
    }
}

fn btb_for_budget(entries: Option<usize>, partitioned: bool) -> BtbVariant {
    match (entries, partitioned) {
        (Some(n), false) => BtbVariant::basic_block(n),
        (Some(n), true) => BtbVariant::partitioned(n),
        (None, _) => BtbVariant::Ideal,
    }
}

pub(crate) fn budget_sweep(
    harness: &Harness,
    id: &str,
    title: &str,
    kind: SuiteKind,
    scale: Scale,
) -> ExperimentResult {
    let workloads = suite(kind, scale);
    let mut configs = Vec::new();
    for entries in BUDGET_ENTRIES {
        let label = budget_label(entries);
        configs.push((
            format!("base {label}"),
            FrontendConfig::default().with_btb(btb_for_budget(entries, false)),
        ));
        configs.push((
            format!("fdip {label}"),
            FrontendConfig::default()
                .with_btb(btb_for_budget(entries, false))
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
        configs.push((
            format!("fdip-x {label}"),
            FrontendConfig::default()
                .with_btb(btb_for_budget(entries, true))
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
        configs.push((
            format!("pif {label}"),
            FrontendConfig::default()
                .with_btb(btb_for_budget(entries, false))
                .with_prefetcher(PrefetcherKind::Pif(pif_for_budget(entries))),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{id}: {title} (% gain over same-budget no-prefetch)"),
        &["budget", "fdip", "fdip-x", "pif"],
    );
    let mut series: Vec<Series> = ["fdip", "fdip-x", "pif"]
        .iter()
        .map(|n| Series {
            label: n.to_string(),
            points: Vec::new(),
        })
        .collect();
    for entries in BUDGET_ENTRIES {
        let label = budget_label(entries);
        let mut row = vec![label.clone()];
        for (i, name) in ["fdip", "fdip-x", "pif"].iter().enumerate() {
            let mut speedups = Vec::new();
            for w in &workloads {
                let (Ok(base), Ok(s)) = (
                    results.try_cell(&w.name, &format!("base {label}")),
                    results.try_cell(&w.name, &format!("{name} {label}")),
                ) else {
                    continue;
                };
                speedups.push(s.stats.speedup_over(&base.stats));
            }
            if speedups.is_empty() {
                row.push("FAILED".to_string());
                continue;
            }
            let gain = (geomean(speedups) - 1.0) * 100.0;
            series[i].points.push((label.clone(), gain));
            row.push(f3(gain));
        }
        table.row(row);
    }
    let chart = ascii_chart(&format!("{id}: {title}"), &series, "% gain");
    super::finish(vec![table], results).with_chart(chart)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pif_budget_sizing_scales_with_budget() {
        let small = pif_for_budget(Some(1024)).history_blocks;
        let large = pif_for_budget(Some(32768)).history_blocks;
        assert!(large > 20 * small, "{small} vs {large}");
        // 11.5KB ≈ 94208 bits / 60.5 ≈ 1557 blocks.
        assert!((1400..1700).contains(&small), "{small}");
    }

    #[test]
    fn sweep_produces_full_grid() {
        let result = run(Scale::quick());
        let table = &result.tables[0];
        assert_eq!(table.rows.len(), BUDGET_ENTRIES.len());
        assert!(result.chart.is_some());
        // Every cell parses as a number.
        for row in &table.rows {
            for cell in &row[1..] {
                let _: f64 = cell.parse().unwrap();
            }
        }
    }
}
