//! A4 — ablation of the direction predictor under FDIP: how much of the
//! front-end's delivery problem is direction prediction vs cache misses.

use fdip::{FrontendConfig, PredictorKind, PrefetcherKind};

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, failed_row, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "a4";
/// Experiment title.
pub const TITLE: &str = "ablation: direction predictor under FDIP";

fn predictors() -> Vec<(&'static str, PredictorKind)> {
    vec![
        ("bimodal", PredictorKind::Bimodal { log2_entries: 15 }),
        (
            "gshare",
            PredictorKind::Gshare {
                log2_entries: 15,
                history_bits: 12,
            },
        ),
        (
            "hybrid",
            PredictorKind::Hybrid {
                log2_entries: 15,
                history_bits: 12,
            },
        ),
        (
            "local",
            PredictorKind::TwoLevelLocal {
                log2_branches: 13,
                history_bits: 12,
            },
        ),
        (
            "tage",
            PredictorKind::Tage {
                log2_base: 14,
                log2_tagged: 12,
                tables: 5,
            },
        ),
        ("perfect", PredictorKind::Perfect),
    ]
}

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = vec![("base".to_string(), FrontendConfig::default())];
    for (name, kind) in predictors() {
        configs.push((
            name.to_string(),
            FrontendConfig::default()
                .with_predictor(kind)
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &["predictor", "fdip speedup", "exec redirects/KI"],
    );
    for (name, _) in predictors() {
        let mut speedups = Vec::new();
        let mut mpki = Vec::new();
        for w in &workloads {
            let (Ok(base), Ok(s)) = (
                results.try_cell(&w.name, "base"),
                results.try_cell(&w.name, name),
            ) else {
                continue;
            };
            let (base, s) = (&base.stats, &s.stats);
            speedups.push(s.speedup_over(base));
            mpki.push(s.branches.mpki(s.instructions));
        }
        if speedups.is_empty() {
            table.row(failed_row(name.to_string(), 3));
            continue;
        }
        table.row([
            name.to_string(),
            f3(geomean(speedups)),
            f3(mpki.iter().sum::<f64>() / mpki.len() as f64),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_predictors_mean_fewer_redirects_and_more_speedup() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let get = |n: &str| {
            let r = rows.iter().find(|r| r[0] == n).unwrap();
            (r[1].parse::<f64>().unwrap(), r[2].parse::<f64>().unwrap())
        };
        let (gshare_speed, gshare_mpki) = get("gshare");
        let (perfect_speed, perfect_mpki) = get("perfect");
        assert!(perfect_mpki < gshare_mpki);
        assert!(perfect_speed + 0.05 >= gshare_speed);
        let (tage_speed, tage_mpki) = get("tage");
        assert!(tage_speed > 1.0);
        assert!(tage_mpki >= perfect_mpki);
    }
}
