//! X6 — tag-compression ablation ("Revisited" Figure 7): 16-bit folded-XOR
//! tags vs full tags on the smallest FDIP-X configuration, where aliasing
//! pressure is highest.

use fdip::{BtbVariant, FrontendConfig, PrefetcherKind};
use fdip_btb::{PartitionConfig, TagScheme};

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, failed_row, kb, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "x6";
/// Experiment title.
pub const TITLE: &str = "16-bit compressed tags vs full tags (Fig. 7)";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::All, scale);
    let smallest = 1024;
    let compressed = PartitionConfig::from_bb_entries(smallest);
    let full = compressed.with_tag_scheme(TagScheme::Full);
    let configs = vec![
        ("base".to_string(), FrontendConfig::default()),
        (
            "c16".to_string(),
            FrontendConfig::default()
                .with_btb(BtbVariant::Partitioned(compressed))
                .with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "full".to_string(),
            FrontendConfig::default()
                .with_btb(BtbVariant::Partitioned(full))
                .with_prefetcher(PrefetcherKind::fdip()),
        ),
    ];
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} — smallest budget"),
        &["workload", "gain c16 %", "gain full %", "difference pp"],
    );
    let mut c16_all = Vec::new();
    let mut full_all = Vec::new();
    for w in &workloads {
        let (Ok(base), Ok(c16), Ok(full)) = (
            results.try_cell(&w.name, "base"),
            results.try_cell(&w.name, "c16"),
            results.try_cell(&w.name, "full"),
        ) else {
            table.row(failed_row(&w.name, 4));
            continue;
        };
        let base = &base.stats;
        let c16 = c16.stats.speedup_over(base);
        let full = full.stats.speedup_over(base);
        c16_all.push(c16);
        full_all.push(full);
        table.row([
            w.name.clone(),
            f3((c16 - 1.0) * 100.0),
            f3((full - 1.0) * 100.0),
            f3((full - c16) * 100.0),
        ]);
    }
    let c16_gain = (geomean(c16_all) - 1.0) * 100.0;
    let full_gain = (geomean(full_all) - 1.0) * 100.0;
    table.row([
        "geomean".to_string(),
        f3(c16_gain),
        f3(full_gain),
        f3(full_gain - c16_gain),
    ]);

    let mut storage = Table::new(
        format!("{ID}b: storage cost of the two tag schemes"),
        &["tag scheme", "storage"],
    );
    use fdip_btb::{Btb, PartitionedBtb};
    storage.row([
        "16-bit folded-XOR".to_string(),
        kb(PartitionedBtb::new(compressed).storage_bits() / 8),
    ]);
    storage.row([
        "full".to_string(),
        kb(PartitionedBtb::new(full).storage_bits() / 8),
    ]);

    super::finish(vec![table, storage], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_costs_almost_nothing() {
        let result = run(Scale::quick());
        let geo = result.tables[0].rows.last().unwrap().clone();
        let difference: f64 = geo[3].parse().unwrap();
        // The paper reports a 0.04 percentage-point difference; allow a
        // couple of points at smoke scale.
        assert!(
            difference.abs() < 3.0,
            "tag compression cost {difference}pp"
        );
    }

    #[test]
    fn full_tags_cost_more_storage() {
        let result = run(Scale::quick());
        let storage = &result.tables[1];
        let c16: f64 = storage.rows[0][1].trim_end_matches("KB").parse().unwrap();
        let full: f64 = storage.rows[1][1].trim_end_matches("KB").parse().unwrap();
        assert!(full > c16);
    }
}
