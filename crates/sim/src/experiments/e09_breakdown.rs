//! E9 — prefetch quality breakdown: accuracy, timeliness, pollution.

use crate::experiments::{base_config, e04_techniques, ExperimentResult};
use crate::harness::Harness;
use crate::report::{failed_row, pct, Table};
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e09";
/// Experiment title.
pub const TITLE: &str = "prefetch accuracy / timeliness / pollution";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = vec![("base".to_string(), base_config())];
    configs.extend(e04_techniques::techniques());
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite totals)"),
        &[
            "technique",
            "issued",
            "useful",
            "accuracy",
            "late",
            "redundant fills",
            "polluting evictions",
        ],
    );
    for (name, _) in configs.iter().skip(1) {
        let mut issued = 0u64;
        let mut useful = 0u64;
        let mut late = 0u64;
        let mut redundant = 0u64;
        let mut useless = 0u64;
        let mut missing = false;
        for w in &workloads {
            let Ok(s) = results.try_cell(&w.name, name) else {
                missing = true;
                continue;
            };
            let s = &s.stats;
            issued += s.mem.prefetches_issued;
            useful += s.mem.useful_prefetches;
            late += s.mem.late_prefetches;
            redundant += s.mem.redundant_prefetch_fills;
            useless += s.mem.useless_evictions;
        }
        if missing && issued == 0 {
            table.row(failed_row(name.clone(), 7));
            continue;
        }
        let accuracy = if issued == 0 {
            0.0
        } else {
            useful as f64 / issued as f64
        };
        table.row([
            name.clone(),
            issued.to_string(),
            useful.to_string(),
            pct(accuracy),
            late.to_string(),
            redundant.to_string(),
            useless.to_string(),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_technique_issues_and_some_prefetches_are_useful() {
        let result = run(Scale::quick());
        for row in &result.tables[0].rows {
            let issued: u64 = row[1].parse().unwrap();
            let useful: u64 = row[2].parse().unwrap();
            assert!(issued > 0, "{row:?}");
            assert!(useful > 0, "{row:?}");
            assert!(useful <= issued + 1, "{row:?}");
        }
    }
}
