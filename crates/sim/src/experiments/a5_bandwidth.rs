//! A5 — sensitivity to L1–L2 bus bandwidth: the constraint under which
//! FDIP's filtered, demand-aware traffic beats the brute-force baselines.

use fdip::{CpfMode, FrontendConfig, PrefetcherKind};
use fdip_mem::HierarchyConfig;

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "a5";
/// Experiment title.
pub const TITLE: &str = "speedup vs bus bandwidth (cycles per block transfer)";

const TRANSFER_CYCLES: [u64; 4] = [1, 2, 4, 8];

fn techniques() -> Vec<(&'static str, PrefetcherKind)> {
    vec![
        ("stream", PrefetcherKind::StreamBuffers(Default::default())),
        ("fdip", PrefetcherKind::fdip()),
        ("fdip+cpf", PrefetcherKind::fdip_with_cpf(CpfMode::Remove)),
    ]
}

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = Vec::new();
    for cycles in TRANSFER_CYCLES {
        let hierarchy = HierarchyConfig {
            bus_transfer_cycles: cycles,
            ..HierarchyConfig::default()
        };
        configs.push((
            format!("base {cycles}"),
            FrontendConfig::default().with_mem(hierarchy),
        ));
        for (name, kind) in techniques() {
            configs.push((
                format!("{name} {cycles}"),
                FrontendConfig::default()
                    .with_mem(hierarchy)
                    .with_prefetcher(kind),
            ));
        }
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &["cycles/transfer", "stream", "fdip", "fdip+cpf"],
    );
    for cycles in TRANSFER_CYCLES {
        let mut row = vec![cycles.to_string()];
        for (name, _) in techniques() {
            let mut speedups = Vec::new();
            for w in &workloads {
                let (Ok(base), Ok(s)) = (
                    results.try_cell(&w.name, &format!("base {cycles}")),
                    results.try_cell(&w.name, &format!("{name} {cycles}")),
                ) else {
                    continue;
                };
                speedups.push(s.stats.speedup_over(&base.stats));
            }
            if speedups.is_empty() {
                row.push("FAILED".to_string());
                continue;
            }
            row.push(f3(geomean(speedups)));
        }
        table.row(row);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpf_matters_more_as_the_bus_narrows() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        // CPF's whole job is saving bus slots: its edge over unfiltered
        // FDIP must not shrink as transfers get more expensive.
        let gap = |row: &Vec<String>| {
            let fdip: f64 = row[2].parse().unwrap();
            let cpf: f64 = row[3].parse().unwrap();
            cpf - fdip
        };
        let wide_gap = gap(&rows[0]); // 1 cycle/transfer
        let narrow_gap = gap(&rows[3]); // 8 cycles/transfer
        assert!(
            narrow_gap + 0.02 >= wide_gap,
            "cpf edge must grow with bus cost: wide {wide_gap} narrow {narrow_gap}"
        );
        // Everyone still helps at every bandwidth.
        for row in rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 1.0, "{row:?}");
            }
        }
    }
}
