//! X7 — Boomerang-style predecode BTB fill (extension): can the prefetch
//! stream repair its own BTB misses, and does that shrink the BTB budget
//! FDIP needs?

use fdip::{BtbVariant, FrontendConfig, PrefetcherKind};

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, failed_row, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "x7";
/// Experiment title.
pub const TITLE: &str = "predecode BTB fill (Boomerang extension)";

const BUDGETS: [usize; 4] = [512, 1024, 2048, 8192];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = Vec::new();
    for entries in BUDGETS {
        configs.push((
            format!("base {entries}"),
            FrontendConfig::default().with_btb(BtbVariant::conventional(entries)),
        ));
        configs.push((
            format!("fdip {entries}"),
            FrontendConfig::default()
                .with_btb(BtbVariant::conventional(entries))
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
        configs.push((
            format!("boomerang {entries}"),
            FrontendConfig::default()
                .with_btb(BtbVariant::conventional(entries))
                .with_prefetcher(PrefetcherKind::fdip())
                .with_predecode_btb_fill(true),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &[
            "BTB entries",
            "fdip speedup",
            "fdip+predecode speedup",
            "decode redirects/KI (fdip)",
            "decode redirects/KI (predecode)",
            "installs",
        ],
    );
    for entries in BUDGETS {
        let mut fdip_speed = Vec::new();
        let mut boom_speed = Vec::new();
        let mut fdip_decode = Vec::new();
        let mut boom_decode = Vec::new();
        let mut installs = 0u64;
        for w in &workloads {
            let (Ok(base), Ok(fdip), Ok(boom)) = (
                results.try_cell(&w.name, &format!("base {entries}")),
                results.try_cell(&w.name, &format!("fdip {entries}")),
                results.try_cell(&w.name, &format!("boomerang {entries}")),
            ) else {
                continue;
            };
            let (base, fdip, boom) = (&base.stats, &fdip.stats, &boom.stats);
            fdip_speed.push(fdip.speedup_over(base));
            boom_speed.push(boom.speedup_over(base));
            fdip_decode
                .push(fdip.branches.decode_redirects as f64 * 1000.0 / fdip.instructions as f64);
            boom_decode
                .push(boom.branches.decode_redirects as f64 * 1000.0 / boom.instructions as f64);
            installs += boom.predecode_installs;
        }
        if fdip_speed.is_empty() {
            table.row(failed_row(entries.to_string(), 6));
            continue;
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        table.row([
            entries.to_string(),
            f3(geomean(fdip_speed)),
            f3(geomean(boom_speed)),
            f3(avg(&fdip_decode)),
            f3(avg(&boom_decode)),
            installs.to_string(),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predecode_cuts_decode_redirects_at_small_btbs() {
        let result = run(Scale::quick());
        let row = &result.tables[0].rows[0]; // 512-entry BTB
        let fdip_decode: f64 = row[3].parse().unwrap();
        let boom_decode: f64 = row[4].parse().unwrap();
        assert!(
            boom_decode < fdip_decode,
            "predecode must cut misfetches: {fdip_decode} vs {boom_decode}"
        );
        let installs: u64 = row[5].parse().unwrap();
        assert!(installs > 0);
        let fdip_speed: f64 = row[1].parse().unwrap();
        let boom_speed: f64 = row[2].parse().unwrap();
        assert!(
            boom_speed > fdip_speed * 0.98,
            "predecode should not hurt: {fdip_speed} vs {boom_speed}"
        );
    }
}
