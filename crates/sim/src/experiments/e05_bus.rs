//! E5 — L1–L2 bus utilization and traffic breakdown per technique.

use crate::experiments::{base_config, e04_techniques, ExperimentResult};
use crate::harness::Harness;
use crate::report::{failed_row, pct, Table};
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e05";
/// Experiment title.
pub const TITLE: &str = "bus utilization per technique";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = vec![("base".to_string(), base_config())];
    configs.extend(e04_techniques::techniques());
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite totals)"),
        &[
            "technique",
            "bus util",
            "demand transfers",
            "prefetch transfers",
            "redundant fills",
        ],
    );
    for (name, _) in &configs {
        let mut util = Vec::new();
        let mut demand = 0u64;
        let mut prefetch = 0u64;
        let mut redundant = 0u64;
        for w in &workloads {
            let Ok(s) = results.try_cell(&w.name, name) else {
                continue;
            };
            let s = &s.stats;
            util.push(s.bus_utilization());
            demand += s.mem.demand_transfers;
            prefetch += s.mem.prefetch_transfers;
            redundant += s.mem.redundant_prefetch_fills;
        }
        if util.is_empty() {
            table.row(failed_row(name.clone(), 5));
            continue;
        }
        table.row([
            name.clone(),
            pct(util.iter().sum::<f64>() / util.len() as f64),
            demand.to_string(),
            prefetch.to_string(),
            redundant.to_string(),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetchers_add_prefetch_traffic_and_cut_demand_traffic() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let get = |n: &str| rows.iter().find(|r| r[0] == n).unwrap().clone();
        let base = get("base");
        let fdip = get("fdip");
        assert_eq!(base[3], "0", "baseline has no prefetch traffic");
        let base_demand: u64 = base[2].parse().unwrap();
        let fdip_demand: u64 = fdip[2].parse().unwrap();
        let fdip_prefetch: u64 = fdip[3].parse().unwrap();
        assert!(fdip_prefetch > 0);
        assert!(
            fdip_demand < base_demand,
            "prefetching absorbs demand misses"
        );
    }
}
