//! E8 — sensitivity to L1-I capacity: prefetching matters less as the
//! cache grows past the footprint.

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_mem::{CacheGeometry, HierarchyConfig};

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, failed_row, pct, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e08";
/// Experiment title.
pub const TITLE: &str = "speedup vs L1-I capacity";

const SIZES_KB: [u64; 4] = [8, 16, 32, 64];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = Vec::new();
    for kb in SIZES_KB {
        let hierarchy = HierarchyConfig {
            l1: CacheGeometry::from_capacity(kb * 1024, 2, 64),
            ..HierarchyConfig::default()
        };
        configs.push((
            format!("base {kb}KB"),
            FrontendConfig::default().with_mem(hierarchy),
        ));
        configs.push((
            format!("fdip {kb}KB"),
            FrontendConfig::default()
                .with_mem(hierarchy)
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &["L1-I", "base MPKI", "speedup", "coverage"],
    );
    for kb in SIZES_KB {
        let mut speedups = Vec::new();
        let mut mpki = Vec::new();
        let mut coverage = Vec::new();
        for w in &workloads {
            let (Ok(base), Ok(fdip)) = (
                results.try_cell(&w.name, &format!("base {kb}KB")),
                results.try_cell(&w.name, &format!("fdip {kb}KB")),
            ) else {
                continue;
            };
            let (base, fdip) = (&base.stats, &fdip.stats);
            speedups.push(fdip.speedup_over(base));
            mpki.push(base.l1i_mpki());
            coverage.push(fdip.miss_coverage_vs(base));
        }
        if speedups.is_empty() {
            table.row(failed_row(format!("{kb}KB"), 4));
            continue;
        }
        table.row([
            format!("{kb}KB"),
            f3(mpki.iter().sum::<f64>() / mpki.len() as f64),
            f3(geomean(speedups)),
            pct(coverage.iter().sum::<f64>() / coverage.len() as f64),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_caches_miss_less_and_gain_less() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let mpki_8: f64 = rows[0][1].parse().unwrap();
        let mpki_64: f64 = rows[3][1].parse().unwrap();
        assert!(mpki_8 > mpki_64, "mpki must fall with size");
        let s8: f64 = rows[0][2].parse().unwrap();
        let s64: f64 = rows[3][2].parse().unwrap();
        assert!(s8 > s64, "gain must shrink with size: {s8} vs {s64}");
    }
}
