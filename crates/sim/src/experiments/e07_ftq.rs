//! E7 — sensitivity to FTQ depth: the decoupling knob of the whole design.

use fdip::{FrontendConfig, PrefetcherKind};

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{ascii_chart, f3, failed_row, Series, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e07";
/// Experiment title.
pub const TITLE: &str = "speedup vs FTQ depth";

const DEPTHS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = vec![("base".to_string(), FrontendConfig::default())];
    for depth in DEPTHS {
        configs.push((
            format!("ftq{depth}"),
            FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::fdip())
                .with_ftq_entries(depth),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &[
            "ftq depth",
            "speedup",
            "mean occupancy",
            "prefetches issued",
        ],
    );
    let mut series = Series {
        label: "fdip".to_string(),
        points: Vec::new(),
    };
    for depth in DEPTHS {
        let mut speedups = Vec::new();
        let mut occupancy = Vec::new();
        let mut issued = 0u64;
        for w in &workloads {
            let (Ok(base), Ok(s)) = (
                results.try_cell(&w.name, "base"),
                results.try_cell(&w.name, &format!("ftq{depth}")),
            ) else {
                continue;
            };
            let (base, s) = (&base.stats, &s.stats);
            speedups.push(s.speedup_over(base));
            occupancy.push(s.mean_ftq_occupancy());
            issued += s.fdip.issued;
        }
        if speedups.is_empty() {
            table.row(failed_row(depth.to_string(), 4));
            continue;
        }
        let speedup = geomean(speedups);
        series.points.push((depth.to_string(), speedup));
        table.row([
            depth.to_string(),
            f3(speedup),
            f3(occupancy.iter().sum::<f64>() / occupancy.len() as f64),
            issued.to_string(),
        ]);
    }
    let chart = ascii_chart(&format!("{ID}: {TITLE}"), &[series], "speedup");
    super::finish(vec![table], results).with_chart(chart)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_ftq_helps_then_saturates() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let s1: f64 = rows[0][1].parse().unwrap(); // depth 1
        let s32: f64 = rows[5][1].parse().unwrap(); // depth 32
        let s64: f64 = rows[6][1].parse().unwrap(); // depth 64
        assert!(s32 > s1, "depth must help: {s1} vs {s32}");
        // Saturation: 64 gives little over 32.
        assert!((s64 - s32).abs() < 0.2, "saturation: {s32} vs {s64}");
    }
}
