//! E6 — sensitivity of FDIP's gain to L2/memory latency.

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_mem::HierarchyConfig;

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::ascii_chart;
use crate::report::{f3, failed_row, Series, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e06";
/// Experiment title.
pub const TITLE: &str = "speedup vs memory latency";

const POINTS: [(&str, u64, u64); 4] = [
    ("fast (6/60)", 6, 60),
    ("base (12/120)", 12, 120),
    ("slow (24/240)", 24, 240),
    ("slower (48/480)", 48, 480),
];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = Vec::new();
    for (label, l2, mem) in POINTS {
        let hierarchy = HierarchyConfig {
            l2_latency: l2,
            mem_latency: mem,
            ..HierarchyConfig::default()
        };
        configs.push((
            format!("base {label}"),
            FrontendConfig::default().with_mem(hierarchy),
        ));
        configs.push((
            format!("fdip {label}"),
            FrontendConfig::default()
                .with_mem(hierarchy)
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &["latency (L2/mem)", "base IPC", "fdip IPC", "speedup"],
    );
    let mut series = Series {
        label: "fdip".to_string(),
        points: Vec::new(),
    };
    for (label, _, _) in POINTS {
        let mut speedups = Vec::new();
        let mut base_ipc = Vec::new();
        let mut fdip_ipc = Vec::new();
        for w in &workloads {
            let (Ok(base), Ok(fdip)) = (
                results.try_cell(&w.name, &format!("base {label}")),
                results.try_cell(&w.name, &format!("fdip {label}")),
            ) else {
                continue;
            };
            let (base, fdip) = (&base.stats, &fdip.stats);
            speedups.push(fdip.speedup_over(base));
            base_ipc.push(base.ipc());
            fdip_ipc.push(fdip.ipc());
        }
        if speedups.is_empty() {
            table.row(failed_row(label, 4));
            continue;
        }
        let speedup = geomean(speedups);
        series.points.push((label.to_string(), speedup));
        table.row([
            label.to_string(),
            f3(geomean(base_ipc)),
            f3(geomean(fdip_ipc)),
            f3(speedup),
        ]);
    }
    let chart = ascii_chart(&format!("{ID}: {TITLE}"), &[series], "speedup");
    super::finish(vec![table], results).with_chart(chart)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_grows_with_latency() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let fast: f64 = rows[0][3].parse().unwrap();
        let slower: f64 = rows[3][3].parse().unwrap();
        assert!(
            slower > fast,
            "speedup must grow with latency: {fast} vs {slower}"
        );
    }
}
