//! A6 — ablation: would a victim cache (absent from the 1999 machine
//! model) have changed the picture, with and without FDIP?

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_mem::HierarchyConfig;

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, failed_row, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "a6";
/// Experiment title.
pub const TITLE: &str = "ablation: victim cache beside the L1-I";

const SIZES: [usize; 3] = [0, 8, 32];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = Vec::new();
    for blocks in SIZES {
        let hierarchy = HierarchyConfig {
            victim_blocks: blocks,
            ..HierarchyConfig::default()
        };
        configs.push((
            format!("base v{blocks}"),
            FrontendConfig::default().with_mem(hierarchy),
        ));
        configs.push((
            format!("fdip v{blocks}"),
            FrontendConfig::default()
                .with_mem(hierarchy)
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &[
            "victim blocks",
            "base IPC",
            "base victim hits",
            "fdip IPC",
            "fdip speedup vs v0 base",
        ],
    );
    // The reference baseline is the no-victim, no-prefetch machine.
    for blocks in SIZES {
        let mut base_ipc = Vec::new();
        let mut fdip_ipc = Vec::new();
        let mut speedups = Vec::new();
        let mut victim_hits = 0u64;
        for w in &workloads {
            let (Ok(reference), Ok(base), Ok(fdip)) = (
                results.try_cell(&w.name, "base v0"),
                results.try_cell(&w.name, &format!("base v{blocks}")),
                results.try_cell(&w.name, &format!("fdip v{blocks}")),
            ) else {
                continue;
            };
            let (reference, base, fdip) = (&reference.stats, &base.stats, &fdip.stats);
            base_ipc.push(base.ipc());
            fdip_ipc.push(fdip.ipc());
            speedups.push(fdip.speedup_over(reference));
            victim_hits += base.mem.victim_hits;
        }
        if speedups.is_empty() {
            table.row(failed_row(blocks.to_string(), 5));
            continue;
        }
        table.row([
            blocks.to_string(),
            f3(geomean(base_ipc)),
            victim_hits.to_string(),
            f3(geomean(fdip_ipc)),
            f3(geomean(speedups)),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_cache_serves_hits_and_never_hurts() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let hits_v0: u64 = rows[0][2].parse().unwrap();
        let hits_v32: u64 = rows[2][2].parse().unwrap();
        assert_eq!(hits_v0, 0);
        assert!(hits_v32 > 0, "32-block victim cache must serve hits");
        let base_v0: f64 = rows[0][1].parse().unwrap();
        let base_v32: f64 = rows[2][1].parse().unwrap();
        assert!(base_v32 + 0.02 >= base_v0, "{base_v0} vs {base_v32}");
    }
}
