//! A6 — ablation: would a victim cache (absent from the 1999 machine
//! model) have changed the picture, with and without FDIP?

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_mem::HierarchyConfig;

use crate::experiments::ExperimentResult;
use crate::report::{f3, Table};
use crate::runner::{cell, geomean, run_matrix};
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "a6";
/// Experiment title.
pub const TITLE: &str = "ablation: victim cache beside the L1-I";

const SIZES: [usize; 3] = [0, 8, 32];

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = Vec::new();
    for blocks in SIZES {
        let hierarchy = HierarchyConfig {
            victim_blocks: blocks,
            ..HierarchyConfig::default()
        };
        configs.push((
            format!("base v{blocks}"),
            FrontendConfig::default().with_mem(hierarchy),
        ));
        configs.push((
            format!("fdip v{blocks}"),
            FrontendConfig::default()
                .with_mem(hierarchy)
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
    }
    let results = run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &[
            "victim blocks",
            "base IPC",
            "base victim hits",
            "fdip IPC",
            "fdip speedup vs v0 base",
        ],
    );
    // The reference baseline is the no-victim, no-prefetch machine.
    for blocks in SIZES {
        let mut base_ipc = Vec::new();
        let mut fdip_ipc = Vec::new();
        let mut speedups = Vec::new();
        let mut victim_hits = 0u64;
        for w in &workloads {
            let reference = &cell(&results, &w.name, "base v0").stats;
            let base = &cell(&results, &w.name, &format!("base v{blocks}")).stats;
            let fdip = &cell(&results, &w.name, &format!("fdip v{blocks}")).stats;
            base_ipc.push(base.ipc());
            fdip_ipc.push(fdip.ipc());
            speedups.push(fdip.speedup_over(reference));
            victim_hits += base.mem.victim_hits;
        }
        table.row([
            blocks.to_string(),
            f3(geomean(base_ipc)),
            victim_hits.to_string(),
            f3(geomean(fdip_ipc)),
            f3(geomean(speedups)),
        ]);
    }
    ExperimentResult::tables(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_cache_serves_hits_and_never_hurts() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let hits_v0: u64 = rows[0][2].parse().unwrap();
        let hits_v32: u64 = rows[2][2].parse().unwrap();
        assert_eq!(hits_v0, 0);
        assert!(hits_v32 > 0, "32-block victim cache must serve hits");
        let base_v0: f64 = rows[0][1].parse().unwrap();
        let base_v32: f64 = rows[2][1].parse().unwrap();
        assert!(base_v32 + 0.02 >= base_v0, "{base_v0} vs {base_v32}");
    }
}
