//! A1 — ablation of the stall-path (wrong-path/fall-through) sequential
//! prefetching the reproduction adds during BPU redirect stalls.

use fdip::{FdipConfig, FrontendConfig, PrefetcherKind};

use crate::experiments::{base_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{f3, failed_row, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "a1";
/// Experiment title.
pub const TITLE: &str = "ablation: stall-path sequential prefetch depth";

const DEPTHS: [u32; 4] = [0, 4, 8, 16];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = vec![("base".to_string(), base_config())];
    for depth in DEPTHS {
        configs.push((
            format!("lines{depth}"),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::Fdip(FdipConfig {
                stall_path_lines: depth,
                ..FdipConfig::default()
            })),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &["stall-path lines", "speedup", "prefetches issued"],
    );
    for depth in DEPTHS {
        let mut speedups = Vec::new();
        let mut issued = 0u64;
        for w in &workloads {
            let (Ok(base), Ok(s)) = (
                results.try_cell(&w.name, "base"),
                results.try_cell(&w.name, &format!("lines{depth}")),
            ) else {
                continue;
            };
            let (base, s) = (&base.stats, &s.stats);
            speedups.push(s.speedup_over(base));
            issued += s.fdip.issued;
        }
        if speedups.is_empty() {
            table.row(failed_row(depth.to_string(), 3));
            continue;
        }
        table.row([depth.to_string(), f3(geomean(speedups)), issued.to_string()]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_path_prefetching_pays_off() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let off: f64 = rows[0][1].parse().unwrap();
        let on: f64 = rows[2][1].parse().unwrap(); // 8 lines (default)
        assert!(on > off, "stall path must help: {off} vs {on}");
    }
}
