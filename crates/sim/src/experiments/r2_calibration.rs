//! R2 — calibration of synthetic traces against real-program traces:
//! branch-class mix and basic-block-size distributions side by side.
//!
//! The synthetic generator was tuned to the 1999 paper's reported
//! workload statistics; the `fdip-isa` programs execute actual code.
//! This report puts both populations on the same axes so drift between
//! the suites is visible at a glance (and regression-tested): if the
//! synthetic mix wanders away from what executed programs produce, the
//! headline experiments quietly lose their grounding.
//!
//! Trace statistics only — no simulation cells.

use fdip_types::BranchClass;

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, pct, Table};
use crate::workload::{program_suite, scenario_suite, suite, SuiteKind, WorkloadSpec};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "r2";
/// Experiment title.
pub const TITLE: &str = "synthetic vs real-program trace calibration";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn populations(scale: Scale) -> Vec<(&'static str, Vec<WorkloadSpec>)> {
    vec![
        ("synthetic", suite(SuiteKind::All, scale)),
        ("program", program_suite()),
        (
            "scenario",
            scenario_suite(super::r1_real_programs::SCENARIO_SEED),
        ),
    ]
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let mut mix = Table::new(
        format!("{ID}: {TITLE} — dynamic branch-class mix"),
        &[
            "workload",
            "kind",
            "br PKI",
            "cond",
            "cond taken",
            "uncond",
            "call",
            "ret",
            "ind",
        ],
    );
    let mut blocks = Table::new(
        format!("{ID}b: basic-block sizes (instructions per branch-ended run)"),
        &["workload", "kind", "mean", "p50", "p90", "max"],
    );
    for (kind, specs) in populations(scale) {
        for w in &specs {
            let entry = harness.trace(w, scale.trace_len);
            let s = &entry.stats;
            let total = s.mix.total().max(1) as f64;
            let frac = |c: BranchClass| s.mix.count(c) as f64 / total;
            mix.row([
                w.name.clone(),
                kind.to_string(),
                f3(s.branch_pki()),
                pct(frac(BranchClass::CondDirect)),
                pct(s.mix.cond_taken_ratio()),
                pct(frac(BranchClass::UncondDirect)),
                pct(frac(BranchClass::Call) + frac(BranchClass::IndirectCall)),
                pct(frac(BranchClass::Return)),
                pct(frac(BranchClass::IndirectCall) + frac(BranchClass::IndirectJump)),
            ]);
            blocks.row([
                w.name.clone(),
                kind.to_string(),
                f3(s.blocks.mean()),
                s.blocks.percentile(0.5).unwrap_or(0).to_string(),
                s.blocks.percentile(0.9).unwrap_or(0).to_string(),
                s.blocks.max_size().unwrap_or(0).to_string(),
            ]);
        }
    }
    ExperimentResult::tables(vec![mix, blocks])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_populations_appear_and_look_like_programs() {
        let result = run(Scale::quick());
        let mix = &result.tables[0];
        let kinds: Vec<&str> = mix.rows.iter().map(|r| r[1].as_str()).collect();
        assert!(kinds.contains(&"synthetic"));
        assert!(kinds.contains(&"program"));
        assert!(kinds.contains(&"scenario"));
        for row in &mix.rows {
            // Branch PKI in a plausible band for all populations: traces
            // dominated by straight-line or by branches would both signal
            // a calibration bug.
            let pki: f64 = row[2].parse().unwrap();
            assert!((20.0..=450.0).contains(&pki), "{row:?}");
        }
        let blocks = &result.tables[1];
        for row in &blocks.rows {
            let mean: f64 = row[2].parse().unwrap();
            assert!((2.0..=50.0).contains(&mean), "{row:?}");
        }
        // Statistics-only: nothing simulated.
        assert!(result.cells.is_empty());
    }
}
