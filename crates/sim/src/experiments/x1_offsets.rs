//! X1 — branch target offset distribution ("Revisited" Figure 3): the
//! insight motivating the partitioned BTB.

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{pct, Table};
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "x1";
/// Experiment title.
pub const TITLE: &str = "branch target offset distribution (Fig. 3)";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::All, scale);

    let mut table = Table::new(
        format!("{ID}: {TITLE} — dynamic taken branches by offset width"),
        &[
            "workload",
            "<=8 bits",
            "9-13 bits",
            "14-23 bits",
            ">23 bits",
            "max bits",
        ],
    );
    let mut detail = Table::new(
        format!("{ID}b: per-width fractions (server suite, first workload)"),
        &["bits", "fraction"],
    );
    for (index, w) in workloads.iter().enumerate() {
        let entry = harness.trace(w, scale.trace_len);
        let stats = &entry.stats;
        let c8 = stats.offsets.cumulative_fraction(8);
        let c13 = stats.offsets.cumulative_fraction(13);
        let c23 = stats.offsets.cumulative_fraction(23);
        table.row([
            w.name.clone(),
            pct(c8),
            pct(c13 - c8),
            pct(c23 - c13),
            pct(1.0 - c23),
            stats.offsets.max_bits().unwrap_or(0).to_string(),
        ]);
        if index == workloads.len() - 1 {
            let max = stats.offsets.max_bits().unwrap_or(0);
            for bits in 0..=max {
                let fraction = stats.offsets.fraction(bits);
                if fraction > 0.0005 {
                    detail.row([bits.to_string(), pct(fraction)]);
                }
            }
        }
    }
    ExperimentResult::tables(vec![table, detail])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_offsets_dominate_and_long_ones_are_rare() {
        let result = run(Scale::quick());
        for row in &result.tables[0].rows {
            let short: f64 = row[1].trim_end_matches('%').parse().unwrap();
            let long: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(short > 50.0, "{row:?}");
            assert!(long < 15.0, "{row:?}");
        }
    }
}
