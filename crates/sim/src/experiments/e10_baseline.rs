//! E10 — workload characterization and baseline machine statistics.

use fdip_types::BranchClass;

use crate::experiments::{base_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{f3, failed_row, Table};
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e10";
/// Experiment title.
pub const TITLE: &str = "workload characterization & baseline statistics";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::All, scale);
    let configs = vec![("base".to_string(), base_config())];
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut characterization = Table::new(
        format!("{ID}a: workload characterization"),
        &[
            "workload",
            "insts",
            "footprint KB",
            "static taken branches",
            "branches/KI",
            "cond taken ratio",
        ],
    );
    let mut baseline = Table::new(
        format!("{ID}b: no-prefetch baseline"),
        &[
            "workload",
            "IPC",
            "L1-I MPKI",
            "exec redirects/KI",
            "decode redirects/KI",
            "BTB hit ratio",
        ],
    );
    for w in &workloads {
        let Ok(r) = results.try_cell(&w.name, "base") else {
            characterization.row(failed_row(&w.name, 6));
            baseline.row(failed_row(&w.name, 6));
            continue;
        };
        let t = &r.trace_stats;
        characterization.row([
            w.name.clone(),
            t.len.to_string(),
            (t.footprint_bytes / 1024).to_string(),
            t.static_taken_branches.to_string(),
            f3(t.branch_pki()),
            f3(t.mix.cond_taken_ratio()),
        ]);
        let s = &r.stats;
        baseline.row([
            w.name.clone(),
            f3(s.ipc()),
            f3(s.l1i_mpki()),
            f3(s.branches.mpki(s.instructions)),
            f3(s.branches.decode_redirects as f64 * 1000.0 / s.instructions as f64),
            f3(s.branches.btb_hit_ratio()),
        ]);
    }

    let mut mix = Table::new(
        format!("{ID}c: dynamic branch mix (per workload, %)"),
        &["workload", "cond", "jump", "call", "icall", "ret", "ijump"],
    );
    for w in &workloads {
        let Ok(r) = results.try_cell(&w.name, "base") else {
            mix.row(failed_row(&w.name, 7));
            continue;
        };
        let t = &r.trace_stats;
        let total = t.mix.total().max(1) as f64;
        let mut row = vec![w.name.clone()];
        for class in BranchClass::ALL {
            row.push(format!("{:.1}", t.mix.count(class) as f64 * 100.0 / total));
        }
        mix.row(row);
    }

    super::finish(vec![characterization, baseline, mix], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_workloads_are_bigger_and_slower_than_client() {
        let result = run(Scale::quick());
        let chars = &result.tables[0];
        let base = &result.tables[1];
        let find = |t: &Table, prefix: &str| {
            t.rows
                .iter()
                .find(|r| r[0].starts_with(prefix))
                .unwrap()
                .clone()
        };
        let client_fp: u64 = find(chars, "client")[2].parse().unwrap();
        let server_fp: u64 = find(chars, "server")[2].parse().unwrap();
        assert!(server_fp > client_fp);
        let client_ipc: f64 = find(base, "client")[1].parse().unwrap();
        let server_ipc: f64 = find(base, "server")[1].parse().unwrap();
        assert!(client_ipc > server_ipc);
    }

    #[test]
    fn branch_mix_percentages_sum_to_about_100() {
        let result = run(Scale::quick());
        for row in &result.tables[2].rows {
            let sum: f64 = row[1..].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!((sum - 100.0).abs() < 1.0, "{row:?}");
        }
    }

    use crate::report::Table;
}
