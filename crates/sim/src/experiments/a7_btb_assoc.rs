//! A7 — ablation: BTB associativity at a fixed entry count. Conflict
//! misses in the BTB translate directly into misfetches.

use fdip::{BtbVariant, FrontendConfig, PrefetcherKind};
use fdip_btb::{BtbConfig, TagScheme};

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, failed_row, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "a7";
/// Experiment title.
pub const TITLE: &str = "ablation: BTB associativity at 2K entries";

const WAYS: [usize; 4] = [1, 2, 4, 8];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let entries = 2048usize;
    let mut configs = vec![("base".to_string(), FrontendConfig::default())];
    for ways in WAYS {
        let btb = BtbVariant::Conventional(BtbConfig::new(entries / ways, ways, TagScheme::Full));
        configs.push((
            format!("{ways}-way"),
            FrontendConfig::default()
                .with_btb(btb)
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &["ways", "speedup", "btb hit ratio", "decode redirects/KI"],
    );
    for ways in WAYS {
        let mut speedups = Vec::new();
        let mut hit = Vec::new();
        let mut decode = Vec::new();
        for w in &workloads {
            let (Ok(base), Ok(s)) = (
                results.try_cell(&w.name, "base"),
                results.try_cell(&w.name, &format!("{ways}-way")),
            ) else {
                continue;
            };
            let (base, s) = (&base.stats, &s.stats);
            speedups.push(s.speedup_over(base));
            hit.push(s.branches.btb_hit_ratio());
            decode.push(s.branches.decode_redirects as f64 * 1000.0 / s.instructions as f64);
        }
        if speedups.is_empty() {
            table.row(failed_row(ways.to_string(), 4));
            continue;
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        table.row([
            ways.to_string(),
            f3(geomean(speedups)),
            f3(avg(&hit)),
            f3(avg(&decode)),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associativity_improves_btb_hit_rate() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let direct: f64 = rows[0][2].parse().unwrap();
        let eight: f64 = rows[3][2].parse().unwrap();
        assert!(eight + 0.005 >= direct, "8-way {eight} vs 1-way {direct}");
        for row in rows {
            let speedup: f64 = row[1].parse().unwrap();
            assert!(speedup > 1.0, "{row:?}");
        }
    }
}
