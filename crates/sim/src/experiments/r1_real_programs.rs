//! R1 — FDIP on real-program traces: speedup over the no-prefetch
//! baseline for every assembled library program and every multi-phase
//! scenario.
//!
//! The paper's evaluation ran on SPEC traces; the synthetic suites stand
//! in for those statistically. This experiment closes the loop with
//! *executed* instruction streams — `fdip-isa` programs and their
//! context-switch / interrupt compositions — so the headline claim is
//! also demonstrated on control flow that a real compiler-shaped program
//! produces (loops, recursion, indirect dispatch, call-heavy code).

use crate::experiments::{base_config, fdip_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{f3, failed_row, pct, Table};
use crate::runner::geomean;
use crate::workload::{program_suite, scenario_suite};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "r1";
/// Experiment title.
pub const TITLE: &str = "FDIP speedup on real-program traces";

/// Fixed interleaving seed for the scenario workloads: results must be
/// reproducible, and seed sweeps belong to future experiments.
pub const SCENARIO_SEED: u64 = 7;

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let mut workloads = program_suite();
    let programs = workloads.len();
    workloads.extend(scenario_suite(SCENARIO_SEED));
    let configs = vec![
        ("base".to_string(), base_config()),
        ("fdip".to_string(), fdip_config()),
    ];
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE}"),
        &[
            "workload", "kind", "base IPC", "fdip IPC", "speedup", "gain",
        ],
    );
    let mut speedups = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        let kind = if i < programs { "program" } else { "scenario" };
        let (Ok(base), Ok(fdip)) = (
            results.try_cell(&w.name, "base"),
            results.try_cell(&w.name, "fdip"),
        ) else {
            table.row(failed_row(&w.name, 6));
            continue;
        };
        let (base, fdip) = (&base.stats, &fdip.stats);
        let speedup = fdip.speedup_over(base);
        speedups.push(speedup);
        table.row([
            w.name.clone(),
            kind.to_string(),
            f3(base.ipc()),
            f3(fdip.ipc()),
            f3(speedup),
            pct(speedup - 1.0),
        ]);
    }
    table.row([
        "geomean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        f3(geomean(speedups.iter().copied())),
        pct(geomean(speedups.iter().copied()) - 1.0),
    ]);
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_program_and_scenario() {
        let result = run(Scale::quick());
        let table = &result.tables[0];
        let programs = fdip_isa::library::names().len();
        let scenarios = fdip_isa::scenario::names().len();
        // One row per workload plus the geomean row.
        assert_eq!(table.rows.len(), programs + scenarios + 1);
        // Every cell simulated (no FAILED markers) and speedups are sane.
        for row in &table.rows[..programs + scenarios] {
            let speedup: f64 = row[4].parse().unwrap();
            assert!(speedup > 0.9, "{row:?}");
        }
    }
}
