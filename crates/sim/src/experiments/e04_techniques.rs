//! E4 — prefetching-technique comparison: next-line, stream buffers, FDIP,
//! FDIP+CPF (and PIF, for the extension's sake), per workload.

use fdip::{CpfMode, FrontendConfig, PrefetcherKind};

use crate::experiments::{base_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{ascii_chart, f3, failed_row, Series, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e04";
/// Experiment title.
pub const TITLE: &str = "prefetching techniques compared";

/// The compared techniques, in presentation order.
pub fn techniques() -> Vec<(String, FrontendConfig)> {
    vec![
        (
            "nlp".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::NextLine),
        ),
        (
            "stream".to_string(),
            FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::StreamBuffers(Default::default())),
        ),
        (
            "fdip".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "fdip+cpf".to_string(),
            FrontendConfig::default()
                .with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Remove)),
        ),
        (
            "pif".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::Pif(Default::default())),
        ),
    ]
}

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::All, scale);
    let mut configs = vec![("base".to_string(), base_config())];
    configs.extend(techniques());
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let technique_names: Vec<String> = techniques().into_iter().map(|(n, _)| n).collect();
    let mut headers: Vec<&str> = vec!["workload"];
    let name_refs: Vec<&str> = technique_names.iter().map(String::as_str).collect();
    headers.extend(&name_refs);
    let mut table = Table::new(format!("{ID}: {TITLE} (speedup over baseline)"), &headers);

    let mut series: Vec<Series> = technique_names
        .iter()
        .map(|n| Series {
            label: n.clone(),
            points: Vec::new(),
        })
        .collect();
    let mut per_technique: Vec<Vec<f64>> = vec![Vec::new(); technique_names.len()];
    for w in &workloads {
        let Ok(base) = results.try_cell(&w.name, "base") else {
            table.row(failed_row(&w.name, headers.len()));
            continue;
        };
        let base = &base.stats;
        let mut row = vec![w.name.clone()];
        for (i, name) in technique_names.iter().enumerate() {
            let Ok(cell) = results.try_cell(&w.name, name) else {
                row.push("FAILED".to_string());
                continue;
            };
            let speedup = cell.stats.speedup_over(base);
            per_technique[i].push(speedup);
            series[i].points.push((w.name.clone(), speedup));
            row.push(f3(speedup));
        }
        table.row(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for speeds in &per_technique {
        geo.push(f3(geomean(speeds.iter().copied())));
    }
    table.row(geo);

    let chart = ascii_chart(&format!("{ID}: {TITLE}"), &series, "speedup over baseline");
    super::finish(vec![table], results).with_chart(chart)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdip_beats_nlp_on_server_workloads() {
        let result = run(Scale::quick());
        let table = &result.tables[0];
        let nlp_col = table.headers.iter().position(|h| h == "nlp").unwrap();
        let fdip_col = table.headers.iter().position(|h| h == "fdip").unwrap();
        let server = table
            .rows
            .iter()
            .find(|r| r[0].starts_with("server"))
            .unwrap();
        let nlp: f64 = server[nlp_col].parse().unwrap();
        let fdip: f64 = server[fdip_col].parse().unwrap();
        assert!(fdip > nlp, "fdip {fdip} vs nlp {nlp}");
        assert!(result.chart.is_some());
    }
}
