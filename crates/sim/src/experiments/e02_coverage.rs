//! E2 — fraction of L1-I misses FDIP eliminates, per workload.

use crate::experiments::{base_config, fdip_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{f3, failed_row, pct, Table};
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e02";
/// Experiment title.
pub const TITLE: &str = "L1-I miss coverage of FDIP";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::All, scale);
    let configs = vec![
        ("base".to_string(), base_config()),
        ("fdip".to_string(), fdip_config()),
    ];
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE}"),
        &[
            "workload",
            "base misses",
            "base MPKI",
            "fdip misses",
            "coverage",
            "late prefetches",
        ],
    );
    for w in &workloads {
        let (Ok(base), Ok(fdip)) = (
            results.try_cell(&w.name, "base"),
            results.try_cell(&w.name, "fdip"),
        ) else {
            table.row(failed_row(&w.name, 6));
            continue;
        };
        let (base, fdip) = (&base.stats, &fdip.stats);
        table.row([
            w.name.clone(),
            base.mem.l1_misses.to_string(),
            f3(base.l1i_mpki()),
            fdip.mem.l1_misses.to_string(),
            pct(fdip.miss_coverage_vs(base)),
            fdip.mem.late_prefetches.to_string(),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_coverage_is_substantial() {
        let result = run(Scale::quick());
        let row = result.tables[0]
            .rows
            .iter()
            .find(|r| r[0].starts_with("server"))
            .unwrap()
            .clone();
        let coverage: f64 = row[4].trim_end_matches('%').parse().unwrap();
        assert!(coverage > 15.0, "coverage {coverage}%");
    }
}
