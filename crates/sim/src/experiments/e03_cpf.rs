//! E3 — Cache Probe Filtering ablation: none / enqueue / remove / both.

use fdip::{CpfMode, FrontendConfig, PrefetcherKind};

use crate::experiments::{base_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{f3, failed_row, pct, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "e03";
/// Experiment title.
pub const TITLE: &str = "cache probe filtering ablation";

const MODES: [(&str, CpfMode); 4] = [
    ("none", CpfMode::None),
    ("enqueue", CpfMode::Enqueue),
    ("remove", CpfMode::Remove),
    ("both", CpfMode::Both),
];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::All, scale);
    let mut configs = vec![("base".to_string(), base_config())];
    for (name, mode) in MODES {
        configs.push((
            name.to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip_with_cpf(mode)),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (geomean over suite)"),
        &[
            "cpf mode",
            "speedup",
            "prefetches issued",
            "accuracy",
            "bus util",
            "probes filtered",
        ],
    );
    for (name, _) in MODES {
        let mut speedups = Vec::new();
        let mut issued = 0u64;
        let mut useful = 0u64;
        let mut bus = Vec::new();
        let mut filtered = 0u64;
        for w in &workloads {
            let (Ok(base), Ok(s)) = (
                results.try_cell(&w.name, "base"),
                results.try_cell(&w.name, name),
            ) else {
                continue;
            };
            let (base, s) = (&base.stats, &s.stats);
            speedups.push(s.speedup_over(base));
            issued += s.mem.prefetches_issued;
            useful += s.mem.useful_prefetches;
            bus.push(s.bus_utilization());
            filtered += s.fdip.filtered_cpf_enqueue + s.fdip.filtered_cpf_remove;
        }
        if bus.is_empty() {
            table.row(failed_row(name, 6));
            continue;
        }
        let accuracy = if issued == 0 {
            0.0
        } else {
            useful as f64 / issued as f64
        };
        table.row([
            name.to_string(),
            f3(geomean(speedups)),
            issued.to_string(),
            pct(accuracy),
            pct(bus.iter().sum::<f64>() / bus.len() as f64),
            filtered.to_string(),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpf_reduces_issued_prefetches_and_raises_accuracy() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let get = |mode: &str| rows.iter().find(|r| r[0] == mode).unwrap().clone();
        let none = get("none");
        let enq = get("enqueue");
        let issued_none: u64 = none[2].parse().unwrap();
        let issued_enq: u64 = enq[2].parse().unwrap();
        assert!(issued_enq <= issued_none);
        let acc_none: f64 = none[3].trim_end_matches('%').parse().unwrap();
        let acc_enq: f64 = enq[3].trim_end_matches('%').parse().unwrap();
        assert!(acc_enq + 1e-9 >= acc_none, "{acc_enq} vs {acc_none}");
        let filtered: u64 = enq[5].parse().unwrap();
        assert!(filtered > 0);
    }
}
