//! A2 — ablation of the prefetch destination: the 1999 design's dedicated
//! prefetch buffer vs prefetching straight into the L1-I (the policy later
//! FDIP variants adopted).

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_mem::HierarchyConfig;

use crate::experiments::{base_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{f3, failed_row, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "a2";
/// Experiment title.
pub const TITLE: &str = "ablation: prefetch buffer vs direct-to-L1 fills";

const BUFFERS: [(&str, usize); 4] = [
    ("direct-to-L1", 0),
    ("8-block buffer", 8),
    ("32-block buffer", 32),
    ("128-block buffer", 128),
];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::Server, scale);
    let mut configs = vec![("base".to_string(), base_config())];
    for (label, blocks) in BUFFERS {
        configs.push((
            label.to_string(),
            FrontendConfig::default()
                .with_mem(HierarchyConfig {
                    prefetch_buffer_blocks: blocks,
                    ..HierarchyConfig::default()
                })
                .with_prefetcher(PrefetcherKind::fdip()),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE} (server suite geomean)"),
        &["destination", "speedup", "polluting evictions"],
    );
    for (label, _) in BUFFERS {
        let mut speedups = Vec::new();
        let mut pollution = 0u64;
        for w in &workloads {
            let (Ok(base), Ok(s)) = (
                results.try_cell(&w.name, "base"),
                results.try_cell(&w.name, label),
            ) else {
                continue;
            };
            let (base, s) = (&base.stats, &s.stats);
            speedups.push(s.speedup_over(base));
            pollution += s.mem.useless_evictions;
        }
        if speedups.is_empty() {
            table.row(failed_row(label.to_string(), 3));
            continue;
        }
        table.row([
            label.to_string(),
            f3(geomean(speedups)),
            pollution.to_string(),
        ]);
    }
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_to_l1_pollutes_while_buffers_do_not() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        let direct_pollution: u64 = rows[0][2].parse().unwrap();
        let buffered_pollution: u64 = rows[2][2].parse().unwrap();
        assert!(
            direct_pollution >= buffered_pollution,
            "{direct_pollution} vs {buffered_pollution}"
        );
        // All variants still help.
        for row in rows {
            let speedup: f64 = row[1].parse().unwrap();
            assert!(speedup > 1.0, "{row:?}");
        }
    }
}
