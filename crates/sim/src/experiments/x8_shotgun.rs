//! X8 — Shotgun-lite (extension): spatial call-target footprints on top of
//! FDIP. Does reaching past the FTQ's lookahead pay, and what does the
//! region table cost?

use fdip::{FrontendConfig, PrefetcherKind, ShotgunConfig};

use crate::experiments::{base_config, ExperimentResult};
use crate::harness::Harness;
use crate::report::{f3, failed_row, pct, Table};
use crate::runner::geomean;
use crate::workload::{suite, SuiteKind};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "x8";
/// Experiment title.
pub const TITLE: &str = "Shotgun-lite spatial footprints over FDIP";

const REGION_TABLES: [usize; 3] = [128, 512, 2048];

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment on the process-wide shared harness.
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(harness: &Harness, scale: Scale) -> ExperimentResult {
    let workloads = suite(SuiteKind::All, scale);
    let mut configs = vec![
        ("base".to_string(), base_config()),
        (
            "fdip".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
    ];
    for regions in REGION_TABLES {
        configs.push((
            format!("shotgun {regions}"),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::Shotgun(
                ShotgunConfig {
                    regions,
                    ..ShotgunConfig::default()
                },
                Default::default(),
            )),
        ));
    }
    let results = harness.run_matrix(&workloads, scale.trace_len, &configs);

    let mut table = Table::new(
        format!("{ID}: {TITLE}"),
        &[
            "workload",
            "fdip speedup",
            "shotgun-128",
            "shotgun-512",
            "shotgun-2048",
            "coverage fdip",
            "coverage shotgun-512",
        ],
    );
    let mut fdip_all = Vec::new();
    let mut shotgun_all = vec![Vec::new(); REGION_TABLES.len()];
    for w in &workloads {
        let cells = (
            results.try_cell(&w.name, "base"),
            results.try_cell(&w.name, "fdip"),
            results.try_cell(&w.name, "shotgun 512"),
        );
        let ((Ok(base), Ok(fdip), Ok(mid)), Ok(all_regions)) = (
            cells,
            REGION_TABLES
                .iter()
                .map(|regions| results.try_cell(&w.name, &format!("shotgun {regions}")))
                .collect::<Result<Vec<_>, _>>(),
        ) else {
            table.row(failed_row(&w.name, 7));
            continue;
        };
        let (base, fdip, mid) = (&base.stats, &fdip.stats, &mid.stats);
        let fdip_speed = fdip.speedup_over(base);
        fdip_all.push(fdip_speed);
        let mut row = vec![w.name.clone(), f3(fdip_speed)];
        for (i, s) in all_regions.iter().enumerate() {
            let speed = s.stats.speedup_over(base);
            shotgun_all[i].push(speed);
            row.push(f3(speed));
        }
        row.push(pct(fdip.miss_coverage_vs(base)));
        row.push(pct(mid.miss_coverage_vs(base)));
        table.row(row);
    }
    let mut geo = vec!["geomean".to_string(), f3(geomean(fdip_all))];
    for speeds in &shotgun_all {
        geo.push(f3(geomean(speeds.iter().copied())));
    }
    geo.push(String::new());
    geo.push(String::new());
    table.row(geo);
    super::finish(vec![table], results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shotgun_matches_or_beats_fdip_on_servers() {
        let result = run(Scale::quick());
        let server = result.tables[0]
            .rows
            .iter()
            .find(|r| r[0].starts_with("server"))
            .unwrap()
            .clone();
        let fdip: f64 = server[1].parse().unwrap();
        let shotgun512: f64 = server[3].parse().unwrap();
        assert!(
            shotgun512 >= fdip * 0.97,
            "shotgun {shotgun512} vs fdip {fdip}"
        );
    }
}
