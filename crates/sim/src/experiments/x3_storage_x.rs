//! X3 — distribution of the storage budget among the FDIP-X BTB banks
//! ("Revisited" Table II).

use fdip_btb::storage::fdipx_table;

use crate::experiments::ExperimentResult;
use crate::harness::Harness;
use crate::report::{f3, kb, Table};
use crate::Scale;

/// Experiment id.
pub const ID: &str = "x3";
/// Experiment title.
pub const TITLE: &str = "FDIP-X budget distribution (Table II)";

/// Registry entry.
pub struct Def;

impl super::Experiment for Def {
    fn id(&self) -> &'static str {
        ID
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn run(&self, harness: &Harness, scale: Scale) -> ExperimentResult {
        run_with(harness, scale)
    }
}

/// Runs the experiment (pure arithmetic; the harness is unused).
pub fn run(scale: Scale) -> ExperimentResult {
    run_with(Harness::global(), scale)
}

fn run_with(_harness: &Harness, _scale: Scale) -> ExperimentResult {
    let mut table = Table::new(
        format!("{ID}: {TITLE}"),
        &[
            "budget",
            "bank",
            "entry size (bits)",
            "entries",
            "bank storage",
            "total / entry ratio",
        ],
    );
    for budget in fdipx_table() {
        for (i, row) in budget.rows.iter().enumerate() {
            let summary = if i == 0 {
                format!(
                    "{} ({}x entries)",
                    kb(budget.total_bytes()),
                    f3(budget.entry_ratio())
                )
            } else {
                String::new()
            };
            table.row([
                if i == 0 {
                    kb(budget.budget_bytes)
                } else {
                    String::new()
                },
                format!("{}-bit offset", row.bank.bits()),
                row.entry_bits.to_string(),
                row.entries.to_string(),
                kb(row.bytes),
                summary,
            ]);
        }
    }
    ExperimentResult::tables(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn first_budget_row_matches_published_numbers() {
        let result = run(Scale::quick());
        let rows = &result.tables[0].rows;
        // 11.5KB budget: 768-entry 26-bit bank first.
        assert_eq!(rows[0][0], "11.50KB");
        assert_eq!(rows[0][1], "8-bit offset");
        assert_eq!(rows[0][2], "26");
        assert_eq!(rows[0][3], "768");
        // Total ≈ 10.06KB with ≈2.36x the entries.
        assert!(rows[0][5].contains("10.0"));
        assert!(rows[0][5].contains("2.3"));
        // Wide bank of the first budget: 112 entries at 64 bits.
        assert_eq!(rows[3][1], "46-bit offset");
        assert_eq!(rows[3][2], "64");
        assert_eq!(rows[3][3], "112");
    }
}
