//! Experiment harness for the FDIP reproduction.
//!
//! This crate turns the `fdip` simulator into the paper's evaluation:
//!
//! * [`workload`] — the client/server workload suites (synthetic traces
//!   standing in for the unavailable SPEC/IPC-1 traces);
//! * [`harness`] — the shared execution engine: a process-wide trace
//!   store, a content-keyed cell cache, and a cell-granular deterministic
//!   scheduler with panic isolation and retry (see [`fault`]);
//! * [`fault`] — the cell error taxonomy, retry policy, and deterministic
//!   fault injection ([`fault::FaultPlan`]);
//! * [`journal`] — the crash-tolerant, CRC-framed completed-cell journal
//!   behind `exp_all --journal` resume;
//! * [`persist`] — atomic (write-to-temp + fsync + rename) result
//!   persistence, so killed runs never leave torn files;
//! * [`supervisor`] / [`worker`] / [`ipc`] — process-isolated cell
//!   execution: a supervised pool of self-exec'd worker processes with
//!   heartbeats, hard SIGKILL preemption, and typed crash classification
//!   (`--isolate`);
//! * [`net`] / [`fleet`] — the distributed tier: hardened TCP framing
//!   with a registration handshake, the `fdip workerd` daemon loop, the
//!   fleet dispatcher (`--fleet`) that survives node loss by
//!   re-dispatching through the same retry taxonomy, and the shared
//!   on-disk content-addressed result cache (`--cache`);
//! * [`chaos`] — the seeded chaos soak behind `fdip chaos`: rounds of
//!   real experiments against a live self-exec'd fleet under scheduled
//!   kills, restarts, network faults, and cache corruption, gated on
//!   byte-identical output and bounded re-simulation;
//! * [`runner`] — result types ([`runner::RunResult`]) and numeric
//!   helpers over harness output;
//! * [`report`] — plain-text tables, CSV emission, and ASCII series plots;
//! * [`experiments`] — one module per table/figure: the reconstructed 1999
//!   evaluation (`e01`–`e10`), the FDIP-X extension plus follow-ons
//!   (`x1`–`x8`), and design-choice ablations (`a1`–`a7`).
//!
//! Every experiment takes a [`Scale`] so the full paper-sized runs and the
//! seconds-long smoke runs used by tests share one code path.
//!
//! # Examples
//!
//! ```
//! use fdip_sim::{experiments, Scale};
//!
//! let result = experiments::x2_storage_bb::run(Scale::quick());
//! assert!(result.tables[0].to_text().contains("11.5"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod fault;
pub mod fleet;
pub mod harness;
pub mod ipc;
pub mod journal;
pub mod net;
pub mod persist;
pub mod report;
pub mod runner;
pub mod supervisor;
pub mod worker;
pub mod workload;

mod scale;

pub use scale::{Scale, ScaleArgError};
