use std::fmt;

use crate::Addr;

/// The control-flow class of a branch instruction.
///
/// The class determines which front-end structures participate in predicting
/// the branch: the direction predictor (conditionals only), the return
/// address stack (calls push, returns pop), and the indirect target cache
/// (register-indirect jumps and calls).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BranchClass {
    /// Direct conditional branch (`b.cond label`).
    CondDirect,
    /// Direct unconditional jump (`b label`).
    UncondDirect,
    /// Direct call (`bl label`) — pushes a return address.
    Call,
    /// Indirect call (`blr reg`) — pushes a return address, target from ITC.
    IndirectCall,
    /// Function return (`ret`) — target from the return address stack.
    Return,
    /// Indirect jump (`br reg`) — target from the indirect target cache.
    IndirectJump,
}

impl BranchClass {
    /// All classes, in a stable order (used by codecs and statistics).
    pub const ALL: [BranchClass; 6] = [
        BranchClass::CondDirect,
        BranchClass::UncondDirect,
        BranchClass::Call,
        BranchClass::IndirectCall,
        BranchClass::Return,
        BranchClass::IndirectJump,
    ];

    /// Returns `true` if the branch consults the direction predictor.
    pub const fn is_conditional(self) -> bool {
        matches!(self, BranchClass::CondDirect)
    }

    /// Returns `true` if the branch is always taken when executed.
    pub const fn is_unconditional(self) -> bool {
        !self.is_conditional()
    }

    /// Returns `true` if the branch target comes from a register, so the BTB
    /// (or indirect target cache) is the only source of the target address.
    pub const fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchClass::IndirectCall | BranchClass::Return | BranchClass::IndirectJump
        )
    }

    /// Returns `true` if executing the branch pushes a return address.
    pub const fn pushes_ras(self) -> bool {
        matches!(self, BranchClass::Call | BranchClass::IndirectCall)
    }

    /// Returns `true` if the branch pops the return address stack.
    pub const fn pops_ras(self) -> bool {
        matches!(self, BranchClass::Return)
    }

    /// Returns `true` if the target is encoded in the instruction, so the
    /// front-end can recover it at decode even on a BTB miss.
    pub const fn is_direct(self) -> bool {
        matches!(
            self,
            BranchClass::CondDirect | BranchClass::UncondDirect | BranchClass::Call
        )
    }

    /// Stable small integer encoding, the inverse of [`BranchClass::from_code`].
    pub const fn code(self) -> u8 {
        match self {
            BranchClass::CondDirect => 0,
            BranchClass::UncondDirect => 1,
            BranchClass::Call => 2,
            BranchClass::IndirectCall => 3,
            BranchClass::Return => 4,
            BranchClass::IndirectJump => 5,
        }
    }

    /// Decodes the integer produced by [`BranchClass::code`].
    pub const fn from_code(code: u8) -> Option<BranchClass> {
        match code {
            0 => Some(BranchClass::CondDirect),
            1 => Some(BranchClass::UncondDirect),
            2 => Some(BranchClass::Call),
            3 => Some(BranchClass::IndirectCall),
            4 => Some(BranchClass::Return),
            5 => Some(BranchClass::IndirectJump),
            _ => None,
        }
    }
}

impl fmt::Display for BranchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BranchClass::CondDirect => "cond",
            BranchClass::UncondDirect => "jump",
            BranchClass::Call => "call",
            BranchClass::IndirectCall => "icall",
            BranchClass::Return => "ret",
            BranchClass::IndirectJump => "ijump",
        };
        f.write_str(name)
    }
}

/// Ground-truth outcome of one dynamic branch instance, as recorded in a trace.
///
/// `taken` is always `true` for unconditional classes. `target` is the
/// resolved destination when taken; for a not-taken conditional it records
/// the would-be destination (useful for BTB training policies that install
/// on first encounter rather than first taken).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BranchRecord {
    /// Control-flow class of the instruction.
    pub class: BranchClass,
    /// Whether this dynamic instance was taken.
    pub taken: bool,
    /// Resolved target address.
    pub target: Addr,
}

impl BranchRecord {
    /// Convenience constructor.
    pub fn new(class: BranchClass, taken: bool, target: Addr) -> Self {
        debug_assert!(
            taken || class.is_conditional(),
            "unconditional branches must be taken"
        );
        BranchRecord {
            class,
            taken,
            target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for class in BranchClass::ALL {
            assert_eq!(BranchClass::from_code(class.code()), Some(class));
        }
        assert_eq!(BranchClass::from_code(6), None);
        assert_eq!(BranchClass::from_code(255), None);
    }

    #[test]
    fn class_predicates_are_consistent() {
        for class in BranchClass::ALL {
            assert_ne!(class.is_conditional(), class.is_unconditional());
            if class.pops_ras() {
                assert!(class.is_indirect());
            }
            // A branch is either direct (target recoverable at decode) or
            // indirect, never both.
            assert_ne!(class.is_direct(), class.is_indirect());
        }
    }

    #[test]
    fn ras_participation() {
        assert!(BranchClass::Call.pushes_ras());
        assert!(BranchClass::IndirectCall.pushes_ras());
        assert!(BranchClass::Return.pops_ras());
        assert!(!BranchClass::CondDirect.pushes_ras());
        assert!(!BranchClass::UncondDirect.pops_ras());
    }

    #[test]
    fn display_names_are_short_and_unique() {
        let mut names: Vec<String> = BranchClass::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), BranchClass::ALL.len());
    }

    #[test]
    #[should_panic(expected = "unconditional branches must be taken")]
    #[cfg(debug_assertions)]
    fn not_taken_unconditional_is_rejected() {
        let _ = BranchRecord::new(BranchClass::UncondDirect, false, Addr::new(0x100));
    }
}
