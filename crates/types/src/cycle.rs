use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation timestamp, in core clock cycles.
///
/// Newtyped so latencies (plain `u64` deltas) and absolute times cannot be
/// confused. `Cycle + u64 = Cycle`, `Cycle - Cycle = u64` (saturating at 0 is
/// the caller's job; subtracting a later from an earlier cycle panics in
/// debug builds).
///
/// # Examples
///
/// ```
/// use fdip_types::Cycle;
///
/// let start = Cycle::ZERO;
/// let fill = start + 120;
/// assert_eq!(fill - start, 120);
/// assert!(fill.is_after(start));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero, the start of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The far future; used for "never" deadlines.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Creates a cycle from a raw count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Advances to the next cycle.
    pub const fn next(self) -> Self {
        Cycle(self.0 + 1)
    }

    /// Returns `true` if `self` is strictly after `other`.
    pub const fn is_after(self, other: Cycle) -> bool {
        self.0 > other.0
    }

    /// Returns the later of two cycles.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Cycles elapsed since `earlier`, or 0 if `earlier` is in the future.
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(cycle: Cycle) -> Self {
        cycle.0
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, delta: u64) -> Cycle {
        Cycle(self.0 + delta)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, delta: u64) {
        self.0 += delta;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).raw(), 15);
        assert_eq!(c.next().raw(), 11);
        assert_eq!((c + 5) - c, 5);
    }

    #[test]
    fn ordering_helpers() {
        assert!(Cycle::new(2).is_after(Cycle::new(1)));
        assert!(!Cycle::new(1).is_after(Cycle::new(1)));
        assert_eq!(Cycle::new(1).max(Cycle::new(3)), Cycle::new(3));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(5)), 4);
    }

    #[test]
    fn never_is_after_everything_practical() {
        assert!(Cycle::NEVER.is_after(Cycle::new(u64::MAX - 1)));
    }
}
