use std::fmt;

use crate::Addr;

/// Signed branch offset in instructions (`target - pc`, in units of
/// [`INST_BYTES`](crate::INST_BYTES)).
///
/// Positive means a forward branch. Offsets are instruction-granular because
/// the modeled ISA is word-aligned, matching the convention of FDIP-family
/// trace studies.
pub fn offset_insts(pc: Addr, target: Addr) -> i64 {
    pc.insts_to(target)
}

/// Number of magnitude bits required to encode `offset` (sign/direction bit
/// *excluded*, as in the FDIP-X storage accounting).
///
/// An offset of 0 needs 0 bits; ±1 needs 1 bit; ±255..=±128 needs 8 bits.
///
/// # Examples
///
/// ```
/// use fdip_types::offset_bits;
///
/// assert_eq!(offset_bits(0), 0);
/// assert_eq!(offset_bits(1), 1);
/// assert_eq!(offset_bits(-1), 1);
/// assert_eq!(offset_bits(255), 8);
/// assert_eq!(offset_bits(256), 9);
/// ```
pub fn offset_bits(offset: i64) -> u32 {
    let magnitude = offset.unsigned_abs();
    64 - magnitude.leading_zeros()
}

/// Bits required to encode the offset between two addresses.
pub fn offset_from_addrs(pc: Addr, target: Addr) -> u32 {
    offset_bits(offset_insts(pc, target))
}

/// The FDIP-X BTB partition an offset routes to, by encodable width.
///
/// FDIP-X splits one logical BTB into four physical BTBs whose entries store
/// 8-, 13-, 23-, or 46-bit offsets (the 46-bit partition effectively stores
/// full targets). A branch is allocated in the narrowest partition that can
/// encode its offset.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OffsetClass {
    /// Offset fits in 8 magnitude bits.
    W8,
    /// Offset fits in 13 magnitude bits.
    W13,
    /// Offset fits in 23 magnitude bits.
    W23,
    /// Anything wider — stored as (up to) a 46-bit offset / full target.
    W46,
}

impl OffsetClass {
    /// All classes, narrowest first.
    pub const ALL: [OffsetClass; 4] = [
        OffsetClass::W8,
        OffsetClass::W13,
        OffsetClass::W23,
        OffsetClass::W46,
    ];

    /// Offset-field width (magnitude bits) of this partition.
    pub const fn bits(self) -> u32 {
        match self {
            OffsetClass::W8 => 8,
            OffsetClass::W13 => 13,
            OffsetClass::W23 => 23,
            OffsetClass::W46 => 46,
        }
    }

    /// Routes a signed instruction offset to the narrowest partition that
    /// can encode it.
    ///
    /// # Examples
    ///
    /// ```
    /// use fdip_types::OffsetClass;
    ///
    /// assert_eq!(OffsetClass::for_offset(100), OffsetClass::W8);
    /// assert_eq!(OffsetClass::for_offset(-300), OffsetClass::W13);
    /// assert_eq!(OffsetClass::for_offset(1 << 20), OffsetClass::W23);
    /// assert_eq!(OffsetClass::for_offset(1 << 30), OffsetClass::W46);
    /// ```
    pub fn for_offset(offset: i64) -> OffsetClass {
        let bits = offset_bits(offset);
        for class in OffsetClass::ALL {
            if bits <= class.bits() {
                return class;
            }
        }
        OffsetClass::W46
    }

    /// Routes the branch at `pc` targeting `target`.
    pub fn for_branch(pc: Addr, target: Addr) -> OffsetClass {
        OffsetClass::for_offset(offset_insts(pc, target))
    }

    /// Returns `true` if a signed instruction offset is encodable in this
    /// partition's field width.
    pub fn can_encode(self, offset: i64) -> bool {
        offset_bits(offset) <= self.bits()
    }
}

impl fmt::Display for OffsetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_bits_boundaries() {
        assert_eq!(offset_bits(0), 0);
        assert_eq!(offset_bits(1), 1);
        assert_eq!(offset_bits(2), 2);
        assert_eq!(offset_bits(3), 2);
        assert_eq!(offset_bits(4), 3);
        assert_eq!(offset_bits(255), 8);
        assert_eq!(offset_bits(256), 9);
        assert_eq!(offset_bits(-255), 8);
        assert_eq!(offset_bits(-256), 9);
        assert_eq!(offset_bits(i64::MIN), 64);
    }

    #[test]
    fn routing_boundaries() {
        assert_eq!(OffsetClass::for_offset(0), OffsetClass::W8);
        assert_eq!(OffsetClass::for_offset(255), OffsetClass::W8);
        assert_eq!(OffsetClass::for_offset(256), OffsetClass::W13);
        assert_eq!(OffsetClass::for_offset((1 << 13) - 1), OffsetClass::W13);
        assert_eq!(OffsetClass::for_offset(1 << 13), OffsetClass::W23);
        assert_eq!(OffsetClass::for_offset((1 << 23) - 1), OffsetClass::W23);
        assert_eq!(OffsetClass::for_offset(1 << 23), OffsetClass::W46);
    }

    #[test]
    fn routing_is_symmetric_in_sign() {
        for mag in [1i64, 200, 300, 9000, 1 << 22, 1 << 30] {
            assert_eq!(
                OffsetClass::for_offset(mag),
                OffsetClass::for_offset(-mag),
                "magnitude {mag}"
            );
        }
    }

    #[test]
    fn for_branch_uses_instruction_granularity() {
        let pc = Addr::new(0x1000);
        // 255 instructions forward = 1020 bytes: still W8 because offsets are
        // instruction-granular.
        let target = pc.add_insts(255);
        assert_eq!(OffsetClass::for_branch(pc, target), OffsetClass::W8);
        assert_eq!(offset_from_addrs(pc, target), 8);
    }

    #[test]
    fn can_encode_matches_routing() {
        for off in [-300i64, -1, 0, 77, 256, 40000, 1 << 25] {
            let class = OffsetClass::for_offset(off);
            assert!(class.can_encode(off));
            // Every wider class can also encode it.
            for wider in OffsetClass::ALL.iter().filter(|c| c.bits() > class.bits()) {
                assert!(wider.can_encode(off));
            }
        }
    }
}
