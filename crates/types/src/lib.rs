//! Shared vocabulary types for the FDIP reproduction.
//!
//! This crate defines the small, `Copy`-friendly value types that every other
//! crate in the workspace speaks: [`Addr`] (a virtual instruction address),
//! [`Cycle`] (a simulation timestamp), [`BranchClass`]/[`BranchRecord`]
//! (control-flow metadata attached to trace records), [`TraceInstr`] (one
//! retired instruction), and [`FetchBlock`] (the unit of work the
//! branch-prediction unit hands to the fetch engine through the FTQ).
//!
//! All instructions in this model are word (32-bit) aligned, mirroring the
//! ARMv8-style traces used by FDIP follow-up studies; [`INST_BYTES`] is the
//! universal instruction size.
//!
//! # Examples
//!
//! ```
//! use fdip_types::{Addr, INST_BYTES};
//!
//! let pc = Addr::new(0x4000);
//! assert_eq!(pc.next_inst(), Addr::new(0x4000 + INST_BYTES as u64));
//! assert_eq!(pc.block_base(64), Addr::new(0x4000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod addr;
mod branch;
mod cycle;
mod fetch_block;
mod instr;
mod offset;

pub use addr::{Addr, INST_BYTES};
pub use branch::{BranchClass, BranchRecord};
pub use cycle::Cycle;
pub use fetch_block::{BlockEnd, FetchBlock};
pub use instr::TraceInstr;
pub use json::{FromJson, Json, JsonError, ToJson};
pub use offset::{offset_bits, offset_from_addrs, offset_insts, OffsetClass};
