use crate::{Addr, BranchClass};

/// Why a fetch block ended.
///
/// The branch-prediction unit emits [`FetchBlock`]s into the FTQ; each block
/// is a run of sequential instructions, and the terminator tells the fetch
/// and prefetch engines where control flow goes next.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BlockEnd {
    /// The block hit the maximum fetch-block length; the next block is
    /// sequential.
    SizeLimit,
    /// A branch predicted (or known) taken ends the block; the next block
    /// begins at `target`.
    TakenBranch {
        /// Class of the terminating branch, for statistics and RAS handling.
        class: BranchClass,
        /// Predicted target the next block starts at.
        target: Addr,
    },
    /// A conditional branch predicted not-taken ends the block (the BTB
    /// identified a branch, the direction predictor said fall through).
    NotTakenBranch,
    /// The trace ran out of instructions.
    TraceEnd,
}

/// A unit of predicted fetch work: `len` sequential instructions starting at
/// `start`, plus the reason the run ended.
///
/// This is the FTQ entry payload of the 1999 FDIP design: the head of the
/// FTQ feeds the fetch engine, deeper entries feed the prefetch engine.
///
/// # Examples
///
/// ```
/// use fdip_types::{Addr, BlockEnd, FetchBlock};
///
/// let fb = FetchBlock::new(Addr::new(0x1000), 6, BlockEnd::SizeLimit);
/// assert_eq!(fb.end_addr(), Addr::new(0x1000 + 6 * 4));
/// // A 6-instruction block starting mid-line can straddle two 32B lines:
/// let lines: Vec<_> = fb.cache_blocks(32).collect();
/// assert_eq!(lines, vec![Addr::new(0x1000)]);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FetchBlock {
    /// Address of the first instruction in the block.
    pub start: Addr,
    /// Number of sequential instructions in the block (>= 1).
    pub len: u32,
    /// Why the block ended.
    pub end: BlockEnd,
}

impl FetchBlock {
    /// Creates a fetch block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `len == 0`.
    pub fn new(start: Addr, len: u32, end: BlockEnd) -> Self {
        debug_assert!(len > 0, "fetch blocks contain at least one instruction");
        FetchBlock { start, len, end }
    }

    /// Address one past the last instruction in the block.
    pub fn end_addr(&self) -> Addr {
        self.start.add_insts(self.len as u64)
    }

    /// Address of the last instruction in the block.
    pub fn last_pc(&self) -> Addr {
        self.start.add_insts(self.len as u64 - 1)
    }

    /// Returns `true` if `pc` falls inside this block.
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.start && pc < self.end_addr()
    }

    /// The predicted next fetch address after this block.
    pub fn next_fetch_addr(&self) -> Option<Addr> {
        match self.end {
            BlockEnd::SizeLimit | BlockEnd::NotTakenBranch => Some(self.end_addr()),
            BlockEnd::TakenBranch { target, .. } => Some(target),
            BlockEnd::TraceEnd => None,
        }
    }

    /// Iterates over the base addresses of the cache blocks this fetch block
    /// touches, in ascending order. These are FDIP's prefetch candidates.
    pub fn cache_blocks(&self, block_bytes: u64) -> CacheBlocks {
        CacheBlocks {
            next: self.start.block_base(block_bytes),
            last: self.last_pc().block_base(block_bytes),
            block_bytes,
            done: false,
        }
    }
}

/// Iterator over the cache-block base addresses touched by a [`FetchBlock`];
/// created by [`FetchBlock::cache_blocks`].
#[derive(Clone, Debug)]
pub struct CacheBlocks {
    next: Addr,
    last: Addr,
    block_bytes: u64,
    done: bool,
}

impl Iterator for CacheBlocks {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        if self.done {
            return None;
        }
        let current = self.next;
        if current == self.last {
            self.done = true;
        } else {
            self.next = current + self.block_bytes;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_addr_and_contains() {
        let fb = FetchBlock::new(Addr::new(0x100), 4, BlockEnd::SizeLimit);
        assert_eq!(fb.end_addr(), Addr::new(0x110));
        assert_eq!(fb.last_pc(), Addr::new(0x10c));
        assert!(fb.contains(Addr::new(0x100)));
        assert!(fb.contains(Addr::new(0x10c)));
        assert!(!fb.contains(Addr::new(0x110)));
        assert!(!fb.contains(Addr::new(0xfc)));
    }

    #[test]
    fn next_fetch_addr_follows_terminator() {
        let seq = FetchBlock::new(Addr::new(0x100), 4, BlockEnd::SizeLimit);
        assert_eq!(seq.next_fetch_addr(), Some(Addr::new(0x110)));

        let nt = FetchBlock::new(Addr::new(0x100), 4, BlockEnd::NotTakenBranch);
        assert_eq!(nt.next_fetch_addr(), Some(Addr::new(0x110)));

        let taken = FetchBlock::new(
            Addr::new(0x100),
            4,
            BlockEnd::TakenBranch {
                class: BranchClass::UncondDirect,
                target: Addr::new(0x4000),
            },
        );
        assert_eq!(taken.next_fetch_addr(), Some(Addr::new(0x4000)));

        let end = FetchBlock::new(Addr::new(0x100), 1, BlockEnd::TraceEnd);
        assert_eq!(end.next_fetch_addr(), None);
    }

    #[test]
    fn cache_blocks_single_line() {
        let fb = FetchBlock::new(Addr::new(0x1000), 8, BlockEnd::SizeLimit);
        let lines: Vec<_> = fb.cache_blocks(64).collect();
        assert_eq!(lines, vec![Addr::new(0x1000)]);
    }

    #[test]
    fn cache_blocks_straddles_lines() {
        // 8 instructions (32 bytes) starting 8 bytes before a 32B boundary.
        let fb = FetchBlock::new(Addr::new(0x1018), 8, BlockEnd::SizeLimit);
        let lines: Vec<_> = fb.cache_blocks(32).collect();
        assert_eq!(lines, vec![Addr::new(0x1000), Addr::new(0x1020)]);
    }

    #[test]
    fn cache_blocks_spans_many_lines() {
        let fb = FetchBlock::new(Addr::new(0x1000), 64, BlockEnd::SizeLimit);
        let lines: Vec<_> = fb.cache_blocks(64).collect();
        assert_eq!(
            lines,
            vec![
                Addr::new(0x1000),
                Addr::new(0x1040),
                Addr::new(0x1080),
                Addr::new(0x10c0)
            ]
        );
    }
}
