//! A minimal hand-rolled JSON value tree and writer.
//!
//! The workspace's no-external-dependency policy rules out `serde`, so the
//! machine-readable experiment results (`results/*.json`) are emitted
//! through this module instead: build a [`Json`] tree, then render it with
//! [`Json::to_string`] / [`Json::to_string_pretty`]. Types that know how to
//! describe themselves implement [`ToJson`].
//!
//! Only *emission* is implemented — the repo never needs to parse JSON, so
//! there is deliberately no reader here.
//!
//! # Examples
//!
//! ```
//! use fdip_types::json::Json;
//!
//! let doc = Json::obj([
//!     ("id", Json::str("e01")),
//!     ("speedup", Json::num(1.25)),
//!     ("cells", Json::arr([Json::uint(4)])),
//! ]);
//! assert_eq!(
//!     doc.to_string(),
//!     r#"{"id":"e01","speedup":1.25,"cells":[4]}"#
//! );
//! ```

use std::fmt;

/// One JSON value.
///
/// Unsigned 64-bit counters get their own variant ([`Json::UInt`]) so
/// statistics counters round-trip exactly instead of losing precision
/// through an `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer.
    UInt(u64),
    /// A finite float. Non-finite values render as `null` (JSON has no
    /// NaN/Infinity literals).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An exact unsigned-integer value.
    pub fn uint(v: u64) -> Json {
        Json::UInt(v)
    }

    /// A float value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders human-readable JSON indented by two spaces per level.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

/// Renders compact single-line JSON (and provides `.to_string()`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 is the shortest representation that round-trips — exactly
    // what a machine-readable schema wants. Integral floats gain a `.0` so
    // the value stays typed as a float downstream.
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = fmt::Write::write_fmt(out, format_args!("{v:.1}"));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Json`] object from named struct fields: each field renders
/// under its own name via [`ToJson`].
///
/// ```
/// use fdip_types::{json_fields, Json, ToJson};
///
/// struct Counters { hits: u64, misses: u64 }
/// impl ToJson for Counters {
///     fn to_json(&self) -> Json {
///         json_fields!(self, hits, misses)
///     }
/// }
/// assert_eq!(
///     Counters { hits: 3, misses: 1 }.to_json().to_string(),
///     r#"{"hits":3,"misses":1}"#
/// );
/// ```
#[macro_export]
macro_rules! json_fields {
    ($self:expr, $($field:ident),+ $(,)?) => {
        $crate::Json::obj([
            $((stringify!($field), $crate::ToJson::to_json(&$self.$field))),+
        ])
    };
}

/// Conversion into a [`Json`] value tree.
///
/// Implemented by every statistics struct that appears in the persisted
/// `results/*.json` documents; each layer of the workspace implements it
/// for its own types.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::uint(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::num(1.5).to_string(), "1.5");
        assert_eq!(Json::num(2.0).to_string(), "2.0");
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").to_string(),
            r#""a\"b\\c\nd\te\u0001""#
        );
    }

    #[test]
    fn containers_preserve_order() {
        let doc = Json::obj([
            ("z", Json::uint(1)),
            ("a", Json::arr([Json::Null, Json::Bool(false)])),
            ("empty", Json::arr([])),
        ]);
        assert_eq!(doc.to_string(), r#"{"z":1,"a":[null,false],"empty":[]}"#);
    }

    #[test]
    fn pretty_indents() {
        let doc = Json::obj([("k", Json::arr([Json::uint(1), Json::uint(2)]))]);
        assert_eq!(
            doc.to_string_pretty(),
            "{\n  \"k\": [\n    1,\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn blanket_impls() {
        assert_eq!(7u64.to_json(), Json::UInt(7));
        assert_eq!("s".to_json(), Json::str("s"));
        assert_eq!(vec![1u64, 2].to_json().to_string(), "[1,2]");
        assert_eq!(None::<u64>.to_json(), Json::Null);
        assert_eq!(Some(3u64).to_json(), Json::UInt(3));
    }

    #[test]
    fn floats_round_trip_shortest() {
        let v = 0.1 + 0.2;
        let rendered = Json::num(v).to_string();
        assert_eq!(rendered.parse::<f64>().unwrap(), v);
    }
}
