//! A minimal hand-rolled JSON value tree, writer, and reader.
//!
//! The workspace's no-external-dependency policy rules out `serde`, so the
//! machine-readable experiment results (`results/*.json`) are emitted
//! through this module instead: build a [`Json`] tree, then render it with
//! [`Json::to_string`] / [`Json::to_string_pretty`]. Types that know how to
//! describe themselves implement [`ToJson`].
//!
//! Since `fdip-serve` accepts JSON request bodies over the network, the
//! module also has a reader: [`Json::parse`] is a strict recursive-descent
//! parser with depth and size limits suitable for untrusted input, and the
//! `as_*` / [`Json::get`] accessors pick results apart.
//!
//! # Examples
//!
//! ```
//! use fdip_types::json::Json;
//!
//! let doc = Json::obj([
//!     ("id", Json::str("e01")),
//!     ("speedup", Json::num(1.25)),
//!     ("cells", Json::arr([Json::uint(4)])),
//! ]);
//! assert_eq!(
//!     doc.to_string(),
//!     r#"{"id":"e01","speedup":1.25,"cells":[4]}"#
//! );
//! let back = Json::parse(&doc.to_string()).unwrap();
//! assert_eq!(back.get("id").and_then(|v| v.as_str()), Some("e01"));
//! ```

use std::fmt;

/// One JSON value.
///
/// Unsigned 64-bit counters get their own variant ([`Json::UInt`]) so
/// statistics counters round-trip exactly instead of losing precision
/// through an `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer.
    UInt(u64),
    /// A finite float. Non-finite values render as `null` (JSON has no
    /// NaN/Infinity literals).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An exact unsigned-integer value.
    pub fn uint(v: u64) -> Json {
        Json::UInt(v)
    }

    /// A float value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact unsigned-integer content, if this is a non-negative
    /// integer (including an integral float like `3.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && *v == v.trunc() && *v < u64::MAX as f64 => Some(*v as u64),
            _ => None,
        }
    }

    /// The numeric content as a float, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses one JSON document from `input`.
    ///
    /// Strict: rejects trailing garbage, unterminated containers, bad
    /// escapes, and nesting deeper than 64 levels (so untrusted input
    /// cannot blow the stack).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset and description.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Renders human-readable JSON indented by two spaces per level.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

/// Renders compact single-line JSON (and provides `.to_string()`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

/// Error from [`Json::parse`]: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad json at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Deepest container nesting [`Json::parse`] accepts.
const MAX_PARSE_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            what,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so the
                    // bytes are valid UTF-8; copy the whole sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \u + low.
        if (0xd800..0xdc00).contains(&first) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u', "expected low surrogate")?;
                let low = self.hex4()?;
                if !(0xdc00..0xe000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired surrogate"));
        }
        if (0xdc00..0xe000).contains(&first) {
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits"));
        }
        // No leading zeros (except a bare 0).
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(self.err("leading zero"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err("number out of range")),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 is the shortest representation that round-trips — exactly
    // what a machine-readable schema wants. Integral floats gain a `.0` so
    // the value stays typed as a float downstream.
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = fmt::Write::write_fmt(out, format_args!("{v:.1}"));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Json`] object from named struct fields: each field renders
/// under its own name via [`ToJson`].
///
/// ```
/// use fdip_types::{json_fields, Json, ToJson};
///
/// struct Counters { hits: u64, misses: u64 }
/// impl ToJson for Counters {
///     fn to_json(&self) -> Json {
///         json_fields!(self, hits, misses)
///     }
/// }
/// assert_eq!(
///     Counters { hits: 3, misses: 1 }.to_json().to_string(),
///     r#"{"hits":3,"misses":1}"#
/// );
/// ```
#[macro_export]
macro_rules! json_fields {
    ($self:expr, $($field:ident),+ $(,)?) => {
        $crate::Json::obj([
            $((stringify!($field), $crate::ToJson::to_json(&$self.$field))),+
        ])
    };
}

/// Reads a [`Json`] object back into named struct fields: the inverse of
/// [`json_fields!`]. Evaluates to `Option<T>`; any missing or mistyped
/// field yields `None`.
///
/// A trailing `..` fills every *unlisted* field from `Default` — for
/// struct fields that are deliberately kept out of the persisted schema
/// (in-memory diagnostics) while old documents stay parseable.
///
/// ```
/// use fdip_types::{from_json_fields, FromJson, Json};
///
/// #[derive(PartialEq, Debug)]
/// struct Counters { hits: u64, misses: u64 }
/// impl FromJson for Counters {
///     fn from_json(v: &Json) -> Option<Counters> {
///         from_json_fields!(v, Counters { hits, misses })
///     }
/// }
/// let doc = Json::parse(r#"{"hits":3,"misses":1}"#).unwrap();
/// assert_eq!(Counters::from_json(&doc), Some(Counters { hits: 3, misses: 1 }));
/// assert_eq!(Counters::from_json(&Json::parse(r#"{"hits":3}"#).unwrap()), None);
///
/// #[derive(Default, PartialEq, Debug)]
/// struct WithScratch { hits: u64, scratch: u64 }
/// impl FromJson for WithScratch {
///     fn from_json(v: &Json) -> Option<WithScratch> {
///         from_json_fields!(v, WithScratch { hits, .. })
///     }
/// }
/// let doc = Json::parse(r#"{"hits":3}"#).unwrap();
/// assert_eq!(WithScratch::from_json(&doc), Some(WithScratch { hits: 3, scratch: 0 }));
/// ```
#[macro_export]
macro_rules! from_json_fields {
    ($value:expr, $ty:ident { $($field:ident),+ , .. }) => {{
        let value: &$crate::Json = $value;
        (|| {
            Some($ty {
                $($field: $crate::FromJson::from_json(value.get(stringify!($field))?)?,)+
                ..<$ty as ::core::default::Default>::default()
            })
        })()
    }};
    ($value:expr, $ty:ident { $($field:ident),+ $(,)? }) => {{
        let value: &$crate::Json = $value;
        (|| {
            Some($ty {
                $($field: $crate::FromJson::from_json(value.get(stringify!($field))?)?,)+
            })
        })()
    }};
}

/// Conversion into a [`Json`] value tree.
///
/// Implemented by every statistics struct that appears in the persisted
/// `results/*.json` documents; each layer of the workspace implements it
/// for its own types.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion back out of a [`Json`] value tree.
///
/// The inverse of [`ToJson`], used where persisted documents (the
/// experiment journal, `results/*.json`) are read back in. Returns `None`
/// on any shape mismatch so callers at trust boundaries can skip bad
/// records instead of panicking.
pub trait FromJson: Sized {
    /// Reads the value, or `None` if the JSON has the wrong shape.
    fn from_json(value: &Json) -> Option<Self>;
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> Option<u64> {
        value.as_u64()
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Option<f64> {
        value.as_f64()
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Option<bool> {
        value.as_bool()
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Option<String> {
        value.as_str().map(str::to_string)
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Option<Vec<T>> {
        value.as_array()?.iter().map(T::from_json).collect()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::uint(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::num(1.5).to_string(), "1.5");
        assert_eq!(Json::num(2.0).to_string(), "2.0");
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").to_string(),
            r#""a\"b\\c\nd\te\u0001""#
        );
    }

    #[test]
    fn containers_preserve_order() {
        let doc = Json::obj([
            ("z", Json::uint(1)),
            ("a", Json::arr([Json::Null, Json::Bool(false)])),
            ("empty", Json::arr([])),
        ]);
        assert_eq!(doc.to_string(), r#"{"z":1,"a":[null,false],"empty":[]}"#);
    }

    #[test]
    fn pretty_indents() {
        let doc = Json::obj([("k", Json::arr([Json::uint(1), Json::uint(2)]))]);
        assert_eq!(
            doc.to_string_pretty(),
            "{\n  \"k\": [\n    1,\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn blanket_impls() {
        assert_eq!(7u64.to_json(), Json::UInt(7));
        assert_eq!("s".to_json(), Json::str("s"));
        assert_eq!(vec![1u64, 2].to_json().to_string(), "[1,2]");
        assert_eq!(None::<u64>.to_json(), Json::Null);
        assert_eq!(Some(3u64).to_json(), Json::UInt(3));
    }

    #[test]
    fn floats_round_trip_shortest() {
        let v = 0.1 + 0.2;
        let rendered = Json::num(v).to_string();
        assert_eq!(rendered.parse::<f64>().unwrap(), v);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(Json::parse("1.5e2").unwrap(), Json::Num(150.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_containers_and_nesting() {
        let doc = Json::parse(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("d"));
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap(),
            Json::str("a\"b\\c\ndAé")
        );
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::str("😀"));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::str("héllo"));
    }

    #[test]
    fn emit_parse_round_trip() {
        let doc = Json::obj([
            ("id", Json::str("e01")),
            ("speedup", Json::num(1.25)),
            ("count", Json::uint(u64::MAX)),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            ("rows", Json::arr([Json::str("a\nb"), Json::num(-0.5)])),
        ]);
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1 2]",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "+1",
            "nul",
            "truex",
            "{} {}",
            "\"\\q\"",
            "\"\\u12g4\"",
            "\"\\ud800\"",
            "[1],",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_depth_limit_protects_the_stack() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.what, "nesting too deep");
        let ok = "[".repeat(30) + "1" + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn from_json_round_trips_struct_fields() {
        #[derive(PartialEq, Debug)]
        struct Counters {
            hits: u64,
            rate: f64,
            name: String,
        }
        impl ToJson for Counters {
            fn to_json(&self) -> Json {
                json_fields!(self, hits, rate, name)
            }
        }
        impl FromJson for Counters {
            fn from_json(v: &Json) -> Option<Counters> {
                from_json_fields!(v, Counters { hits, rate, name })
            }
        }
        let c = Counters {
            hits: 7,
            rate: 0.5,
            name: "x".into(),
        };
        let doc = Json::parse(&c.to_json().to_string()).unwrap();
        assert_eq!(Counters::from_json(&doc), Some(c));
        // Missing or mistyped fields fail as a whole, not partially.
        assert_eq!(
            Counters::from_json(&Json::parse(r#"{"hits":7,"rate":0.5}"#).unwrap()),
            None
        );
        assert_eq!(
            Counters::from_json(&Json::parse(r#"{"hits":"7","rate":0.5,"name":"x"}"#).unwrap()),
            None
        );
        assert_eq!(Counters::from_json(&Json::Null), None);
    }

    #[test]
    fn from_json_scalars_and_vecs() {
        assert_eq!(u64::from_json(&Json::uint(3)), Some(3));
        assert_eq!(u64::from_json(&Json::str("3")), None);
        assert_eq!(f64::from_json(&Json::uint(3)), Some(3.0));
        assert_eq!(bool::from_json(&Json::Bool(true)), Some(true));
        assert_eq!(String::from_json(&Json::str("s")), Some("s".to_string()));
        assert_eq!(
            Vec::<u64>::from_json(&Json::arr([Json::uint(1), Json::uint(2)])),
            Some(vec![1, 2])
        );
        assert_eq!(
            Vec::<u64>::from_json(&Json::arr([Json::uint(1), Json::Null])),
            None
        );
    }

    #[test]
    fn accessors_pick_values_apart() {
        let doc = Json::parse(r#"{"n": 3.0, "f": 1.5, "b": true}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("f").and_then(Json::as_u64), None);
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert!(doc.as_object().is_some());
        assert!(doc.as_array().is_none());
        assert_eq!(Json::Null.get("x"), None);
    }
}
