use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of every instruction in bytes.
///
/// The model assumes a fixed-width, word-aligned ISA (ARMv8-like), matching
/// the traces used by FDIP-family studies. Branch offsets are therefore
/// measured in *instructions*, not bytes.
pub const INST_BYTES: u32 = 4;

/// A virtual instruction or data address.
///
/// `Addr` is a transparent newtype over `u64` that keeps address arithmetic
/// honest: cache-block math, instruction stepping, and alignment live here
/// instead of being re-derived (differently) at each call site.
///
/// # Examples
///
/// ```
/// use fdip_types::Addr;
///
/// let a = Addr::new(0x1044);
/// assert_eq!(a.block_base(64), Addr::new(0x1040));
/// assert_eq!(a.block_index(64), 0x1044 / 64);
/// assert_eq!(a.inst_index(), 0x1044 / 4);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The zero address. Used as a sentinel for "no target" in raw encodings.
    pub const ZERO: Addr = Addr(0);

    /// Creates an address from a raw virtual address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Creates an address from an instruction index (`index * INST_BYTES`).
    pub const fn from_inst_index(index: u64) -> Self {
        Addr(index * INST_BYTES as u64)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the index of this instruction in the word-aligned stream.
    pub const fn inst_index(self) -> u64 {
        self.0 / INST_BYTES as u64
    }

    /// Returns the address of the next sequential instruction.
    pub const fn next_inst(self) -> Self {
        Addr(self.0 + INST_BYTES as u64)
    }

    /// Returns the address advanced by `n` instructions.
    pub const fn add_insts(self, n: u64) -> Self {
        Addr(self.0 + n * INST_BYTES as u64)
    }

    /// Returns the base address of the cache block containing this address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_bytes` is not a power of two.
    pub fn block_base(self, block_bytes: u64) -> Self {
        debug_assert!(block_bytes.is_power_of_two());
        Addr(self.0 & !(block_bytes - 1))
    }

    /// Returns the global index of the cache block containing this address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_bytes` is not a power of two.
    pub fn block_index(self, block_bytes: u64) -> u64 {
        debug_assert!(block_bytes.is_power_of_two());
        self.0 / block_bytes
    }

    /// Returns the byte offset of this address within its cache block.
    pub fn block_offset(self, block_bytes: u64) -> u64 {
        debug_assert!(block_bytes.is_power_of_two());
        self.0 & (block_bytes - 1)
    }

    /// Returns `true` if this address is word (instruction) aligned.
    pub const fn is_inst_aligned(self) -> bool {
        self.0.is_multiple_of(INST_BYTES as u64)
    }

    /// Signed distance to `other` in instructions (`other - self`).
    ///
    /// This is the branch-offset convention used throughout the workspace:
    /// positive offsets are forward branches.
    pub fn insts_to(self, other: Addr) -> i64 {
        (other.0 as i64 - self.0 as i64) / INST_BYTES as i64
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, bytes: u64) {
        self.0 += bytes;
    }
}

impl Sub<Addr> for Addr {
    type Output = i64;

    fn sub(self, rhs: Addr) -> i64 {
        self.0 as i64 - rhs.0 as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_base_masks_low_bits() {
        assert_eq!(Addr::new(0x1044).block_base(64), Addr::new(0x1040));
        assert_eq!(Addr::new(0x1000).block_base(64), Addr::new(0x1000));
        assert_eq!(Addr::new(0x103f).block_base(64), Addr::new(0x1000));
    }

    #[test]
    fn block_index_and_offset_partition_the_address() {
        let a = Addr::new(0xdead_beef & !3);
        let blk = 64;
        assert_eq!(a.block_index(blk) * blk + a.block_offset(blk), a.raw());
    }

    #[test]
    fn inst_stepping() {
        let a = Addr::new(0x100);
        assert_eq!(a.next_inst().raw(), 0x104);
        assert_eq!(a.add_insts(4).raw(), 0x110);
        assert_eq!(a.insts_to(a.add_insts(4)), 4);
        assert_eq!(a.add_insts(4).insts_to(a), -4);
    }

    #[test]
    fn from_inst_index_roundtrips() {
        for idx in [0u64, 1, 77, 1 << 30] {
            assert_eq!(Addr::from_inst_index(idx).inst_index(), idx);
        }
    }

    #[test]
    fn alignment_check() {
        assert!(Addr::new(0x104).is_inst_aligned());
        assert!(!Addr::new(0x105).is_inst_aligned());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{:X}", Addr::new(255)), "FF");
    }

    #[test]
    fn subtraction_is_signed_bytes() {
        assert_eq!(Addr::new(0x10) - Addr::new(0x20), -0x10);
        assert_eq!(Addr::new(0x20) - Addr::new(0x10), 0x10);
    }
}
