use crate::{Addr, BranchRecord};

/// One retired instruction, as stored in an execution trace.
///
/// Non-branch instructions carry only their PC; branches additionally carry
/// the ground-truth [`BranchRecord`]. The next-PC of a record is implied:
/// sequential unless the instruction is a taken branch.
///
/// # Examples
///
/// ```
/// use fdip_types::{Addr, BranchClass, BranchRecord, TraceInstr};
///
/// let nop = TraceInstr::plain(Addr::new(0x100));
/// assert_eq!(nop.next_pc(), Addr::new(0x104));
///
/// let b = TraceInstr::branch(
///     Addr::new(0x104),
///     BranchRecord::new(BranchClass::UncondDirect, true, Addr::new(0x200)),
/// );
/// assert_eq!(b.next_pc(), Addr::new(0x200));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TraceInstr {
    /// Program counter of this instruction.
    pub pc: Addr,
    /// Branch metadata, if this instruction is a branch.
    pub branch: Option<BranchRecord>,
}

impl TraceInstr {
    /// Creates a non-branch instruction record.
    pub fn plain(pc: Addr) -> Self {
        TraceInstr { pc, branch: None }
    }

    /// Creates a branch instruction record.
    pub fn branch(pc: Addr, record: BranchRecord) -> Self {
        TraceInstr {
            pc,
            branch: Some(record),
        }
    }

    /// Returns `true` if this instruction is a branch.
    pub fn is_branch(&self) -> bool {
        self.branch.is_some()
    }

    /// Returns `true` if this instruction is a taken branch.
    pub fn is_taken_branch(&self) -> bool {
        self.branch.is_some_and(|b| b.taken)
    }

    /// The architecturally-correct next PC after this instruction.
    pub fn next_pc(&self) -> Addr {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.pc.next_inst(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchClass;

    #[test]
    fn plain_instruction_falls_through() {
        let i = TraceInstr::plain(Addr::new(0x40));
        assert!(!i.is_branch());
        assert!(!i.is_taken_branch());
        assert_eq!(i.next_pc(), Addr::new(0x44));
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let i = TraceInstr::branch(
            Addr::new(0x40),
            BranchRecord::new(BranchClass::CondDirect, false, Addr::new(0x100)),
        );
        assert!(i.is_branch());
        assert!(!i.is_taken_branch());
        assert_eq!(i.next_pc(), Addr::new(0x44));
    }

    #[test]
    fn taken_branch_redirects() {
        let i = TraceInstr::branch(
            Addr::new(0x40),
            BranchRecord::new(BranchClass::Call, true, Addr::new(0x1000)),
        );
        assert!(i.is_taken_branch());
        assert_eq!(i.next_pc(), Addr::new(0x1000));
    }
}
