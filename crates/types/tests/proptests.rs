//! Property tests for the vocabulary types: address arithmetic laws,
//! offset encoding inverses, and fetch-block geometry.

use fdip_types::{offset_bits, offset_insts, Addr, BlockEnd, FetchBlock, OffsetClass, INST_BYTES};
use proptest::prelude::*;

proptest! {
    #[test]
    fn block_decomposition_is_a_bijection(raw in 0u64..1 << 46, shift in 5u32..8) {
        let block_bytes = 1u64 << shift;
        let addr = Addr::new(raw & !3);
        let base = addr.block_base(block_bytes);
        prop_assert!(base <= addr);
        prop_assert!((addr - base) < block_bytes as i64);
        prop_assert_eq!(
            base.raw(),
            addr.block_index(block_bytes) * block_bytes
        );
        prop_assert_eq!(
            addr.block_index(block_bytes) * block_bytes + addr.block_offset(block_bytes),
            addr.raw()
        );
    }

    #[test]
    fn insts_to_is_antisymmetric(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let (a, b) = (Addr::from_inst_index(a), Addr::from_inst_index(b));
        prop_assert_eq!(a.insts_to(b), -b.insts_to(a));
        prop_assert_eq!(a.add_insts(a.insts_to(b).unsigned_abs()).raw().max(a.raw()),
            if b >= a { b.raw() } else { a.add_insts((a - b).unsigned_abs() / INST_BYTES as u64).raw() });
    }

    #[test]
    fn offset_bits_is_monotone_in_magnitude(m in 0i64..1 << 45) {
        prop_assert!(offset_bits(m) <= offset_bits(m + 1));
        prop_assert_eq!(offset_bits(m), offset_bits(-m));
    }

    #[test]
    fn offset_class_routing_is_tight(off in -(1i64 << 45)..(1i64 << 45)) {
        let class = OffsetClass::for_offset(off);
        prop_assert!(class.can_encode(off));
        // No *narrower* class can encode it.
        for narrower in OffsetClass::ALL.iter().filter(|c| c.bits() < class.bits()) {
            prop_assert!(!narrower.can_encode(off), "{off} fits {narrower}");
        }
    }

    #[test]
    fn offset_from_pc_and_target_reconstructs_target(
        pc in 0u64..1 << 40,
        target in 0u64..1 << 40,
    ) {
        let pc = Addr::from_inst_index(pc);
        let target = Addr::from_inst_index(target);
        let off = offset_insts(pc, target);
        let rebuilt = if off >= 0 {
            pc.add_insts(off as u64)
        } else {
            Addr::new(pc.raw() - off.unsigned_abs() * INST_BYTES as u64)
        };
        prop_assert_eq!(rebuilt, target);
    }

    #[test]
    fn fetch_block_cache_lines_cover_every_instruction(
        start in 0u64..1 << 30,
        len in 1u32..40,
        shift in 5u32..8,
    ) {
        let block_bytes = 1u64 << shift;
        let fb = FetchBlock::new(Addr::from_inst_index(start), len, BlockEnd::SizeLimit);
        let lines: Vec<_> = fb.cache_blocks(block_bytes).collect();
        // Lines are ascending, unique, and cover first & last instruction.
        prop_assert!(lines.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(lines[0], fb.start.block_base(block_bytes));
        prop_assert_eq!(*lines.last().unwrap(), fb.last_pc().block_base(block_bytes));
        // Every instruction's line is in the list.
        for k in 0..len as u64 {
            let line = fb.start.add_insts(k).block_base(block_bytes);
            prop_assert!(lines.contains(&line));
        }
        // Count matches the span.
        let expected =
            (fb.last_pc().block_index(block_bytes) - fb.start.block_index(block_bytes)) + 1;
        prop_assert_eq!(lines.len() as u64, expected);
    }
}
