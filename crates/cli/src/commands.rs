//! The `fdip` subcommands.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use fdip::{BtbVariant, CpfMode, FrontendConfig, PredictorKind, PrefetcherKind, Simulator};
use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_trace::{read_binary, read_text, write_binary_compact, write_text, Trace, TraceStats};

use crate::args::Args;

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage: fdip <command> [options]

commands:
  gen      --profile client|server|microloop|jumpy [--seed N] [--len N]
           --out FILE [--format binary|text]     generate a workload trace
  stats    FILE                                  characterize a trace
  run      FILE [--prefetcher none|nlp|stream|fdip|shotgun|pif] [--cpf none|enqueue|remove|both]
           [--btb conventional:N|bb:N|fdipx:N|ideal] [--predictor bimodal|gshare|hybrid|local|tage|perfect]
           [--ftq N] [--l1-kb N] [--l2-latency N] [--mem-latency N] [--warmup N]
                                                 simulate a trace
  compare  FILE                                  run every prefetcher on a trace
  slice    IN OUT --start N --len N              cut a window out of a trace
  convert  IN OUT                                convert between binary (.fdt) and text (.txt)
  tables   [EXPERIMENT]                          print the BTB storage tables (Tables I & II),
                                                 or any experiment from the registry by id
                                                 (e.g. e01, x4) at quick scale

trace format is inferred from the file extension: `.txt` is text,
anything else is the binary format.";

type CliResult = Result<(), Box<dyn Error>>;

/// Dispatches `argv` to a subcommand.
///
/// # Errors
///
/// Returns a human-readable error for unknown commands, bad flags, bad
/// files, or malformed traces.
pub fn dispatch(argv: &[String]) -> CliResult {
    let Some((command, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    let args = Args::parse(rest)?;
    match command.as_str() {
        "gen" => cmd_gen(&args),
        "stats" => cmd_stats(&args),
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "slice" => cmd_slice(&args),
        "convert" => cmd_convert(&args),
        "tables" => cmd_tables(&args),
        other => Err(format!("unknown command {other:?}").into()),
    }
}

fn parse_profile(raw: &str) -> Result<Profile, Box<dyn Error>> {
    Profile::ALL
        .into_iter()
        .find(|p| p.name() == raw)
        .ok_or_else(|| format!("unknown profile {raw:?} (client|server|microloop|jumpy)").into())
}

fn load_trace(path: &str) -> Result<Trace, Box<dyn Error>> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let reader = BufReader::new(file);
    let trace = if Path::new(path).extension().is_some_and(|e| e == "txt") {
        read_text(reader)?
    } else {
        read_binary(reader)?
    };
    trace.validate()?;
    Ok(trace)
}

fn save_trace(path: &str, trace: &Trace, force_text: bool) -> Result<(), Box<dyn Error>> {
    let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let writer = BufWriter::new(file);
    if force_text || Path::new(path).extension().is_some_and(|e| e == "txt") {
        write_text(writer, trace)?;
    } else {
        write_binary_compact(writer, trace)?;
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> CliResult {
    let profile = parse_profile(args.require("profile")?)?;
    let seed = args.get_or("seed", 0u64, "an integer seed")?;
    let len = args.get_or("len", 1_000_000usize, "an instruction count")?;
    let out = args.require("out")?.to_string();
    let format = args.get("format").unwrap_or("binary").to_string();
    args.expect_positional(0, "gen takes no positional arguments")?;
    args.reject_unknown()?;

    let trace = GeneratorConfig::profile(profile)
        .seed(seed)
        .target_len(len)
        .generate();
    save_trace(&out, &trace, format == "text")?;
    let stats = TraceStats::measure(&trace);
    println!(
        "wrote {} ({} instructions, {:.0} KB footprint, {} static taken branches)",
        out,
        trace.len(),
        stats.footprint_bytes as f64 / 1024.0,
        stats.static_taken_branches,
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> CliResult {
    let files = args.expect_positional(1, "stats takes exactly one trace file")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    let s = TraceStats::measure(&trace);
    println!("trace:                {}", trace.name());
    println!("instructions:         {}", s.len);
    println!(
        "instruction footprint: {:.1} KB ({} x 64B blocks)",
        s.footprint_bytes as f64 / 1024.0,
        s.footprint_blocks_64b
    );
    println!(
        "static branches:      {} ({} taken at least once)",
        s.static_branches, s.static_taken_branches
    );
    println!("branches per KI:      {:.1}", s.branch_pki());
    println!("cond taken ratio:     {:.3}", s.mix.cond_taken_ratio());
    println!("dynamic branch mix:");
    for class in fdip_types::BranchClass::ALL {
        let count = s.mix.count(class);
        if count > 0 {
            println!(
                "  {class:<6} {:>9}  ({:.1}%)",
                count,
                count as f64 * 100.0 / s.mix.total() as f64
            );
        }
    }
    println!(
        "taken-branch offsets: <=8b {:.1}%  9-13b {:.1}%  14-23b {:.1}%  >23b {:.1}%",
        s.offsets.cumulative_fraction(8) * 100.0,
        (s.offsets.cumulative_fraction(13) - s.offsets.cumulative_fraction(8)) * 100.0,
        (s.offsets.cumulative_fraction(23) - s.offsets.cumulative_fraction(13)) * 100.0,
        (1.0 - s.offsets.cumulative_fraction(23)) * 100.0,
    );
    Ok(())
}

fn parse_btb(raw: &str) -> Result<BtbVariant, Box<dyn Error>> {
    if raw == "ideal" {
        return Ok(BtbVariant::Ideal);
    }
    let (kind, entries) = raw
        .split_once(':')
        .ok_or_else(|| format!("btb spec {raw:?} should be kind:entries or `ideal`"))?;
    let entries: usize = entries
        .parse()
        .map_err(|_| format!("bad entry count in {raw:?}"))?;
    match kind {
        "conventional" => Ok(BtbVariant::conventional(entries)),
        "bb" => Ok(BtbVariant::basic_block(entries)),
        "fdipx" => Ok(BtbVariant::partitioned(entries)),
        _ => Err(format!("unknown btb kind {kind:?} (conventional|bb|fdipx|ideal)").into()),
    }
}

fn parse_cpf(raw: &str) -> Result<CpfMode, Box<dyn Error>> {
    match raw {
        "none" => Ok(CpfMode::None),
        "enqueue" => Ok(CpfMode::Enqueue),
        "remove" => Ok(CpfMode::Remove),
        "both" => Ok(CpfMode::Both),
        _ => Err(format!("unknown cpf mode {raw:?}").into()),
    }
}

fn parse_predictor(raw: &str) -> Result<PredictorKind, Box<dyn Error>> {
    match raw {
        "bimodal" => Ok(PredictorKind::Bimodal { log2_entries: 15 }),
        "gshare" => Ok(PredictorKind::Gshare {
            log2_entries: 15,
            history_bits: 12,
        }),
        "hybrid" => Ok(PredictorKind::Hybrid {
            log2_entries: 15,
            history_bits: 12,
        }),
        "local" => Ok(PredictorKind::TwoLevelLocal {
            log2_branches: 13,
            history_bits: 12,
        }),
        "tage" => Ok(PredictorKind::Tage {
            log2_base: 14,
            log2_tagged: 12,
            tables: 5,
        }),
        "perfect" => Ok(PredictorKind::Perfect),
        _ => Err(format!("unknown predictor {raw:?}").into()),
    }
}

fn parse_prefetcher(raw: &str, cpf: CpfMode) -> Result<PrefetcherKind, Box<dyn Error>> {
    match raw {
        "none" => Ok(PrefetcherKind::None),
        "nlp" => Ok(PrefetcherKind::NextLine),
        "stream" => Ok(PrefetcherKind::StreamBuffers(Default::default())),
        "fdip" => Ok(PrefetcherKind::fdip_with_cpf(cpf)),
        "shotgun" => Ok(PrefetcherKind::shotgun()),
        "pif" => Ok(PrefetcherKind::Pif(Default::default())),
        _ => Err(format!("unknown prefetcher {raw:?}").into()),
    }
}

fn config_from_args(args: &Args) -> Result<FrontendConfig, Box<dyn Error>> {
    let cpf = parse_cpf(args.get("cpf").unwrap_or("none"))?;
    let mut config = FrontendConfig {
        prefetcher: parse_prefetcher(args.get("prefetcher").unwrap_or("none"), cpf)?,
        ..FrontendConfig::default()
    };
    if let Some(raw) = args.get("btb") {
        config.btb = parse_btb(raw)?;
    }
    if let Some(raw) = args.get("predictor") {
        config.predictor = parse_predictor(raw)?;
    }
    config.ftq_entries = args.get_or("ftq", config.ftq_entries, "a queue depth")?;
    let l1_kb: u64 = args.get_or("l1-kb", 16, "a size in KB")?;
    config.mem.l1 = fdip_mem::CacheGeometry::from_capacity(l1_kb * 1024, 2, 64);
    config.mem.l2_latency = args.get_or("l2-latency", config.mem.l2_latency, "cycles")?;
    config.mem.mem_latency = args.get_or("mem-latency", config.mem.mem_latency, "cycles")?;
    Ok(config)
}

fn cmd_run(args: &Args) -> CliResult {
    let files = args.expect_positional(1, "run takes exactly one trace file")?;
    let config = config_from_args(args)?;
    let warmup = args.get_or("warmup", 0u64, "an instruction count")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    let storage = Simulator::new(&config, &trace).storage_report();
    let stats = if warmup > 0 {
        Simulator::new(&config, &trace).run_with_warmup(warmup)
    } else {
        Simulator::run_trace(&config, &trace)
    };
    println!(
        "front-end storage:  {:.2} KB (btb {:.2} + predictor {:.2} + ras {:.2} + pbuf {:.2})",
        storage.total_kb(),
        storage.btb_bits as f64 / 8192.0,
        storage.predictor_bits as f64 / 8192.0,
        storage.ras_bits as f64 / 8192.0,
        storage.prefetch_buffer_bits as f64 / 8192.0,
    );
    println!("prefetcher:         {}", config.prefetcher.name());
    println!("instructions:       {}", stats.instructions);
    println!("cycles:             {}", stats.cycles);
    println!("IPC:                {:.3}", stats.ipc());
    println!("L1-I MPKI:          {:.2}", stats.l1i_mpki());
    println!(
        "exec redirects/KI:  {:.2}",
        stats.branches.mpki(stats.instructions)
    );
    println!("BTB hit ratio:      {:.3}", stats.branches.btb_hit_ratio());
    println!(
        "bus utilization:    {:.1}%",
        stats.bus_utilization() * 100.0
    );
    if stats.mem.prefetches_issued > 0 {
        println!(
            "prefetches:         {} issued, {} useful ({:.1}%), {} late",
            stats.mem.prefetches_issued,
            stats.mem.useful_prefetches,
            stats.mem.prefetch_accuracy() * 100.0,
            stats.mem.late_prefetches,
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> CliResult {
    let files = args.expect_positional(1, "compare takes exactly one trace file")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    let base = Simulator::run_trace(&FrontendConfig::default(), &trace);
    println!(
        "baseline: IPC {:.3}, L1-I MPKI {:.2}\n",
        base.ipc(),
        base.l1i_mpki()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "prefetcher", "speedup", "coverage", "bus"
    );
    let kinds = [
        ("nlp", PrefetcherKind::NextLine),
        ("stream", PrefetcherKind::StreamBuffers(Default::default())),
        ("fdip", PrefetcherKind::fdip()),
        ("fdip+cpf", PrefetcherKind::fdip_with_cpf(CpfMode::Remove)),
        ("pif", PrefetcherKind::Pif(Default::default())),
    ];
    for (name, kind) in kinds {
        let stats = Simulator::run_trace(&FrontendConfig::default().with_prefetcher(kind), &trace);
        println!(
            "{:<12} {:>7.3}x {:>9.1}% {:>9.1}%",
            name,
            stats.speedup_over(&base),
            stats.miss_coverage_vs(&base) * 100.0,
            stats.bus_utilization() * 100.0,
        );
    }
    Ok(())
}

fn cmd_slice(args: &Args) -> CliResult {
    let files = args.expect_positional(2, "slice takes IN and OUT files")?;
    let start = args.get_or("start", 0usize, "an instruction index")?;
    let len = args
        .require("len")?
        .parse::<usize>()
        .map_err(|_| "bad --len")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    if start > trace.len() {
        return Err(format!("--start {start} past trace end ({})", trace.len()).into());
    }
    let window = trace.window(start, len);
    save_trace(&files[1], &window, false)?;
    println!("wrote {} ({} instructions)", files[1], window.len());
    Ok(())
}

fn cmd_convert(args: &Args) -> CliResult {
    let files = args.expect_positional(2, "convert takes IN and OUT files")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    save_trace(&files[1], &trace, false)?;
    println!("wrote {} ({} instructions)", files[1], trace.len());
    Ok(())
}

fn cmd_tables(args: &Args) -> CliResult {
    args.reject_unknown()?;
    use fdip_sim::experiments;
    use fdip_sim::harness::Harness;
    use fdip_sim::Scale;
    let harness = Harness::global();
    if let Some(id) = args.positional().first() {
        let exp = experiments::find(id).ok_or_else(|| {
            let ids: Vec<&str> = experiments::all().iter().map(|e| e.id()).collect();
            format!("unknown experiment {id:?} (one of: {})", ids.join(", "))
        })?;
        print!("{}", exp.run(harness, Scale::quick()).to_text());
        return Ok(());
    }
    for id in ["x2", "x3"] {
        let exp = experiments::find(id).expect("storage tables are registered");
        print!("{}", exp.run(harness, Scale::quick()).to_text());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(dispatch(&argv("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn btb_specs_parse() {
        assert!(matches!(parse_btb("ideal"), Ok(BtbVariant::Ideal)));
        assert!(matches!(
            parse_btb("conventional:2048"),
            Ok(BtbVariant::Conventional(_))
        ));
        assert!(matches!(
            parse_btb("bb:1024"),
            Ok(BtbVariant::BasicBlock(_))
        ));
        assert!(matches!(
            parse_btb("fdipx:1024"),
            Ok(BtbVariant::Partitioned(_))
        ));
        assert!(parse_btb("bogus:1").is_err());
        assert!(parse_btb("conventional").is_err());
        assert!(parse_btb("conventional:x").is_err());
    }

    #[test]
    fn prefetcher_and_cpf_parse() {
        for raw in ["none", "nlp", "stream", "fdip", "shotgun", "pif"] {
            assert!(parse_prefetcher(raw, CpfMode::None).is_ok(), "{raw}");
        }
        assert!(parse_prefetcher("bogus", CpfMode::None).is_err());
        for raw in ["none", "enqueue", "remove", "both"] {
            assert!(parse_cpf(raw).is_ok(), "{raw}");
        }
        assert!(parse_cpf("bogus").is_err());
    }

    #[test]
    fn predictor_specs_parse() {
        for raw in ["bimodal", "gshare", "hybrid", "local", "tage", "perfect"] {
            assert!(parse_predictor(raw).is_ok(), "{raw}");
        }
        assert!(parse_predictor("oracle9000").is_err());
    }

    #[test]
    fn config_from_args_applies_overrides() {
        let args = Args::parse(&argv(
            "--prefetcher fdip --cpf remove --btb fdipx:1024 --ftq 8 --l1-kb 32 --mem-latency 200",
        ))
        .unwrap();
        let config = config_from_args(&args).unwrap();
        assert_eq!(config.prefetcher.name(), "fdip+rcpf");
        assert!(matches!(config.btb, BtbVariant::Partitioned(_)));
        assert_eq!(config.ftq_entries, 8);
        assert_eq!(config.mem.l1.capacity_bytes(), 32 * 1024);
        assert_eq!(config.mem.mem_latency, 200);
    }

    #[test]
    fn gen_stats_run_convert_roundtrip() {
        let dir = std::env::temp_dir().join("fdip-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("t.fdt");
        let txt = dir.join("t.txt");
        let bin_s = bin.to_str().unwrap().to_string();
        let txt_s = txt.to_str().unwrap().to_string();

        dispatch(&[
            "gen".into(),
            "--profile".into(),
            "microloop".into(),
            "--seed".into(),
            "3".into(),
            "--len".into(),
            "5000".into(),
            "--out".into(),
            bin_s.clone(),
        ])
        .unwrap();
        dispatch(&["stats".into(), bin_s.clone()]).unwrap();
        dispatch(&["convert".into(), bin_s.clone(), txt_s.clone()]).unwrap();
        dispatch(&[
            "run".into(),
            txt_s.clone(),
            "--prefetcher".into(),
            "fdip".into(),
        ])
        .unwrap();
        // Binary and text round-trips agree.
        let a = load_trace(&bin_s).unwrap();
        let b = load_trace(&txt_s).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slice_extracts_a_window() {
        let dir = std::env::temp_dir().join("fdip-cli-slice-test");
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.fdt");
        let cut = dir.join("cut.fdt");
        dispatch(&[
            "gen".into(),
            "--profile".into(),
            "microloop".into(),
            "--len".into(),
            "4000".into(),
            "--out".into(),
            full.to_str().unwrap().into(),
        ])
        .unwrap();
        dispatch(&[
            "slice".into(),
            full.to_str().unwrap().into(),
            cut.to_str().unwrap().into(),
            "--start".into(),
            "1000".into(),
            "--len".into(),
            "500".into(),
        ])
        .unwrap();
        let window = load_trace(cut.to_str().unwrap()).unwrap();
        assert_eq!(window.len(), 500);
        window.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tables_prints() {
        dispatch(&["tables".into()]).unwrap();
        // Registry-resolved form: x3 is pure arithmetic, so it is cheap.
        dispatch(&["tables".into(), "x3".into()]).unwrap();
    }

    #[test]
    fn tables_rejects_unknown_experiment() {
        let err = dispatch(&["tables".into(), "zz".into()]).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
        assert!(err.to_string().contains("e01"));
    }
}
