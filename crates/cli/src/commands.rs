//! The `fdip` subcommands.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use fdip::{spec, CpfMode, FrontendConfig, PrefetcherKind, Simulator};
use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_trace::{read_binary, read_text, write_binary_compact, write_text, Trace, TraceStats};

use crate::args::Args;

/// Every subcommand, paired with its one-line summary. The dispatch
/// table, the usage text, and the unknown-command error all derive from
/// this list so they cannot drift apart.
pub const COMMANDS: [(&str, &str); 14] = [
    ("gen", "generate a workload trace"),
    ("asm", "assemble a FISA source file and report the program"),
    (
        "run-prog",
        "execute a library program or FISA source file (trace out or simulate)",
    ),
    ("stats", "characterize a trace"),
    ("run", "simulate a trace"),
    ("compare", "run every prefetcher on a trace"),
    ("slice", "cut a window out of a trace"),
    ("convert", "convert between binary (.fdt) and text (.txt)"),
    (
        "tables",
        "print the BTB storage tables or any registry experiment",
    ),
    (
        "exp",
        "run registry experiments with fault injection and journaled resume",
    ),
    ("serve", "run the HTTP simulation service"),
    (
        "workerd",
        "run a TCP worker daemon serving fleet cell dispatch",
    ),
    (
        "chaos",
        "run the seeded chaos soak against a self-healing local fleet",
    ),
    ("help", "print this usage text"),
];

/// Usage text shown on errors and by `fdip help`.
pub const USAGE: &str = "\
usage: fdip <command> [options]

commands:
  gen      --profile client|server|microloop|jumpy [--seed N] [--len N]
           --out FILE [--format binary|text]     generate a workload trace
  asm      FILE                                  assemble a FISA source file and
                                                 report the program (instruction and
                                                 data sizes, entry, symbol table)
  run-prog NAME|FILE [--len N] [--out FILE] [--seed N] [run flags]
                                                 execute a library program, scenario,
                                                 or FISA source file; with --out the
                                                 emitted trace is written, otherwise
                                                 it is simulated like `run` (same
                                                 config flags); list names with
                                                 `run-prog list`
  stats    FILE                                  characterize a trace
  run      FILE [--prefetcher none|nlp|stream|fdip|shotgun|pif] [--cpf none|enqueue|remove|both]
           [--btb conventional:N|bb:N|fdipx:N|ideal] [--predictor bimodal|gshare|hybrid|local|tage|perfect]
           [--ftq N] [--l1-kb N] [--l2-latency N] [--mem-latency N] [--warmup N]
                                                 simulate a trace
  compare  FILE                                  run every prefetcher on a trace
  slice    IN OUT --start N --len N              cut a window out of a trace
  convert  IN OUT                                convert between binary (.fdt) and text (.txt)
  tables   [EXPERIMENT]                          print the BTB storage tables (Tables I & II),
                                                 or any experiment from the registry by id
                                                 (e.g. e01, x4) at quick scale
  exp      [ID|all] [--quick|--medium|--full] [--batch[=on|off]] [--isolate[=N]]
           [--fleet ADDR,ADDR,...] [--fleet-heartbeat-ms N] [--hedge-after-ms MS|auto|0]
           [--cache DIR] [--faults SPEC] [--journal FILE]
           [--max-attempts N] [--cell-budget-ms N]
                                                 run one experiment (or the whole
                                                 catalogue) under the fault-tolerant
                                                 harness: --fleet-heartbeat-ms sets
                                                 how long a silent node stays routable
                                                 (also $FDIP_FLEET_HEARTBEAT_MS),
                                                 --hedge-after-ms speculatively
                                                 re-dispatches cells still in flight
                                                 after that delay to a second healthy
                                                 node, first identical result winning
                                                 (\"auto\" derives the delay from
                                                 observed latency; 0, the default,
                                                 disables hedging entirely),
                                                 --batch=off disables the
                                                 lockstep multi-config batch pass
                                                 (on by default; results identical
                                                 either way), --isolate runs cells in N
                                                 supervised worker processes (crashes
                                                 and hangs cost one worker, not the
                                                 run), --fleet dispatches cells to
                                                 remote `fdip workerd` daemons instead
                                                 (killed nodes cost a re-dispatch,
                                                 never the run; needs --isolate),
                                                 --cache persists finished cells to a
                                                 shared content-addressed directory
                                                 consulted before any dispatch,
                                                 --faults injects deterministic
                                                 failures (kind@workload/config[:arg],
                                                 kinds panic|transient|trace|slow, plus
                                                 abort|hang|bigalloc under --isolate
                                                 and drop|partition|slowlink|truncframe
                                                 under --fleet; also read from
                                                 $FDIP_FAULTS), --journal records
                                                 finished cells so a killed run
                                                 resumes without re-simulating them
  serve    [--addr HOST:PORT] [--threads N] [--queue-depth N] [--timeout-ms N]
           [--max-conns N] [--tenant-rps N]
           [--results-dir DIR] [--max-trace-len N] [--max-configs N] [--isolate N]
           [--fleet ADDR,...] [--fleet-heartbeat-ms N] [--hedge-after-ms MS|auto|0]
                                                 run the HTTP simulation service
                                                 (healthz, metrics, v1/run, v1/compare,
                                                 v1/experiments/{id}); --max-conns caps
                                                 open connections (extra accepts are
                                                 shed 503), --tenant-rps rate-limits
                                                 each x-fdip-tenant to N requests/sec
                                                 (429 beyond; 0 = unlimited);
                                                 identical concurrent simulations
                                                 coalesce into one run; --isolate keeps
                                                 crashing cells in worker processes
                                                 (structured 502, server stays up);
                                                 --fleet dispatches cells to remote
                                                 `fdip workerd` daemons, --cache
                                                 persists finished cells to DIR
                                                 (default RESULTS/cellcache; `none`
                                                 disables) so a restarted server is
                                                 warm from request one
  workerd  --listen HOST:PORT [--slots N]        run a TCP worker daemon: fleet
                                                 clients dispatch cells here, each
                                                 simulated in a supervised child
                                                 process (a crash costs the child,
                                                 not the daemon); ctrl-c or SIGTERM
                                                 finishes in-flight cells, then exits
  chaos    [--rounds N] [--seed N] [--exp ID,ID,...]
                                                 run the seeded chaos soak: N rounds
                                                 of real experiments against a live
                                                 two-daemon fleet with a shared cell
                                                 cache, while the schedule SIGKILLs
                                                 and restarts daemons, injects
                                                 network faults, and rots cache
                                                 entries; every round must stay
                                                 byte-identical to the fault-free
                                                 baseline and re-simulation must be
                                                 bounded by the corrupted entries;
                                                 exits nonzero when any gate fails
  help                                           print this usage text

trace format is inferred from the file extension: `.txt` is text,
anything else is the binary format.";

type CliResult = Result<(), Box<dyn Error>>;

/// Dispatches `argv` to a subcommand.
///
/// # Errors
///
/// Returns a human-readable error for unknown commands, bad flags, bad
/// files, or malformed traces.
pub fn dispatch(argv: &[String]) -> CliResult {
    let Some((command, rest)) = argv.split_first() else {
        return Err(unknown_command_error("no command given"));
    };
    // `exp` takes the bare `--quick`/`--medium`/`--full` scale flags, which
    // the `--key value` parser would misread; it strips them itself.
    if command == "exp" {
        return cmd_exp(rest);
    }
    // Hidden: the supervisor self-execs `fdip worker` (with FDIP_WORKER=1
    // set) to get a disposable single-cell worker. Normally the env check
    // in main() catches it first; this arm covers a manual invocation. It
    // is not listed in COMMANDS because it speaks the framed IPC protocol
    // on stdin/stdout, not the CLI.
    if command == "worker" {
        std::process::exit(fdip_sim::worker::worker_main());
    }
    let args = Args::parse(rest)?;
    match command.as_str() {
        "gen" => cmd_gen(&args),
        "asm" => cmd_asm(&args),
        "run-prog" => cmd_run_prog(&args),
        "stats" => cmd_stats(&args),
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "slice" => cmd_slice(&args),
        "convert" => cmd_convert(&args),
        "tables" => cmd_tables(&args),
        "serve" => cmd_serve(&args),
        "workerd" => cmd_workerd(&args),
        "chaos" => cmd_chaos(&args),
        "help" | "--help" | "-h" => cmd_help(&args),
        other => Err(unknown_command_error(&format!("unknown command {other:?}"))),
    }
}

/// Builds the error for a missing or unrecognized command, listing every
/// subcommand so the user never has to guess.
fn unknown_command_error(lead: &str) -> Box<dyn Error> {
    let list = COMMANDS
        .iter()
        .map(|(name, summary)| format!("  {name:<8} {summary}"))
        .collect::<Vec<_>>()
        .join("\n");
    format!("{lead}; commands are:\n{list}").into()
}

fn parse_profile(raw: &str) -> Result<Profile, Box<dyn Error>> {
    Profile::ALL
        .into_iter()
        .find(|p| p.name() == raw)
        .ok_or_else(|| format!("unknown profile {raw:?} (client|server|microloop|jumpy)").into())
}

fn load_trace(path: &str) -> Result<Trace, Box<dyn Error>> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let reader = BufReader::new(file);
    let trace = if Path::new(path).extension().is_some_and(|e| e == "txt") {
        read_text(reader)?
    } else {
        read_binary(reader)?
    };
    trace.validate()?;
    Ok(trace)
}

fn save_trace(path: &str, trace: &Trace, force_text: bool) -> Result<(), Box<dyn Error>> {
    let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let writer = BufWriter::new(file);
    if force_text || Path::new(path).extension().is_some_and(|e| e == "txt") {
        write_text(writer, trace)?;
    } else {
        write_binary_compact(writer, trace)?;
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> CliResult {
    let profile = parse_profile(args.require("profile")?)?;
    let seed = args.get_or("seed", 0u64, "an integer seed")?;
    let len = args.get_or("len", 1_000_000usize, "an instruction count")?;
    let out = args.require("out")?.to_string();
    let format = args.get("format").unwrap_or("binary").to_string();
    args.expect_positional(0, "gen takes no positional arguments")?;
    args.reject_unknown()?;

    let trace = GeneratorConfig::profile(profile)
        .seed(seed)
        .target_len(len)
        .generate();
    save_trace(&out, &trace, format == "text")?;
    let stats = TraceStats::measure(&trace);
    println!(
        "wrote {} ({} instructions, {:.0} KB footprint, {} static taken branches)",
        out,
        trace.len(),
        stats.footprint_bytes as f64 / 1024.0,
        stats.static_taken_branches,
    );
    Ok(())
}

/// Assembles `path` (program name = file stem) or explains why it can't.
fn assemble_file(path: &str) -> Result<fdip_isa::Program, Box<dyn Error>> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program")
        .to_string();
    fdip_isa::assemble(&name, &src).map_err(|e| format!("{path}:{e}").into())
}

fn cmd_asm(args: &Args) -> CliResult {
    let files = args.expect_positional(1, "asm takes exactly one FISA source file")?;
    args.reject_unknown()?;
    let program = assemble_file(&files[0])?;
    let control = program.insts.iter().filter(|i| i.is_control()).count();
    println!("program:       {}", program.name);
    println!(
        "instructions:  {} ({} control-flow)",
        program.insts.len(),
        control
    );
    println!("data words:    {}", program.data.len());
    println!("entry:         inst {}", program.entry);
    println!("symbols:");
    for s in &program.symbols {
        println!("  {:<5} {:>8}  {}", s.kind.tag(), s.value, s.name);
    }
    Ok(())
}

fn cmd_run_prog(args: &Args) -> CliResult {
    let files = args.expect_positional(
        1,
        "run-prog takes a program name, scenario name, or source file",
    )?;
    let target = files[0].as_str();
    if target == "list" {
        args.reject_unknown()?;
        println!("library programs:");
        for name in fdip_isa::library::names() {
            let p = fdip_isa::library::load(name).expect("library name");
            println!("  {:<8} {} instructions", name, p.insts.len());
        }
        println!("scenarios (take --seed):");
        for def in fdip_isa::scenario::SCENARIOS {
            println!("  {:<10} {}", def.name, def.describe);
        }
        return Ok(());
    }
    let len = args.get_or("len", 200_000usize, "an instruction count")?;
    let seed = args.get_or("seed", 0u64, "an integer seed")?;
    let out = args.get("out").map(str::to_string);

    // Resolution order: library program, scenario, then a source file —
    // catalogue names are reserved words, paths can always disambiguate
    // with `./`.
    let trace = if let Some(t) = fdip_isa::library::trace(target, target, len) {
        t
    } else if let Some(t) = fdip_isa::scenario::trace(target, seed, target, len) {
        t
    } else {
        let program = assemble_file(target)?;
        let name = program.name.clone();
        fdip_isa::program_trace(&program, &name, len)
            .map_err(|e| format!("{target}: execution failed: {e}"))?
    };

    if let Some(out) = out {
        args.reject_unknown()?;
        save_trace(&out, &trace, false)?;
        let stats = TraceStats::measure(&trace);
        println!(
            "wrote {} ({} instructions, {:.1} KB footprint, {:.1} branches/KI)",
            out,
            trace.len(),
            stats.footprint_bytes as f64 / 1024.0,
            stats.branch_pki(),
        );
        return Ok(());
    }
    let config = config_from_args(args)?;
    args.reject_unknown()?;
    let stats = Simulator::run_trace(&config, &trace);
    println!("workload:      {}", trace.name());
    println!("prefetcher:    {}", config.prefetcher.name());
    println!("instructions:  {}", stats.instructions);
    println!("cycles:        {}", stats.cycles);
    println!("IPC:           {:.3}", stats.ipc());
    println!("L1-I MPKI:     {:.2}", stats.l1i_mpki());
    Ok(())
}

fn cmd_stats(args: &Args) -> CliResult {
    let files = args.expect_positional(1, "stats takes exactly one trace file")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    let s = TraceStats::measure(&trace);
    println!("trace:                {}", trace.name());
    println!("instructions:         {}", s.len);
    println!(
        "instruction footprint: {:.1} KB ({} x 64B blocks)",
        s.footprint_bytes as f64 / 1024.0,
        s.footprint_blocks_64b
    );
    println!(
        "static branches:      {} ({} taken at least once)",
        s.static_branches, s.static_taken_branches
    );
    println!("branches per KI:      {:.1}", s.branch_pki());
    println!("cond taken ratio:     {:.3}", s.mix.cond_taken_ratio());
    println!("dynamic branch mix:");
    for class in fdip_types::BranchClass::ALL {
        let count = s.mix.count(class);
        if count > 0 {
            println!(
                "  {class:<6} {:>9}  ({:.1}%)",
                count,
                count as f64 * 100.0 / s.mix.total() as f64
            );
        }
    }
    println!(
        "taken-branch offsets: <=8b {:.1}%  9-13b {:.1}%  14-23b {:.1}%  >23b {:.1}%",
        s.offsets.cumulative_fraction(8) * 100.0,
        (s.offsets.cumulative_fraction(13) - s.offsets.cumulative_fraction(8)) * 100.0,
        (s.offsets.cumulative_fraction(23) - s.offsets.cumulative_fraction(13)) * 100.0,
        (1.0 - s.offsets.cumulative_fraction(23)) * 100.0,
    );
    Ok(())
}

fn config_from_args(args: &Args) -> Result<FrontendConfig, Box<dyn Error>> {
    let cpf = spec::parse_cpf(args.get("cpf").unwrap_or("none"))?;
    let mut config = FrontendConfig {
        prefetcher: spec::parse_prefetcher(args.get("prefetcher").unwrap_or("none"), cpf)?,
        ..FrontendConfig::default()
    };
    if let Some(raw) = args.get("btb") {
        config.btb = spec::parse_btb(raw)?;
    }
    if let Some(raw) = args.get("predictor") {
        config.predictor = spec::parse_predictor(raw)?;
    }
    config.ftq_entries = args.get_or("ftq", config.ftq_entries, "a queue depth")?;
    spec::set_l1_kb(&mut config, args.get_or("l1-kb", 16, "a size in KB")?)?;
    config.mem.l2_latency = args.get_or("l2-latency", config.mem.l2_latency, "cycles")?;
    config.mem.mem_latency = args.get_or("mem-latency", config.mem.mem_latency, "cycles")?;
    config.check()?;
    Ok(config)
}

fn cmd_run(args: &Args) -> CliResult {
    let files = args.expect_positional(1, "run takes exactly one trace file")?;
    let config = config_from_args(args)?;
    let warmup = args.get_or("warmup", 0u64, "an instruction count")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    let storage = Simulator::new(&config, &trace).storage_report();
    let stats = if warmup > 0 {
        Simulator::new(&config, &trace).run_with_warmup(warmup)
    } else {
        Simulator::run_trace(&config, &trace)
    };
    println!(
        "front-end storage:  {:.2} KB (btb {:.2} + predictor {:.2} + ras {:.2} + pbuf {:.2})",
        storage.total_kb(),
        storage.btb_bits as f64 / 8192.0,
        storage.predictor_bits as f64 / 8192.0,
        storage.ras_bits as f64 / 8192.0,
        storage.prefetch_buffer_bits as f64 / 8192.0,
    );
    println!("prefetcher:         {}", config.prefetcher.name());
    println!("instructions:       {}", stats.instructions);
    println!("cycles:             {}", stats.cycles);
    println!("IPC:                {:.3}", stats.ipc());
    println!("L1-I MPKI:          {:.2}", stats.l1i_mpki());
    println!(
        "exec redirects/KI:  {:.2}",
        stats.branches.mpki(stats.instructions)
    );
    println!("BTB hit ratio:      {:.3}", stats.branches.btb_hit_ratio());
    println!(
        "bus utilization:    {:.1}%",
        stats.bus_utilization() * 100.0
    );
    if stats.mem.prefetches_issued > 0 {
        println!(
            "prefetches:         {} issued, {} useful ({:.1}%), {} late",
            stats.mem.prefetches_issued,
            stats.mem.useful_prefetches,
            stats.mem.prefetch_accuracy() * 100.0,
            stats.mem.late_prefetches,
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> CliResult {
    let files = args.expect_positional(1, "compare takes exactly one trace file")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    let base = Simulator::run_trace(&FrontendConfig::default(), &trace);
    println!(
        "baseline: IPC {:.3}, L1-I MPKI {:.2}\n",
        base.ipc(),
        base.l1i_mpki()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "prefetcher", "speedup", "coverage", "bus"
    );
    let kinds = [
        ("nlp", PrefetcherKind::NextLine),
        ("stream", PrefetcherKind::StreamBuffers(Default::default())),
        ("fdip", PrefetcherKind::fdip()),
        ("fdip+cpf", PrefetcherKind::fdip_with_cpf(CpfMode::Remove)),
        ("pif", PrefetcherKind::Pif(Default::default())),
    ];
    for (name, kind) in kinds {
        let stats = Simulator::run_trace(&FrontendConfig::default().with_prefetcher(kind), &trace);
        println!(
            "{:<12} {:>7.3}x {:>9.1}% {:>9.1}%",
            name,
            stats.speedup_over(&base),
            stats.miss_coverage_vs(&base) * 100.0,
            stats.bus_utilization() * 100.0,
        );
    }
    Ok(())
}

fn cmd_slice(args: &Args) -> CliResult {
    let files = args.expect_positional(2, "slice takes IN and OUT files")?;
    let start = args.get_or("start", 0usize, "an instruction index")?;
    let len = args
        .require("len")?
        .parse::<usize>()
        .map_err(|_| "bad --len")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    if start > trace.len() {
        return Err(format!("--start {start} past trace end ({})", trace.len()).into());
    }
    let window = trace.window(start, len);
    save_trace(&files[1], &window, false)?;
    println!("wrote {} ({} instructions)", files[1], window.len());
    Ok(())
}

fn cmd_convert(args: &Args) -> CliResult {
    let files = args.expect_positional(2, "convert takes IN and OUT files")?;
    args.reject_unknown()?;
    let trace = load_trace(&files[0])?;
    save_trace(&files[1], &trace, false)?;
    println!("wrote {} ({} instructions)", files[1], trace.len());
    Ok(())
}

fn cmd_tables(args: &Args) -> CliResult {
    args.reject_unknown()?;
    use fdip_sim::experiments;
    use fdip_sim::harness::Harness;
    use fdip_sim::Scale;
    let harness = Harness::global();
    if let Some(id) = args.positional().first() {
        let exp = experiments::find(id).ok_or_else(|| {
            let ids: Vec<&str> = experiments::all().iter().map(|e| e.id()).collect();
            format!("unknown experiment {id:?} (one of: {})", ids.join(", "))
        })?;
        print!("{}", exp.run(harness, Scale::quick()).to_text());
        return Ok(());
    }
    for id in ["x2", "x3"] {
        let exp = experiments::find(id).expect("storage tables are registered");
        print!("{}", exp.run(harness, Scale::quick()).to_text());
    }
    Ok(())
}

/// Parses the fleet tuning flags shared by `exp` and `serve`:
/// `--fleet-heartbeat-ms` (positive milliseconds; overrides the
/// `$FDIP_FLEET_HEARTBEAT_MS` fallback) and `--hedge-after-ms`
/// (milliseconds, `auto`, or `0` to disable). Both are validated here,
/// before any connection is dialed.
fn fleet_tuning(
    args: &Args,
) -> Result<(Option<u64>, Option<fdip_sim::fleet::HedgePolicy>), Box<dyn Error>> {
    let heartbeat = match args.get("fleet-heartbeat-ms") {
        None => None,
        Some(raw) => Some(raw.parse::<u64>().ok().filter(|&ms| ms > 0).ok_or_else(|| {
            format!("bad --fleet-heartbeat-ms {raw:?} (want a positive millisecond count)")
        })?),
    };
    let hedge = match args.get("hedge-after-ms") {
        None => None,
        Some(raw) => Some(
            fdip_sim::fleet::HedgePolicy::parse(raw)
                .map_err(|e| format!("bad --hedge-after-ms: {e}"))?,
        ),
    };
    Ok((heartbeat, hedge))
}

fn cmd_chaos(args: &Args) -> CliResult {
    use fdip_sim::chaos::{run_chaos, ChaosConfig};
    let defaults = ChaosConfig::default();
    let rounds = args.get_or("rounds", defaults.rounds, "a round count")?;
    let seed = args.get_or("seed", defaults.seed, "an integer seed")?;
    let experiments = match args.get("exp") {
        None => defaults.experiments,
        Some(list) => {
            let ids: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if ids.is_empty() {
                return Err("--exp needs at least one experiment id".into());
            }
            ids
        }
    };
    args.expect_positional(0, "chaos takes no positional arguments")?;
    args.reject_unknown()?;
    if rounds == 0 {
        return Err("--rounds must be positive".into());
    }

    let config = ChaosConfig {
        rounds,
        seed,
        experiments,
    };
    eprintln!(
        "chaos: {} round(s), seed {}, experiments {}",
        config.rounds,
        config.seed,
        config.experiments.join(","),
    );
    let report = run_chaos(&config)?;
    print!("{}", report.to_text());
    if report.passed() {
        Ok(())
    } else {
        Err(format!("chaos soak failed {} gate(s)", report.failures.len()).into())
    }
}

fn cmd_exp(raw: &[String]) -> CliResult {
    use fdip_sim::experiments;
    use fdip_sim::fault::{FaultPlan, RetryPolicy};
    use fdip_sim::harness::Harness;
    use fdip_sim::supervisor::{self, SupervisorConfig};
    use fdip_sim::Scale;
    use std::time::Duration;

    // `exp` has its own flag vocabulary (--journal, --faults, …), so only
    // the scale flags are delegated; typos are still caught below by
    // `args.reject_unknown()`. `--isolate[=N]` is likewise valueless (or
    // `=`-joined), which the `--key value` parser would misread, so it is
    // stripped here too.
    let mut isolate: Option<usize> = None;
    let mut batch: Option<bool> = None;
    let mut scale_and_rest: Vec<String> = Vec::with_capacity(raw.len());
    for a in raw {
        if a == "--isolate" {
            isolate = Some(supervisor::default_worker_count());
        } else if let Some(n) = a.strip_prefix("--isolate=") {
            let workers = n
                .parse::<usize>()
                .ok()
                .filter(|&w| w > 0)
                .ok_or_else(|| format!("bad --isolate={n:?} (want a positive worker count)"))?;
            isolate = Some(workers);
        } else if a == "--batch" {
            batch = Some(true);
        } else if let Some(v) = a.strip_prefix("--batch=") {
            batch = Some(match v {
                "on" => true,
                "off" => false,
                _ => {
                    return Err(format!(
                        "unrecognized --batch value {v:?} \
                         (accepted forms: --batch, --batch=on, --batch=off)"
                    )
                    .into())
                }
            });
        } else {
            scale_and_rest.push(a.clone());
        }
    }
    let scale = Scale::from_args(
        scale_and_rest
            .iter()
            .filter(|a| matches!(a.as_str(), "--quick" | "--medium" | "--full"))
            .cloned(),
    )
    .expect("scale flags were pre-filtered");
    let rest: Vec<String> = scale_and_rest
        .iter()
        .filter(|a| !matches!(a.as_str(), "--quick" | "--medium" | "--full"))
        .cloned()
        .collect();
    let args = Args::parse(&rest)?;

    let plan = match args.get("faults") {
        Some(spec) => Some(FaultPlan::parse(spec)?),
        None => FaultPlan::from_env()?,
    };
    let journal = args.get("journal").map(std::path::PathBuf::from);
    let fleet_addrs = args.get("fleet").map(str::to_string);
    // Validated up front, before anything dials: a zero or garbage value
    // is a flag error, never a half-configured fleet.
    let (fleet_heartbeat_ms, hedge) = fleet_tuning(&args)?;
    let cache_dir = args.get("cache").map(std::path::PathBuf::from);
    let defaults = RetryPolicy::default();
    let max_attempts = args.get_or("max-attempts", defaults.max_attempts, "a retry count")?;
    let budget_ms = args.get_or("cell-budget-ms", 0u64, "milliseconds (0 = no budget)")?;
    let ids = args.positional().to_vec();
    if ids.len() > 1 {
        return Err("exp takes at most one experiment id (or \"all\")".into());
    }
    args.reject_unknown()?;

    let selected: Vec<&'static dyn experiments::Experiment> = match ids.first().map(String::as_str)
    {
        None | Some("all") => experiments::all(),
        Some(id) => {
            let exp = experiments::find(id).ok_or_else(|| {
                let ids: Vec<&str> = experiments::all().iter().map(|e| e.id()).collect();
                format!(
                    "unknown experiment {id:?} (one of: {}, all)",
                    ids.join(", ")
                )
            })?;
            vec![exp]
        }
    };

    let harness = Harness::global();
    harness.set_retry_policy(RetryPolicy {
        max_attempts,
        cell_budget: (budget_ms > 0).then(|| Duration::from_millis(budget_ms)),
        ..defaults
    });
    if let Some(on) = batch {
        harness.set_batching(on);
    }
    if let Some(addrs) = &fleet_addrs {
        // Fleet dispatch is the distributed form of process isolation;
        // requiring the flag keeps "cells leave this process" explicit.
        if isolate.is_none() {
            return Err("--fleet requires --isolate (cells run in remote worker daemons)".into());
        }
        let list: Vec<String> = addrs
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if list.is_empty() {
            return Err("--fleet needs at least one HOST:PORT address".into());
        }
        let mut fleet_config = fdip_sim::fleet::FleetConfig::new(list);
        if let Some(ms) = fleet_heartbeat_ms {
            fleet_config.heartbeat_timeout = Duration::from_millis(ms);
        }
        if let Some(policy) = hedge {
            fleet_config.hedge = policy;
        }
        let fleet = harness
            .enable_fleet(fleet_config)
            .map_err(|e| format!("fleet: {e}"))?;
        let nodes = fleet.nodes();
        eprintln!(
            "fleet: {} node(s), {} worker seat(s): {}",
            nodes.len(),
            fleet.workers(),
            nodes
                .iter()
                .map(|(addr, seats)| format!("{addr} x{seats}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
    } else if let Some(workers) = isolate {
        let supervisor = harness.enable_isolation(SupervisorConfig {
            workers,
            ..SupervisorConfig::default()
        });
        eprintln!(
            "isolation: {} worker process(es), cell budget {}",
            supervisor.workers(),
            if budget_ms > 0 {
                format!("{budget_ms}ms (hard SIGKILL)")
            } else {
                "unbounded".to_string()
            },
        );
    }
    if let Some(dir) = &cache_dir {
        let summary = harness
            .attach_cache(dir)
            .map_err(|e| format!("cache {}: {e}", dir.display()))?;
        eprintln!(
            "cell cache {}: {} entr{} restored, {} corrupt",
            dir.display(),
            summary.entries,
            if summary.entries == 1 { "y" } else { "ies" },
            summary.corrupt,
        );
    }
    if let Some(plan) = &plan {
        if plan.requires_isolation() && isolate.is_none() {
            return Err(
                "fault plan injects abort/hang/bigalloc faults, which take the whole \
                 process down; rerun with --isolate[=N] to contain them in worker processes"
                    .into(),
            );
        }
        if plan.requires_fleet() && fleet_addrs.is_none() {
            return Err(
                "fault plan injects drop/partition/slowlink/truncframe network faults, \
                 which exist only at the fleet transport; rerun with --fleet ADDR,... \
                 (plus --isolate)"
                    .into(),
            );
        }
        eprintln!(
            "fault plan: {} site(s), seed {}",
            plan.site_count(),
            plan.seed()
        );
    }
    harness.set_fault_plan(plan);
    if let Some(path) = &journal {
        let summary = harness
            .attach_journal(path)
            .map_err(|e| format!("journal {}: {e}", path.display()))?;
        eprintln!(
            "journal: restored {} cell(s), skipped {} line(s), {} corrupt",
            summary.restored, summary.skipped, summary.corrupt
        );
    }

    let start = std::time::Instant::now();
    for exp in selected {
        let id = exp.id();
        eprintln!("[{id}] {} ...", exp.title());
        let t = std::time::Instant::now();
        let result = exp.run(harness, scale);
        print!("{}", result.to_text());
        eprintln!("[{id}] {:.1}s", t.elapsed().as_secs_f64());
    }
    let stats = harness.stats();
    eprintln!(
        "harness: {} traces generated ({} shared), {} cells simulated \
         ({} hits, {} restored from journal), {} retries, {} timeouts, {} failed",
        stats.traces_generated,
        stats.traces_shared,
        stats.cells_simulated,
        stats.cell_hits,
        stats.journal_restored,
        stats.cell_retries,
        stats.cell_timeouts,
        stats.cells_failed,
    );
    if harness.isolation_enabled() {
        eprintln!(
            "isolation: {} worker restart(s), {} kill(s), {} crash-loop pause(s)",
            stats.worker_restarts, stats.worker_kills, stats.worker_crash_loops,
        );
    }
    if harness.fleet_enabled() {
        eprintln!(
            "fleet: {} worker seat(s), {} node loss(es), {} cell(s) re-dispatched, \
             {} remote cache hit(s), {} readmission(s), {} hedged ({} won)",
            stats.fleet_workers,
            stats.node_losses,
            stats.cells_redispatched,
            stats.remote_cache_hits,
            stats.node_readmissions,
            stats.cells_hedged,
            stats.hedge_wins,
        );
    }
    eprintln!("total {:.1}s", start.elapsed().as_secs_f64());
    if stats.cells_failed > 0 {
        eprintln!(
            "warning: {} cell(s) FAILED; affected rows are marked in the tables above",
            stats.cells_failed
        );
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> CliResult {
    use fdip_serve::{ServeConfig, Server};
    let defaults = ServeConfig::default();
    let (fleet_heartbeat_ms, fleet_hedge) = fleet_tuning(args)?;
    let config = ServeConfig {
        addr: args.get("addr").unwrap_or(&defaults.addr).to_string(),
        threads: args.get_or("threads", defaults.threads, "a worker count (0 = auto)")?,
        queue_depth: args.get_or("queue-depth", defaults.queue_depth, "a queue capacity")?,
        timeout_ms: args.get_or("timeout-ms", defaults.timeout_ms, "milliseconds")?,
        max_conns: args.get_or("max-conns", defaults.max_conns, "a connection cap")?,
        tenant_rps: args.get_or(
            "tenant-rps",
            defaults.tenant_rps,
            "requests/second per tenant (0 = unlimited)",
        )?,
        results_dir: args
            .get("results-dir")
            .map(std::path::PathBuf::from)
            .unwrap_or(defaults.results_dir),
        max_trace_len: args.get_or(
            "max-trace-len",
            defaults.max_trace_len,
            "an instruction count",
        )?,
        max_configs: args.get_or("max-configs", defaults.max_configs, "a config count")?,
        isolate_workers: args.get_or(
            "isolate",
            defaults.isolate_workers,
            "a worker-process count (0 = in-process)",
        )?,
        fleet: args.get("fleet").map(str::to_string),
        fleet_heartbeat_ms,
        fleet_hedge,
        cache_dir: None,
    };
    // The serve-side cell cache is on by default (warm restarts); opt out
    // with `--cache none`.
    let config = fdip_serve::ServeConfig {
        cache_dir: match args.get("cache") {
            Some("none") => None,
            Some(dir) => Some(std::path::PathBuf::from(dir)),
            None => Some(config.results_dir.join("cellcache")),
        },
        ..config
    };
    args.expect_positional(0, "serve takes no positional arguments")?;
    args.reject_unknown()?;

    // Honor $FDIP_FAULTS so fault drills work against the live service:
    // matching cells fail into structured 502s instead of panicking a
    // worker (see DESIGN.md §6.5).
    if let Some(plan) = fdip_sim::fault::FaultPlan::from_env()? {
        if plan.requires_fleet() && config.fleet.is_none() {
            return Err(
                "$FDIP_FAULTS injects network faults (drop/partition/slowlink/truncframe), \
                 which only make sense against remote workers; rerun with --fleet ADDR,..."
                    .into(),
            );
        }
        if plan.requires_isolation() && config.isolate_workers == 0 && config.fleet.is_none() {
            return Err(
                "$FDIP_FAULTS injects abort/hang/bigalloc faults, which take the whole \
                 server down; rerun with --isolate N to contain them in worker processes"
                    .into(),
            );
        }
        eprintln!(
            "fault plan (from $FDIP_FAULTS): {} site(s), seed {}",
            plan.site_count(),
            plan.seed()
        );
        fdip_sim::harness::Harness::global().set_fault_plan(Some(plan));
    }

    let server = Server::bind(config.clone()).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = server.local_addr()?;
    println!("fdip-serve listening on http://{addr}");
    println!(
        "  {} workers, queue depth {}, timeout {}ms, max {} connections",
        if config.threads == 0 {
            "auto".to_string()
        } else {
            config.threads.to_string()
        },
        config.queue_depth,
        config.timeout_ms,
        config.max_conns,
    );
    if config.tenant_rps > 0 {
        println!(
            "  rate limit: {} request(s)/second per x-fdip-tenant (429 beyond)",
            config.tenant_rps
        );
    }
    if let Some(addrs) = &config.fleet {
        println!("  fleet: cells dispatch to worker daemons at {addrs}; a lost node re-dispatches");
    } else if config.isolate_workers > 0 {
        println!(
            "  isolation: {} worker process(es); crashing cells return 502, the server stays up",
            config.isolate_workers,
        );
    }
    if let Some(dir) = &config.cache_dir {
        println!(
            "  cell cache: {} (disable with --cache none)",
            dir.display()
        );
    }
    println!("  endpoints: /healthz /metrics /v1/run /v1/compare /v1/experiments/{{id}}");
    println!("  stop with ctrl-c or SIGTERM (drains in-flight work)");
    server.run()?;
    println!("fdip-serve drained and stopped");
    Ok(())
}

fn cmd_workerd(args: &Args) -> CliResult {
    use fdip_sim::{fleet, supervisor};
    let listen = args.require("listen")?.to_string();
    let slots = args.get_or("slots", supervisor::default_worker_count(), "a seat count")?;
    args.expect_positional(0, "workerd takes no positional arguments")?;
    args.reject_unknown()?;
    if slots == 0 {
        return Err("--slots must be positive".into());
    }

    let listener =
        std::net::TcpListener::bind(&listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let addr = listener.local_addr()?;
    fdip_serve::signal::install();
    println!("fdip-workerd listening on {addr} ({slots} seat(s))");
    println!("  stop with ctrl-c or SIGTERM (finishes in-flight cells, then exits)");
    fleet::serve_workerd(listener, slots, &fdip_serve::signal::shutdown_requested)?;
    println!("fdip-workerd drained and stopped");
    Ok(())
}

fn cmd_help(args: &Args) -> CliResult {
    args.reject_unknown()?;
    println!("{USAGE}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn unknown_command_error_lists_every_subcommand() {
        let err = dispatch(&argv("frobnicate")).unwrap_err().to_string();
        assert!(err.contains("unknown command \"frobnicate\""), "{err}");
        for (name, _) in COMMANDS {
            assert!(err.contains(name), "{name} missing from:\n{err}");
        }
        let none = dispatch(&[]).unwrap_err().to_string();
        assert!(none.contains("no command given"), "{none}");
        assert!(none.contains("serve"), "{none}");
    }

    #[test]
    fn every_listed_command_is_routed() {
        // One probe per command that fails (or succeeds) inside the
        // command itself — if a COMMANDS entry were missing from the
        // dispatch match, its probe would surface "unknown command".
        for (name, _) in COMMANDS {
            let probe = match name {
                "help" => {
                    dispatch(&argv("help")).unwrap();
                    continue;
                }
                "gen" => argv("gen"),               // --profile is required
                "tables" => argv("tables zz"),      // unknown experiment
                "serve" => argv("serve stray-arg"), // takes no positionals
                other => argv(&format!("{other} --bogus-flag x")),
            };
            let err = dispatch(&probe).unwrap_err().to_string();
            assert!(!err.contains("unknown command"), "{name}: {err}");
        }
    }

    #[test]
    fn serve_rejects_bad_flags_before_binding() {
        let err = dispatch(&argv("serve --queue-depth many")).unwrap_err();
        assert!(err.to_string().contains("queue-depth"), "{err}");
        let err = dispatch(&argv("serve --tenant-rps lots")).unwrap_err();
        assert!(err.to_string().contains("tenant-rps"), "{err}");
        let err = dispatch(&argv("serve --max-conns -3")).unwrap_err();
        assert!(err.to_string().contains("max-conns"), "{err}");
        let err = dispatch(&argv("serve --bogus 1")).unwrap_err();
        assert!(err.to_string().contains("--bogus"), "{err}");
    }

    #[test]
    fn usage_mentions_every_command() {
        for (name, _) in COMMANDS {
            assert!(USAGE.contains(name), "{name} missing from USAGE");
        }
    }

    #[test]
    fn bad_specs_are_errors_not_panics() {
        // The spec parsers themselves are tested in `fdip::spec`; here we
        // check the CLI surfaces their failures as errors.
        for bad in [
            "--btb conventional:1001",
            "--btb bogus:8",
            "--prefetcher warp",
            "--predictor oracle9000",
            "--cpf sometimes",
            "--l1-kb 3",
        ] {
            let args = Args::parse(&argv(bad)).unwrap();
            assert!(config_from_args(&args).is_err(), "{bad}");
        }
    }

    #[test]
    fn config_from_args_applies_overrides() {
        use fdip::BtbVariant;
        let args = Args::parse(&argv(
            "--prefetcher fdip --cpf remove --btb fdipx:1024 --ftq 8 --l1-kb 32 --mem-latency 200",
        ))
        .unwrap();
        let config = config_from_args(&args).unwrap();
        assert_eq!(config.prefetcher.name(), "fdip+rcpf");
        assert!(matches!(config.btb, BtbVariant::Partitioned(_)));
        assert_eq!(config.ftq_entries, 8);
        assert_eq!(config.mem.l1.capacity_bytes(), 32 * 1024);
        assert_eq!(config.mem.mem_latency, 200);
    }

    #[test]
    fn gen_stats_run_convert_roundtrip() {
        let dir = std::env::temp_dir().join("fdip-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("t.fdt");
        let txt = dir.join("t.txt");
        let bin_s = bin.to_str().unwrap().to_string();
        let txt_s = txt.to_str().unwrap().to_string();

        dispatch(&[
            "gen".into(),
            "--profile".into(),
            "microloop".into(),
            "--seed".into(),
            "3".into(),
            "--len".into(),
            "5000".into(),
            "--out".into(),
            bin_s.clone(),
        ])
        .unwrap();
        dispatch(&["stats".into(), bin_s.clone()]).unwrap();
        dispatch(&["convert".into(), bin_s.clone(), txt_s.clone()]).unwrap();
        dispatch(&[
            "run".into(),
            txt_s.clone(),
            "--prefetcher".into(),
            "fdip".into(),
        ])
        .unwrap();
        // Binary and text round-trips agree.
        let a = load_trace(&bin_s).unwrap();
        let b = load_trace(&txt_s).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slice_extracts_a_window() {
        let dir = std::env::temp_dir().join("fdip-cli-slice-test");
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.fdt");
        let cut = dir.join("cut.fdt");
        dispatch(&[
            "gen".into(),
            "--profile".into(),
            "microloop".into(),
            "--len".into(),
            "4000".into(),
            "--out".into(),
            full.to_str().unwrap().into(),
        ])
        .unwrap();
        dispatch(&[
            "slice".into(),
            full.to_str().unwrap().into(),
            cut.to_str().unwrap().into(),
            "--start".into(),
            "1000".into(),
            "--len".into(),
            "500".into(),
        ])
        .unwrap();
        let window = load_trace(cut.to_str().unwrap()).unwrap();
        assert_eq!(window.len(), 500);
        window.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn asm_and_run_prog_round_trip() {
        let dir = std::env::temp_dir().join("fdip-cli-asm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("count.fasm");
        let out = dir.join("count.fdt");
        std::fs::write(
            &src,
            "main: li r1, 50\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n",
        )
        .unwrap();
        let src_s = src.to_str().unwrap().to_string();

        dispatch(&["asm".into(), src_s.clone()]).unwrap();
        dispatch(&[
            "run-prog".into(),
            src_s.clone(),
            "--len".into(),
            "2000".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let trace = load_trace(out.to_str().unwrap()).unwrap();
        assert!(trace.len() >= 2000);
        assert_eq!(trace.name(), "count");

        // Library programs and scenarios resolve by name and simulate.
        dispatch(&argv("run-prog fib --len 2000 --prefetcher fdip")).unwrap();
        dispatch(&argv("run-prog irq-vm --len 2000 --seed 3")).unwrap();
        dispatch(&argv("run-prog list")).unwrap();

        // Assembly errors surface as typed errors with the source path.
        std::fs::write(&src, "main: frob r1\nhalt\n").unwrap();
        let err = dispatch(&["asm".into(), src_s.clone()])
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown mnemonic"), "{err}");
        assert!(err.contains("count.fasm"), "{err}");
        let err = dispatch(&argv("run-prog no-such-thing"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("no-such-thing"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tables_prints() {
        dispatch(&["tables".into()]).unwrap();
        // Registry-resolved form: x3 is pure arithmetic, so it is cheap.
        dispatch(&["tables".into(), "x3".into()]).unwrap();
    }

    #[test]
    fn exp_runs_a_cheap_experiment_and_rejects_bad_input() {
        // x3 is pure arithmetic, so the full path (scale-flag stripping,
        // registry lookup, harness summary) is exercised cheaply.
        dispatch(&argv("exp x3 --quick")).unwrap();
        let err = dispatch(&argv("exp zz --quick")).unwrap_err().to_string();
        assert!(err.contains("unknown experiment \"zz\""), "{err}");
        let err = dispatch(&argv("exp --faults nonsense"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing '@'"), "{err}");
        let err = dispatch(&argv("exp e01 e02 --quick"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("at most one"), "{err}");
        let err = dispatch(&argv("exp --bogus 1")).unwrap_err().to_string();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn tables_rejects_unknown_experiment() {
        let err = dispatch(&["tables".into(), "zz".into()]).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
        assert!(err.to_string().contains("e01"));
    }
}
