//! `fdip` — the command-line front end of the reproduction.
//!
//! ```text
//! fdip gen     --profile server --seed 1 --len 1000000 --out server.fdt
//! fdip stats   server.fdt
//! fdip run     server.fdt --prefetcher fdip --cpf remove --btb conventional:2048
//! fdip compare server.fdt
//! fdip convert server.fdt server.txt
//! fdip tables
//! fdip serve   --addr 127.0.0.1:8080 --threads 2 --queue-depth 64
//! fdip help
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    // Supervisor-spawned worker processes (FDIP_WORKER=1 in the
    // environment) never reach the CLI: they speak framed IPC on
    // stdin/stdout and exit inside this call.
    fdip_sim::worker::maybe_worker_entry();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
