//! Minimal, dependency-free `--flag value` argument parsing with typed
//! accessors and unknown-flag detection.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: positional arguments plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Errors from argument parsing and validation.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no value.
    MissingValue(String),
    /// A required option was absent.
    Required(String),
    /// A value failed to parse.
    Invalid {
        /// Offending flag.
        flag: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Flags that no command knows.
    Unknown(Vec<String>),
    /// Wrong number of positional arguments.
    Positional(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            ArgError::Required(flag) => write!(f, "--{flag} is required"),
            ArgError::Invalid {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} {value:?}: expected {expected}"),
            ArgError::Unknown(flags) => write!(f, "unknown options: {}", flags.join(", ")),
            ArgError::Positional(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` into positionals and `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingValue`] for a trailing flag.
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(flag.to_string()))?;
                args.options.insert(flag.to_string(), value.clone());
            } else {
                args.positional.push(arg.clone());
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Exactly `n` positionals, or an error described by `what`.
    pub fn expect_positional(&self, n: usize, what: &'static str) -> Result<&[String], ArgError> {
        if self.positional.len() == n {
            Ok(&self.positional)
        } else {
            Err(ArgError::Positional(what))
        }
    }

    fn note(&self, flag: &str) {
        self.consumed.borrow_mut().push(flag.to_string());
    }

    /// An optional string option.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.note(flag);
        self.options.get(flag).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag)
            .ok_or_else(|| ArgError::Required(flag.to_string()))
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::Invalid {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// Rejects options no accessor asked about (catches typos).
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<String> = self
            .options
            .keys()
            .filter(|k| !consumed.contains(k))
            .map(|k| format!("--{k}"))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError::Unknown(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn splits_positionals_and_options() {
        let a = Args::parse(&argv("trace.fdt --seed 7 out.txt --len 100")).unwrap();
        assert_eq!(a.positional(), ["trace.fdt", "out.txt"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_or("len", 0usize, "int").unwrap(), 100);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            Args::parse(&argv("--seed")).unwrap_err(),
            ArgError::MissingValue("seed".to_string())
        );
    }

    #[test]
    fn required_and_default() {
        let a = Args::parse(&argv("--x 1")).unwrap();
        assert_eq!(a.require("x").unwrap(), "1");
        assert!(matches!(a.require("y"), Err(ArgError::Required(_))));
        assert_eq!(a.get_or("z", 42u32, "int").unwrap(), 42);
    }

    #[test]
    fn invalid_parse_reports_expectation() {
        let a = Args::parse(&argv("--n abc")).unwrap();
        let err = a.get_or("n", 0usize, "a number").unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
        assert!(err.to_string().contains("a number"));
    }

    #[test]
    fn unknown_flags_are_caught() {
        let a = Args::parse(&argv("--seed 1 --tpyo 2")).unwrap();
        let _ = a.get("seed");
        let err = a.reject_unknown().unwrap_err();
        assert_eq!(err, ArgError::Unknown(vec!["--tpyo".to_string()]));
    }

    #[test]
    fn positional_count_enforced() {
        let a = Args::parse(&argv("one two")).unwrap();
        assert!(a.expect_positional(2, "x").is_ok());
        assert!(a.expect_positional(1, "need exactly one file").is_err());
    }
}
