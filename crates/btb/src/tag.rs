//! BTB tag computation: full tags and the FDIP-X 16-bit folded-XOR
//! compressed tag.
//!
//! Addresses are 48-bit virtual and word-aligned, so a branch PC carries 46
//! significant bits. A BTB with `2^s` sets consumes `s` of them as the set
//! index, leaving a `46 - s`-bit full tag. The FDIP-X compression keeps the
//! low 8 tag bits verbatim and folds the remaining bits into the high 8 via
//! XOR in 8-bit blocks — preserving most of the entropy of the high-order
//! bits at a fraction of the storage.

use fdip_types::Addr;

/// Significant bits in a word-aligned 48-bit virtual instruction address.
pub const ADDR_SIGNIFICANT_BITS: u32 = 46;

/// Width of the FDIP-X compressed tag.
pub const COMPRESSED_TAG_BITS: u32 = 16;

/// Splits a branch PC into `(set_index, full_tag)` for a BTB with
/// `num_sets` sets.
///
/// `num_sets` need not be a power of two (the FDIP-X entry counts aren't);
/// indexing is modulo and the tag is the quotient, which preserves the
/// invariant that `(index, tag)` uniquely identifies an address.
pub fn index_and_full_tag(pc: Addr, num_sets: usize) -> (usize, u64) {
    let key = pc.inst_index();
    let index = (key % num_sets as u64) as usize;
    let tag = key / num_sets as u64;
    (index, tag)
}

/// Width in bits of the full tag for a BTB with `num_sets` sets.
pub fn full_tag_bits(num_sets: usize) -> u32 {
    ADDR_SIGNIFICANT_BITS.saturating_sub(63 - (num_sets as u64).leading_zeros())
}

/// Compresses a full tag to 16 bits: low 8 bits kept, the rest folded into
/// the high 8 bits by XOR in 8-bit blocks.
///
/// # Examples
///
/// ```
/// use fdip_btb::tag::compress16;
///
/// // Low byte preserved, high bytes folded.
/// assert_eq!(compress16(0x00_00_00_ab), 0x00ab);
/// assert_eq!(compress16(0x00_00_cd_ab), 0xcdab);
/// assert_eq!(compress16(0x00_ef_cd_ab), (0xcd ^ 0xef) << 8 | 0xab);
/// ```
pub fn compress16(full_tag: u64) -> u64 {
    let low = full_tag & 0xff;
    let mut rest = full_tag >> 8;
    let mut folded = 0u64;
    while rest != 0 {
        folded ^= rest & 0xff;
        rest >>= 8;
    }
    (folded << 8) | low
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_tag_uniquely_identify_address() {
        for sets in [128usize, 100, 768, 1] {
            for raw in [0u64, 0x1000, 0xdead_bee0, (1 << 47) - 4] {
                let pc = Addr::new(raw & !3);
                let (index, tag) = index_and_full_tag(pc, sets);
                let reconstructed = tag * sets as u64 + index as u64;
                assert_eq!(reconstructed, pc.inst_index());
            }
        }
    }

    #[test]
    fn full_tag_bits_match_paper_arithmetic() {
        // 128-set BTB with 48-bit VA, word aligned: 39-bit tag (the paper's
        // baseline figure).
        assert_eq!(full_tag_bits(128), 39);
        assert_eq!(full_tag_bits(256), 38);
        assert_eq!(full_tag_bits(1024), 36);
        assert_eq!(full_tag_bits(4096), 34);
    }

    #[test]
    fn compress_is_deterministic_and_bounded() {
        for t in [0u64, 0xab, 0xffff, 0x1234_5678_9abc, u64::MAX >> 18] {
            let c = compress16(t);
            assert!(c < 1 << 16);
            assert_eq!(c, compress16(t));
        }
    }

    #[test]
    fn compress_preserves_low_byte() {
        for t in [0x00u64, 0x17, 0xfa_17, 0x1234_5617] {
            assert_eq!(compress16(t) & 0xff, t & 0xff);
        }
    }

    #[test]
    fn compress_distinguishes_high_bits_that_fold_differently() {
        // Same low 16 bits, different high bytes → different compressed tag
        // unless they collide in the fold.
        let a = compress16(0x01_0000);
        let b = compress16(0x02_0000);
        assert_ne!(a, b);
    }

    #[test]
    fn fold_collisions_exist_by_construction() {
        // XOR-fold collapses bytes that cancel: 0x0101 >> 8 = 1 folded with…
        let a = compress16(0x01_01_00_00);
        let b = compress16(0x00_00_00_00);
        assert_eq!(a, b, "xor fold cancels identical bytes");
    }
}
