//! Branch target buffers for the FDIP reproduction.
//!
//! The BTB is the structure FDIP's effectiveness hinges on: the
//! branch-prediction unit can only redirect the predicted fetch stream at
//! branches the BTB *knows about*, so BTB reach (branches tracked per byte
//! of storage) directly bounds prefetch coverage.
//!
//! Three organizations are provided:
//!
//! * [`ConventionalBtb`] — instruction-granular: hit means "this address is
//!   a branch", payload is branch type and target.
//! * [`BasicBlockBtb`] — the FTB-style organization used by the original
//!   1999 design: keyed by basic-block start address, payload additionally
//!   carries the block length, so one lookup finds the *next* branch.
//! * [`PartitionedBtb`] — the FDIP-X extension: an ensemble of four
//!   conventional BTBs storing 8/13/23/46-bit target offsets, with 16-bit
//!   folded-XOR compressed tags.
//!
//! [`storage`] reproduces the storage-accounting tables of the FDIP-X study
//! (Tables I and II), and [`tag`] implements full and compressed tags.
//!
//! # Examples
//!
//! ```
//! use fdip_btb::{Btb, BtbConfig, ConventionalBtb, TagScheme};
//! use fdip_types::{Addr, BranchClass};
//!
//! let mut btb = ConventionalBtb::new(BtbConfig::new(64, 4, TagScheme::Full));
//! let pc = Addr::new(0x1000);
//! assert!(btb.lookup(pc).is_none());
//! btb.install(pc, BranchClass::UncondDirect, Addr::new(0x8000));
//! assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x8000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assoc;
mod basic_block;
mod config;
mod conventional;
mod ideal;
mod partitioned;
pub mod storage;
pub mod tag;
mod traits;

pub use assoc::SetAssoc;
pub use basic_block::{BasicBlockBtb, BlockEntry, MAX_BLOCK_LEN};
pub use config::{BtbConfig, TagScheme};
pub use conventional::ConventionalBtb;
pub use ideal::IdealBtb;
pub use partitioned::{PartitionConfig, PartitionedBtb};
pub use traits::{Btb, BtbHit};
