use std::collections::HashMap;

use fdip_types::{Addr, BranchClass};

use crate::traits::{Btb, BtbHit};

/// An unbounded BTB: never evicts, never aliases.
///
/// Models the "infinite-entry BTB" upper-bound point of the budget sweeps.
/// It still *learns* — a branch must be installed (taken once) before it
/// hits — so cold misfetches remain, isolating capacity effects from
/// compulsory ones. Indirect branches keep the last-taken-target policy of
/// the finite designs.
///
/// # Examples
///
/// ```
/// use fdip_btb::{Btb, IdealBtb};
/// use fdip_types::{Addr, BranchClass};
///
/// let mut btb = IdealBtb::new();
/// btb.install(Addr::new(0x40), BranchClass::Call, Addr::new(0x9000));
/// assert_eq!(btb.lookup(Addr::new(0x40)).unwrap().target, Addr::new(0x9000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct IdealBtb {
    entries: HashMap<Addr, BtbHit>,
}

impl IdealBtb {
    /// Creates an empty ideal BTB.
    pub fn new() -> Self {
        IdealBtb::default()
    }

    /// Number of branches learned so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Btb for IdealBtb {
    fn lookup(&mut self, pc: Addr) -> Option<BtbHit> {
        self.entries.get(&pc).copied()
    }

    fn install(&mut self, pc: Addr, class: BranchClass, target: Addr) {
        self.entries.insert(pc, BtbHit { class, target });
    }

    fn invalidate(&mut self, pc: Addr) {
        self.entries.remove(&pc);
    }

    fn storage_bits(&self) -> u64 {
        // Reported as if each learned branch cost a full conventional entry;
        // budget sweeps treat this point as "infinite" regardless.
        self.entries.len() as u64 * (46 + 2 + 46)
    }

    fn capacity(&self) -> usize {
        usize::MAX
    }

    fn name(&self) -> &'static str {
        "ideal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_evicts() {
        let mut b = IdealBtb::new();
        for i in 0..100_000u64 {
            let pc = Addr::from_inst_index(i);
            b.install(pc, BranchClass::CondDirect, pc.add_insts(1));
        }
        assert_eq!(b.len(), 100_000);
        assert!(b.lookup(Addr::from_inst_index(0)).is_some());
        assert!(b.lookup(Addr::from_inst_index(99_999)).is_some());
    }

    #[test]
    fn learns_before_hitting() {
        let mut b = IdealBtb::new();
        assert!(b.lookup(Addr::new(0x40)).is_none(), "cold miss");
        b.install(Addr::new(0x40), BranchClass::Return, Addr::new(0x100));
        assert!(b.lookup(Addr::new(0x40)).is_some());
    }

    #[test]
    fn last_target_policy() {
        let mut b = IdealBtb::new();
        let pc = Addr::new(0x40);
        b.install(pc, BranchClass::IndirectJump, Addr::new(0x1000));
        b.install(pc, BranchClass::IndirectJump, Addr::new(0x2000));
        assert_eq!(b.lookup(pc).unwrap().target, Addr::new(0x2000));
    }
}
