use fdip_types::{Addr, BranchClass};

use crate::assoc::SetAssoc;
use crate::config::{BtbConfig, TagScheme};
use crate::tag::{compress16, index_and_full_tag};
use crate::traits::{Btb, BtbHit};

/// An instruction-granular, set-associative BTB storing full target
/// addresses.
///
/// Entry layout for storage accounting: `tag + type(2) + target(46)` bits.
/// With [`TagScheme::Compressed16`], distinct branches whose compressed
/// tags collide alias to one another — lookups then return the other
/// branch's target, modeling the misfetch cost of tag compression.
#[derive(Clone, Debug)]
pub struct ConventionalBtb {
    config: BtbConfig,
    storage: SetAssoc<Entry>,
}

#[derive(Copy, Clone, Debug)]
struct Entry {
    class: BranchClass,
    target: Addr,
}

impl ConventionalBtb {
    /// Creates an empty BTB with the given geometry.
    pub fn new(config: BtbConfig) -> Self {
        ConventionalBtb {
            config,
            storage: SetAssoc::new(config.sets, config.ways),
        }
    }

    /// The geometry this BTB was built with.
    pub fn config(&self) -> &BtbConfig {
        &self.config
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Returns `true` if the BTB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    fn key(&self, pc: Addr) -> (usize, u64) {
        let (index, full) = index_and_full_tag(pc, self.config.sets);
        let tag = match self.config.tag_scheme {
            TagScheme::Full => full,
            TagScheme::Compressed16 => compress16(full),
        };
        (index, tag)
    }
}

impl Btb for ConventionalBtb {
    fn lookup(&mut self, pc: Addr) -> Option<BtbHit> {
        let (index, tag) = self.key(pc);
        self.storage.get(index, tag).map(|e| BtbHit {
            class: e.class,
            target: e.target,
        })
    }

    fn install(&mut self, pc: Addr, class: BranchClass, target: Addr) {
        let (index, tag) = self.key(pc);
        self.storage.insert(index, tag, Entry { class, target });
    }

    fn invalidate(&mut self, pc: Addr) {
        let (index, tag) = self.key(pc);
        self.storage.remove(index, tag);
    }

    fn storage_bits(&self) -> u64 {
        let entry_bits = self.config.tag_bits() as u64 + 2 + 46;
        self.config.entries() as u64 * entry_bits
    }

    fn capacity(&self) -> usize {
        self.config.entries()
    }

    fn name(&self) -> &'static str {
        match self.config.tag_scheme {
            TagScheme::Full => "conventional",
            TagScheme::Compressed16 => "conventional-c16",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb(sets: usize, ways: usize, scheme: TagScheme) -> ConventionalBtb {
        ConventionalBtb::new(BtbConfig::new(sets, ways, scheme))
    }

    #[test]
    fn install_then_lookup() {
        let mut b = btb(64, 4, TagScheme::Full);
        let pc = Addr::new(0x4000);
        b.install(pc, BranchClass::CondDirect, Addr::new(0x4100));
        let hit = b.lookup(pc).unwrap();
        assert_eq!(hit.class, BranchClass::CondDirect);
        assert_eq!(hit.target, Addr::new(0x4100));
    }

    #[test]
    fn update_changes_target_without_growing() {
        let mut b = btb(64, 4, TagScheme::Full);
        let pc = Addr::new(0x4000);
        b.install(pc, BranchClass::IndirectJump, Addr::new(0x1000));
        b.install(pc, BranchClass::IndirectJump, Addr::new(0x2000));
        assert_eq!(b.len(), 1);
        assert_eq!(b.lookup(pc).unwrap().target, Addr::new(0x2000));
    }

    #[test]
    fn full_tags_never_alias() {
        let mut b = btb(4, 1, TagScheme::Full);
        // Two pcs with the same set index.
        let a = Addr::from_inst_index(1);
        let c = Addr::from_inst_index(1 + 4);
        b.install(a, BranchClass::Call, Addr::new(0x100));
        assert!(b.lookup(c).is_none());
    }

    #[test]
    fn capacity_evictions_respect_lru() {
        let mut b = btb(1, 2, TagScheme::Full);
        let p1 = Addr::from_inst_index(1);
        let p2 = Addr::from_inst_index(2);
        let p3 = Addr::from_inst_index(3);
        b.install(p1, BranchClass::Call, Addr::new(0x10));
        b.install(p2, BranchClass::Call, Addr::new(0x20));
        b.lookup(p1); // p2 becomes LRU
        b.install(p3, BranchClass::Call, Addr::new(0x30));
        assert!(b.lookup(p1).is_some());
        assert!(b.lookup(p2).is_none());
        assert!(b.lookup(p3).is_some());
    }

    #[test]
    fn compressed_tags_can_alias() {
        let mut b = btb(1, 1, TagScheme::Compressed16);
        // With one set, the tag is the whole instruction index; find two
        // addresses whose compressed tags collide: the xor-fold cancels
        // pairs of identical bytes above bit 8.
        let a = Addr::from_inst_index(0x42);
        let c = Addr::from_inst_index(0x42 + (0x01_01 << 8));
        b.install(a, BranchClass::Call, Addr::new(0xaaa0));
        let hit = b.lookup(c).expect("aliased lookup must hit");
        assert_eq!(hit.target, Addr::new(0xaaa0), "alias returns wrong target");
    }

    #[test]
    fn storage_matches_paper_entry_arithmetic() {
        // 128-set, 8-way, full tags: (39 + 2 + 46) * 1024 bits.
        let b = btb(128, 8, TagScheme::Full);
        assert_eq!(b.storage_bits(), (39 + 2 + 46) * 1024);
        // Compressed: (16 + 2 + 46) * 1024.
        let b = btb(128, 8, TagScheme::Compressed16);
        assert_eq!(b.storage_bits(), (16 + 2 + 46) * 1024);
    }

    #[test]
    fn invalidate_removes() {
        let mut b = btb(8, 2, TagScheme::Full);
        let pc = Addr::new(0x40);
        b.install(pc, BranchClass::Return, Addr::new(0x50));
        b.invalidate(pc);
        assert!(b.lookup(pc).is_none());
        assert!(b.is_empty());
    }
}
