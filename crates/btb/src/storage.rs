//! Storage-accounting tables: the arithmetic behind the FDIP-X study's
//! Table I (basic-block BTB) and Table II (partitioned-BTB distribution),
//! reproduced exactly so experiments X2/X3 can print them.

use fdip_types::OffsetClass;

use crate::partitioned::PartitionConfig;
use crate::tag::full_tag_bits;

/// One row of the basic-block BTB storage table (Table I).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct BbBtbRow {
    /// Total entries.
    pub entries: usize,
    /// Number of sets (8-way).
    pub sets: usize,
    /// Associativity (always 8 in the published table).
    pub ways: usize,
    /// Bits per entry: `tag + type(2) + size(5) + target(46)`.
    pub entry_bits: u32,
    /// Total storage in bytes.
    pub total_bytes: u64,
}

impl BbBtbRow {
    /// Storage in kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.total_bytes as f64 / 1024.0
    }
}

/// Computes one Table I row for an 8-way basic-block BTB with `entries`
/// entries.
///
/// # Panics
///
/// Panics if `entries` is not a multiple of 8.
pub fn bb_btb_row(entries: usize) -> BbBtbRow {
    assert!(
        entries.is_multiple_of(8),
        "published table uses 8-way organizations"
    );
    let sets = entries / 8;
    let entry_bits = full_tag_bits(sets) + 2 + 5 + 46;
    BbBtbRow {
        entries,
        sets,
        ways: 8,
        entry_bits,
        total_bytes: entries as u64 * entry_bits as u64 / 8,
    }
}

/// The published Table I: 1K–32K-entry basic-block BTBs.
pub fn bb_btb_table() -> Vec<BbBtbRow> {
    [1024, 2048, 4096, 8192, 16384, 32768]
        .into_iter()
        .map(bb_btb_row)
        .collect()
}

/// One bank row of the FDIP-X distribution table (Table II).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FdipxRow {
    /// Offset class of the bank.
    pub bank: OffsetClass,
    /// Bits per entry: `16 + 2 + offset width`.
    pub entry_bits: u32,
    /// Entries in this bank.
    pub entries: usize,
    /// Bank storage in bytes.
    pub bytes: u64,
}

/// One budget row of Table II: the FDIP-X configuration matched to a
/// basic-block BTB budget.
#[derive(Clone, PartialEq, Debug)]
pub struct FdipxBudget {
    /// The equivalent basic-block BTB entry count.
    pub bb_entries: usize,
    /// The basic-block BTB's storage (the budget), bytes.
    pub budget_bytes: u64,
    /// The four bank rows.
    pub rows: [FdipxRow; 4],
    /// The partition configuration realizing this row.
    pub config: PartitionConfig,
}

impl FdipxBudget {
    /// Total FDIP-X storage in bytes (≤ the budget).
    pub fn total_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.bytes).sum()
    }

    /// Total FDIP-X entries across banks.
    pub fn total_entries(&self) -> usize {
        self.rows.iter().map(|r| r.entries).sum()
    }

    /// Entry-count advantage over the equal-budget basic-block BTB.
    pub fn entry_ratio(&self) -> f64 {
        self.total_entries() as f64 / self.bb_entries as f64
    }
}

/// Computes one Table II budget row for the basic-block budget of
/// `bb_entries` entries.
pub fn fdipx_budget(bb_entries: usize) -> FdipxBudget {
    let config = PartitionConfig::from_bb_entries(bb_entries);
    let rows = core::array::from_fn(|i| {
        let bank = OffsetClass::ALL[i];
        let entry_bits = 16 + 2 + bank.bits();
        let entries = config.entries[i];
        FdipxRow {
            bank,
            entry_bits,
            entries,
            bytes: entries as u64 * entry_bits as u64 / 8,
        }
    });
    FdipxBudget {
        bb_entries,
        budget_bytes: bb_btb_row(bb_entries).total_bytes,
        rows,
        config,
    }
}

/// The published Table II: FDIP-X distributions for every Table I budget.
pub fn fdipx_table() -> Vec<FdipxBudget> {
    [1024, 2048, 4096, 8192, 16384, 32768]
        .into_iter()
        .map(fdipx_budget)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_matches_published_numbers() {
        let table = bb_btb_table();
        let expect = [
            (1024, 128, 92, 11.5),
            (2048, 256, 91, 22.75),
            (4096, 512, 90, 45.0),
            (8192, 1024, 89, 89.0),
            (16384, 2048, 88, 176.0),
            (32768, 4096, 87, 348.0),
        ];
        for (row, (entries, sets, bits, kb)) in table.iter().zip(expect) {
            assert_eq!(row.entries, entries);
            assert_eq!(row.sets, sets);
            assert_eq!(row.ways, 8);
            assert_eq!(row.entry_bits, bits, "entries {entries}");
            assert!(
                (row.total_kb() - kb).abs() < 0.01,
                "entries {entries}: {} vs {kb}",
                row.total_kb()
            );
        }
    }

    #[test]
    fn table_two_matches_published_numbers() {
        let b = fdipx_budget(1024);
        assert_eq!(b.rows[0].entries, 768);
        assert_eq!(b.rows[0].entry_bits, 26);
        assert_eq!(b.rows[3].entries, 112);
        assert_eq!(b.rows[3].entry_bits, 64);
        // Published total: 10.06 KB for the 11.5 KB budget.
        let kb = b.total_bytes() as f64 / 1024.0;
        assert!((kb - 10.06).abs() < 0.05, "{kb}");
        assert!(b.total_bytes() <= b.budget_bytes);
    }

    #[test]
    fn fdipx_always_fits_within_budget() {
        for b in fdipx_table() {
            assert!(
                b.total_bytes() <= b.budget_bytes,
                "bb_entries {}: {} > {}",
                b.bb_entries,
                b.total_bytes(),
                b.budget_bytes
            );
        }
    }

    #[test]
    fn entry_ratio_is_about_2_36() {
        // The paper: "FDIP-X BTBs together provide about 2.36x entries".
        for b in fdipx_table() {
            let r = b.entry_ratio();
            assert!((2.3..2.45).contains(&r), "ratio {r}");
        }
    }

    #[test]
    #[should_panic(expected = "8-way")]
    fn non_multiple_of_eight_rejected() {
        let _ = bb_btb_row(1001);
    }
}
