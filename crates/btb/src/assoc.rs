//! Generic set-associative storage with true-LRU replacement, shared by all
//! BTB organizations in this crate.

/// A set-associative array mapping `u64` keys to values `V`.
///
/// Keys are split into a set index and a tag by the caller (via the
/// `index`/`tag` arguments), so different tag schemes (full, compressed)
/// reuse the same replacement machinery. Each set keeps its ways ordered
/// most-recently-used first; `get` promotes, `insert` evicts the LRU way.
///
/// # Examples
///
/// ```
/// use fdip_btb::SetAssoc;
///
/// let mut sa: SetAssoc<&'static str> = SetAssoc::new(2, 2);
/// sa.insert(0, 10, "a");
/// sa.insert(0, 11, "b");
/// sa.insert(0, 12, "c"); // evicts "a" (LRU)
/// assert!(sa.get(0, 10).is_none());
/// assert_eq!(sa.get(0, 11), Some(&mut "b"));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssoc<V> {
    sets: Vec<Vec<(u64, V)>>,
    ways: usize,
}

impl<V> SetAssoc<V> {
    /// Creates storage with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0, "need at least one set");
        assert!(ways > 0, "need at least one way");
        SetAssoc {
            sets: (0..num_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `(index, tag)`, promoting the entry to MRU on hit.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&mut self, index: usize, tag: u64) -> Option<&mut V> {
        let set = &mut self.sets[index];
        let pos = set.iter().position(|(t, _)| *t == tag)?;
        // Promote to MRU (front).
        let entry = set.remove(pos);
        set.insert(0, entry);
        Some(&mut set[0].1)
    }

    /// Looks up without disturbing recency (a "probe").
    pub fn peek(&self, index: usize, tag: u64) -> Option<&V> {
        self.sets[index]
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, v)| v)
    }

    /// Inserts (or replaces) the value for `(index, tag)` as MRU, evicting
    /// the LRU way if the set is full. Returns the evicted `(tag, value)`,
    /// if any.
    pub fn insert(&mut self, index: usize, tag: u64, value: V) -> Option<(u64, V)> {
        let ways = self.ways;
        let set = &mut self.sets[index];
        if let Some(pos) = set.iter().position(|(t, _)| *t == tag) {
            set.remove(pos);
            set.insert(0, (tag, value));
            return None;
        }
        let evicted = if set.len() == ways { set.pop() } else { None };
        set.insert(0, (tag, value));
        evicted
    }

    /// Removes the entry for `(index, tag)`, returning its value.
    pub fn remove(&mut self, index: usize, tag: u64) -> Option<V> {
        let set = &mut self.sets[index];
        let pos = set.iter().position(|(t, _)| *t == tag)?;
        Some(set.remove(pos).1)
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over `(set_index, tag, value)` of all valid entries, in
    /// recency order within each set.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &V)> {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(i, set)| set.iter().map(move |(t, v)| (i, *t, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(1, 3);
        sa.insert(0, 1, 10);
        sa.insert(0, 2, 20);
        sa.insert(0, 3, 30);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(sa.get(0, 1), Some(&mut 10));
        let evicted = sa.insert(0, 4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert!(sa.get(0, 2).is_none());
        assert_eq!(sa.len(), 3);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(1, 2);
        sa.insert(0, 1, 10);
        sa.insert(0, 2, 20);
        assert_eq!(sa.peek(0, 1), Some(&10));
        // 1 is still LRU, so inserting evicts it.
        let evicted = sa.insert(0, 3, 30);
        assert_eq!(evicted, Some((1, 10)));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(1, 2);
        sa.insert(0, 1, 10);
        sa.insert(0, 2, 20);
        assert!(sa.insert(0, 1, 11).is_none(), "no eviction on update");
        assert_eq!(sa.get(0, 1), Some(&mut 11));
        assert_eq!(sa.len(), 2);
    }

    #[test]
    fn sets_are_independent() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(2, 1);
        sa.insert(0, 1, 10);
        sa.insert(1, 1, 99);
        assert_eq!(sa.get(0, 1), Some(&mut 10));
        assert_eq!(sa.get(1, 1), Some(&mut 99));
    }

    #[test]
    fn remove_and_clear() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(2, 2);
        sa.insert(0, 1, 10);
        sa.insert(1, 2, 20);
        assert_eq!(sa.remove(0, 1), Some(10));
        assert_eq!(sa.remove(0, 1), None);
        sa.clear();
        assert!(sa.is_empty());
    }

    #[test]
    fn never_exceeds_ways() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(4, 2);
        for k in 0..100u64 {
            sa.insert((k % 4) as usize, k, k as u32);
        }
        assert_eq!(sa.len(), 8);
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(2, 2);
        sa.insert(0, 1, 10);
        sa.insert(1, 2, 20);
        let mut seen: Vec<_> = sa.iter().map(|(i, t, v)| (i, t, *v)).collect();
        seen.sort();
        assert_eq!(seen, vec![(0, 1, 10), (1, 2, 20)]);
    }
}
