use crate::tag::{full_tag_bits, COMPRESSED_TAG_BITS};

/// Tagging scheme for a BTB.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TagScheme {
    /// Full tags: `46 - log2(sets)` bits; no aliasing.
    Full,
    /// FDIP-X 16-bit folded-XOR compressed tags; aliasing possible.
    Compressed16,
}

impl TagScheme {
    /// Stored tag width for a BTB with `num_sets` sets.
    pub fn tag_bits(self, num_sets: usize) -> u32 {
        match self {
            TagScheme::Full => full_tag_bits(num_sets),
            TagScheme::Compressed16 => COMPRESSED_TAG_BITS,
        }
    }
}

/// Geometry and tagging of a single BTB bank.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BtbConfig {
    /// Number of sets (need not be a power of two; see [`crate::tag`]).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Tagging scheme.
    pub tag_scheme: TagScheme,
}

impl BtbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize, tag_scheme: TagScheme) -> Self {
        assert!(sets > 0 && ways > 0, "btb geometry must be non-zero");
        BtbConfig {
            sets,
            ways,
            tag_scheme,
        }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Stored tag width.
    pub fn tag_bits(&self) -> u32 {
        self.tag_scheme.tag_bits(self.sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_is_sets_times_ways() {
        let c = BtbConfig::new(128, 8, TagScheme::Full);
        assert_eq!(c.entries(), 1024);
    }

    #[test]
    fn tag_bits_follow_scheme() {
        assert_eq!(BtbConfig::new(128, 8, TagScheme::Full).tag_bits(), 39);
        assert_eq!(
            BtbConfig::new(128, 8, TagScheme::Compressed16).tag_bits(),
            16
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_rejected() {
        let _ = BtbConfig::new(0, 8, TagScheme::Full);
    }
}
