use fdip_types::{Addr, BranchClass};

/// Payload returned by an instruction-granular BTB hit.
///
/// With compressed tags a hit may be an *alias* — the entry was installed by
/// a different branch — in which case `target` is wrong and the front-end
/// will discover the misfetch when the branch resolves. The BTB itself
/// cannot tell; that is the point of the tag-compression study.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BtbHit {
    /// Branch type stored in the entry.
    pub class: BranchClass,
    /// Predicted target reconstructed from the entry.
    pub target: Addr,
}

/// An instruction-granular branch target buffer.
///
/// Accessed with an instruction address; a hit means "this address is a
/// (taken-at-least-once) branch" and supplies its type and last target.
/// Implemented by [`ConventionalBtb`](crate::ConventionalBtb) and the
/// FDIP-X [`PartitionedBtb`](crate::PartitionedBtb); the front-end holds a
/// `Box<dyn Btb>` chosen by configuration.
pub trait Btb {
    /// Looks up `pc`, updating replacement state on hit.
    fn lookup(&mut self, pc: Addr) -> Option<BtbHit>;

    /// Installs (or updates) the entry for the branch at `pc`.
    fn install(&mut self, pc: Addr, class: BranchClass, target: Addr);

    /// Invalidates any entry for `pc` (used by ablations).
    fn invalidate(&mut self, pc: Addr);

    /// Total storage in bits, per the paper's entry-size accounting.
    fn storage_bits(&self) -> u64;

    /// Total entry capacity.
    fn capacity(&self) -> usize;

    /// Short stable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BtbConfig, ConventionalBtb, PartitionConfig, PartitionedBtb, TagScheme};

    #[test]
    fn trait_is_object_safe_over_all_organizations() {
        let btbs: Vec<Box<dyn Btb>> = vec![
            Box::new(ConventionalBtb::new(BtbConfig::new(16, 2, TagScheme::Full))),
            Box::new(PartitionedBtb::new(PartitionConfig::for_entries(
                16, 16, 16, 8, 2,
            ))),
        ];
        for mut btb in btbs {
            let pc = Addr::new(0x100);
            assert!(btb.lookup(pc).is_none());
            btb.install(pc, BranchClass::Call, Addr::new(0x200));
            assert!(btb.lookup(pc).is_some());
            btb.invalidate(pc);
            assert!(btb.lookup(pc).is_none());
            assert!(btb.storage_bits() > 0);
            assert!(btb.capacity() > 0);
            assert!(!btb.name().is_empty());
        }
    }
}
