use fdip_types::{Addr, BranchClass};

use crate::assoc::SetAssoc;
use crate::config::{BtbConfig, TagScheme};
use crate::tag::{compress16, index_and_full_tag};

/// Maximum representable basic-block length: the size field is 5 bits.
pub const MAX_BLOCK_LEN: u32 = 31;

/// Payload of a basic-block BTB hit: a block of `len` instructions starting
/// at the looked-up address, terminated by a branch of `class` targeting
/// `target`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BlockEntry {
    /// Instructions in the block, including the terminating branch (1..=31).
    pub len: u32,
    /// Class of the terminating branch.
    pub class: BranchClass,
    /// Target of the terminating branch.
    pub target: Addr,
}

impl BlockEntry {
    /// PC of the terminating branch for a block starting at `start`.
    pub fn branch_pc(&self, start: Addr) -> Addr {
        start.add_insts(self.len as u64 - 1)
    }

    /// Fall-through address for a block starting at `start`.
    pub fn fall_through(&self, start: Addr) -> Addr {
        start.add_insts(self.len as u64)
    }
}

/// The basic-block-oriented BTB (FTB) used by the original 1999 FDIP design.
///
/// Keyed by basic-block *start* address rather than branch address. Each hit
/// locates the next branch (via the stored block length) in a single lookup,
/// at the cost of a 5-bit size field per entry — the storage overhead the
/// FDIP-X extension eliminates.
///
/// Entry layout for storage accounting: `tag + type(2) + size(5) +
/// target(46)` bits, matching the paper's Figure 2 / Table I.
#[derive(Clone, Debug)]
pub struct BasicBlockBtb {
    config: BtbConfig,
    storage: SetAssoc<BlockEntry>,
}

impl BasicBlockBtb {
    /// Creates an empty basic-block BTB.
    pub fn new(config: BtbConfig) -> Self {
        BasicBlockBtb {
            config,
            storage: SetAssoc::new(config.sets, config.ways),
        }
    }

    /// The geometry this BTB was built with.
    pub fn config(&self) -> &BtbConfig {
        &self.config
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Returns `true` if the BTB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    fn key(&self, start: Addr) -> (usize, u64) {
        let (index, full) = index_and_full_tag(start, self.config.sets);
        let tag = match self.config.tag_scheme {
            TagScheme::Full => full,
            TagScheme::Compressed16 => compress16(full),
        };
        (index, tag)
    }

    /// Looks up the basic block starting at `start`.
    pub fn lookup(&mut self, start: Addr) -> Option<BlockEntry> {
        let (index, tag) = self.key(start);
        self.storage.get(index, tag).copied()
    }

    /// Installs the block starting at `start`: `len` instructions ending in
    /// a `class` branch to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or exceeds [`MAX_BLOCK_LEN`].
    pub fn install(&mut self, start: Addr, len: u32, class: BranchClass, target: Addr) {
        assert!(
            (1..=MAX_BLOCK_LEN).contains(&len),
            "block length must fit the 5-bit size field"
        );
        let (index, tag) = self.key(start);
        self.storage
            .insert(index, tag, BlockEntry { len, class, target });
    }

    /// Invalidates the block starting at `start`.
    pub fn invalidate(&mut self, start: Addr) {
        let (index, tag) = self.key(start);
        self.storage.remove(index, tag);
    }

    /// Total storage in bits: `(tag + 2 + 5 + 46) × entries`.
    pub fn storage_bits(&self) -> u64 {
        let entry_bits = self.config.tag_bits() as u64 + 2 + 5 + 46;
        self.config.entries() as u64 * entry_bits
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.config.entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftb() -> BasicBlockBtb {
        BasicBlockBtb::new(BtbConfig::new(64, 4, TagScheme::Full))
    }

    #[test]
    fn block_geometry_helpers() {
        let e = BlockEntry {
            len: 5,
            class: BranchClass::CondDirect,
            target: Addr::new(0x9000),
        };
        let start = Addr::new(0x1000);
        assert_eq!(e.branch_pc(start), Addr::new(0x1010));
        assert_eq!(e.fall_through(start), Addr::new(0x1014));
    }

    #[test]
    fn install_lookup_roundtrip() {
        let mut b = ftb();
        let start = Addr::new(0x2000);
        b.install(start, 7, BranchClass::Call, Addr::new(0x8000));
        let e = b.lookup(start).unwrap();
        assert_eq!(e.len, 7);
        assert_eq!(e.class, BranchClass::Call);
        assert_eq!(e.target, Addr::new(0x8000));
    }

    #[test]
    fn lookup_misses_on_non_block_start() {
        let mut b = ftb();
        b.install(Addr::new(0x2000), 7, BranchClass::Call, Addr::new(0x8000));
        // The FTB only hits on the exact block start, not interior pcs.
        assert!(b.lookup(Addr::new(0x2004)).is_none());
    }

    #[test]
    fn storage_matches_table_one() {
        // Table I row 1: 1K entries, 128-set 8-way, 92-bit entries, 11.5KB.
        let b = BasicBlockBtb::new(BtbConfig::new(128, 8, TagScheme::Full));
        assert_eq!(b.storage_bits(), 92 * 1024);
        assert_eq!(b.storage_bits() / 8, 11_776); // 11.5 KB
    }

    #[test]
    #[should_panic(expected = "5-bit size field")]
    fn oversized_block_rejected() {
        let mut b = ftb();
        b.install(Addr::new(0x2000), 32, BranchClass::Call, Addr::new(0x8000));
    }

    #[test]
    #[should_panic(expected = "5-bit size field")]
    fn zero_length_block_rejected() {
        let mut b = ftb();
        b.install(Addr::new(0x2000), 0, BranchClass::Call, Addr::new(0x8000));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut b = ftb();
        b.install(Addr::new(0x2000), 3, BranchClass::Return, Addr::new(0x10));
        b.invalidate(Addr::new(0x2000));
        assert!(b.lookup(Addr::new(0x2000)).is_none());
    }
}
