use fdip_types::{Addr, BranchClass, OffsetClass};

use crate::assoc::SetAssoc;
use crate::config::TagScheme;
use crate::tag::{compress16, full_tag_bits, index_and_full_tag};
use crate::traits::{Btb, BtbHit};

/// Geometry of the FDIP-X partitioned BTB: one bank per offset class.
///
/// The canonical sizing rule (Table II of the FDIP-X study) gives the three
/// narrow banks ¾ of the equivalent basic-block BTB's entry count each, and
/// the 46-bit bank 7/64 of it — see
/// [`PartitionConfig::from_bb_entries`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PartitionConfig {
    /// Entries in the 8-, 13-, 23-, and 46-bit-offset banks.
    pub entries: [usize; 4],
    /// Associativity of every bank.
    pub ways: usize,
    /// Tag scheme (FDIP-X proper uses 16-bit compressed tags; full tags are
    /// the ablation of experiment X6).
    pub tag_scheme: TagScheme,
}

impl PartitionConfig {
    /// Creates a configuration with explicit per-bank entry counts.
    ///
    /// # Panics
    ///
    /// Panics if any bank is smaller than `ways` or `ways` is zero.
    pub fn for_entries(e8: usize, e13: usize, e23: usize, e46: usize, ways: usize) -> Self {
        let entries = [e8, e13, e23, e46];
        assert!(ways > 0, "associativity must be non-zero");
        for e in entries {
            assert!(e >= ways, "bank must hold at least one set");
        }
        PartitionConfig {
            entries,
            ways,
            tag_scheme: TagScheme::Compressed16,
        }
    }

    /// The published FDIP-X sizing for a storage budget equivalent to a
    /// basic-block BTB with `bb_entries` entries: the 8-, 13-, and 23-bit
    /// banks get `¾ × bb_entries` entries each and the 46-bit bank gets
    /// `7/64 × bb_entries`, at 6-way associativity.
    ///
    /// # Examples
    ///
    /// ```
    /// use fdip_btb::PartitionConfig;
    ///
    /// let c = PartitionConfig::from_bb_entries(1024);
    /// assert_eq!(c.entries, [768, 768, 768, 112]);
    /// ```
    pub fn from_bb_entries(bb_entries: usize) -> Self {
        let main = bb_entries * 3 / 4;
        let wide = bb_entries * 7 / 64;
        PartitionConfig::for_entries(main, main, main, wide.max(6), 6)
    }

    /// Switches the tag scheme (for the tag-compression ablation).
    pub fn with_tag_scheme(mut self, tag_scheme: TagScheme) -> Self {
        self.tag_scheme = tag_scheme;
        self
    }

    /// Total entries across all banks.
    pub fn total_entries(&self) -> usize {
        self.entries.iter().sum()
    }
}

/// The FDIP-X partitioned BTB: four physically-separate banks that differ
/// only in offset-field width, presenting one logical BTB.
///
/// Branches are installed in the narrowest bank whose offset field can
/// encode their target offset; lookups query all banks in parallel (modeled
/// as narrowest-first priority). Targets are reconstructed as
/// `pc + offset`, so an entry costs `tag + type(2) + offset_width` bits —
/// the storage saving over a conventional BTB's 46-bit target field.
#[derive(Clone, Debug)]
pub struct PartitionedBtb {
    config: PartitionConfig,
    banks: [Bank; 4],
}

#[derive(Clone, Debug)]
struct Bank {
    storage: SetAssoc<Entry>,
    sets: usize,
}

#[derive(Copy, Clone, Debug)]
struct Entry {
    class: BranchClass,
    /// Signed target offset in instructions.
    offset: i64,
}

impl PartitionedBtb {
    /// Creates an empty partitioned BTB.
    pub fn new(config: PartitionConfig) -> Self {
        let banks = config.entries.map(|entries| {
            let sets = (entries / config.ways).max(1);
            Bank {
                storage: SetAssoc::new(sets, config.ways),
                sets,
            }
        });
        PartitionedBtb { config, banks }
    }

    /// The configuration this BTB was built with.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// Number of valid entries in the bank for `class`.
    pub fn bank_len(&self, class: OffsetClass) -> usize {
        self.banks[bank_index(class)].storage.len()
    }

    fn key(&self, bank: usize, pc: Addr) -> (usize, u64) {
        let (index, full) = index_and_full_tag(pc, self.banks[bank].sets);
        let tag = match self.config.tag_scheme {
            TagScheme::Full => full,
            TagScheme::Compressed16 => compress16(full),
        };
        (index, tag)
    }
}

fn bank_index(class: OffsetClass) -> usize {
    match class {
        OffsetClass::W8 => 0,
        OffsetClass::W13 => 1,
        OffsetClass::W23 => 2,
        OffsetClass::W46 => 3,
    }
}

impl Btb for PartitionedBtb {
    fn lookup(&mut self, pc: Addr) -> Option<BtbHit> {
        for bank in 0..4 {
            let (index, tag) = self.key(bank, pc);
            if let Some(entry) = self.banks[bank].storage.get(index, tag) {
                let entry = *entry;
                let raw = pc.raw() as i64 + entry.offset * 4;
                debug_assert!(raw >= 0, "reconstructed target underflow");
                return Some(BtbHit {
                    class: entry.class,
                    target: Addr::new(raw as u64),
                });
            }
        }
        None
    }

    fn install(&mut self, pc: Addr, class: BranchClass, target: Addr) {
        let offset = pc.insts_to(target);
        let offset_class = OffsetClass::for_offset(offset);
        let bank = bank_index(offset_class);
        let (index, tag) = self.key(bank, pc);
        // A branch whose offset class changed (indirects) may leave a stale
        // entry in another bank; narrowest-first lookup priority means the
        // fresher, wider entry can be shadowed. Remove stale aliases first.
        for other in 0..4 {
            if other != bank {
                let (i, t) = self.key(other, pc);
                self.banks[other].storage.remove(i, t);
            }
        }
        self.banks[bank]
            .storage
            .insert(index, tag, Entry { class, offset });
    }

    fn invalidate(&mut self, pc: Addr) {
        for bank in 0..4 {
            let (index, tag) = self.key(bank, pc);
            self.banks[bank].storage.remove(index, tag);
        }
    }

    fn storage_bits(&self) -> u64 {
        OffsetClass::ALL
            .iter()
            .enumerate()
            .map(|(i, class)| {
                let tag_bits = match self.config.tag_scheme {
                    TagScheme::Full => full_tag_bits(self.banks[i].sets),
                    TagScheme::Compressed16 => 16,
                } as u64;
                self.config.entries[i] as u64 * (tag_bits + 2 + class.bits() as u64)
            })
            .sum()
    }

    fn capacity(&self) -> usize {
        self.config.total_entries()
    }

    fn name(&self) -> &'static str {
        match self.config.tag_scheme {
            TagScheme::Compressed16 => "fdipx",
            TagScheme::Full => "fdipx-fulltag",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PartitionedBtb {
        PartitionedBtb::new(PartitionConfig::for_entries(32, 32, 32, 8, 2))
    }

    #[test]
    fn short_offset_routes_to_narrow_bank() {
        let mut b = small();
        let pc = Addr::new(0x1000);
        b.install(pc, BranchClass::CondDirect, pc.add_insts(10));
        assert_eq!(b.bank_len(OffsetClass::W8), 1);
        assert_eq!(b.bank_len(OffsetClass::W46), 0);
        assert_eq!(b.lookup(pc).unwrap().target, pc.add_insts(10));
    }

    #[test]
    fn long_offset_routes_to_wide_bank() {
        let mut b = small();
        let pc = Addr::new(0x1000);
        let target = Addr::new(0x1000 + (1u64 << 30));
        b.install(pc, BranchClass::Call, target);
        assert_eq!(b.bank_len(OffsetClass::W46), 1);
        assert_eq!(b.lookup(pc).unwrap().target, target);
    }

    #[test]
    fn backward_offsets_reconstruct_correctly() {
        let mut b = small();
        let pc = Addr::new(0x9000);
        let target = Addr::new(0x8000); // backward 0x400 insts
        b.install(pc, BranchClass::UncondDirect, target);
        assert_eq!(b.lookup(pc).unwrap().target, target);
    }

    #[test]
    fn reinstall_with_new_offset_class_replaces_stale_entry() {
        let mut b = small();
        let pc = Addr::new(0x1000);
        b.install(pc, BranchClass::IndirectJump, pc.add_insts(5)); // W8
        let far = Addr::new(0x1000 + (1 << 27));
        b.install(pc, BranchClass::IndirectJump, far); // W46
        assert_eq!(b.bank_len(OffsetClass::W8), 0, "stale entry removed");
        assert_eq!(b.lookup(pc).unwrap().target, far);
    }

    #[test]
    fn each_bank_has_independent_capacity() {
        let mut b = PartitionedBtb::new(PartitionConfig::for_entries(2, 2, 2, 2, 1));
        // Fill the W8 bank beyond capacity with conflicting short branches;
        // the other banks stay untouched.
        for i in 0..8u64 {
            let pc = Addr::from_inst_index(i * 2);
            b.install(pc, BranchClass::CondDirect, pc.add_insts(1));
        }
        assert!(b.bank_len(OffsetClass::W8) <= 2);
        assert_eq!(b.bank_len(OffsetClass::W13), 0);
    }

    #[test]
    fn table_two_sizing_rule() {
        for (bb, expect) in [
            (1024usize, [768, 768, 768, 112]),
            (2048, [1536, 1536, 1536, 224]),
            (8192, [6144, 6144, 6144, 896]),
            (32768, [24576, 24576, 24576, 3584]),
        ] {
            assert_eq!(PartitionConfig::from_bb_entries(bb).entries, expect);
        }
    }

    #[test]
    fn storage_matches_table_two_row_one() {
        // 11.5KB-budget row: 768×26 + 768×31 + 768×41 + 112×64 bits.
        let b = PartitionedBtb::new(PartitionConfig::from_bb_entries(1024));
        let expect = 768 * 26 + 768 * 31 + 768 * 41 + 112 * 64;
        assert_eq!(b.storage_bits(), expect);
        // ≈ 10.06 KB, as the paper's Table II reports.
        let kb = b.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 10.06).abs() < 0.05, "got {kb} KB");
    }

    #[test]
    fn full_tag_variant_costs_more() {
        let c16 = PartitionedBtb::new(PartitionConfig::from_bb_entries(1024));
        let full = PartitionedBtb::new(
            PartitionConfig::from_bb_entries(1024).with_tag_scheme(TagScheme::Full),
        );
        assert!(full.storage_bits() > c16.storage_bits());
    }

    #[test]
    fn invalidate_clears_all_banks() {
        let mut b = small();
        let pc = Addr::new(0x1000);
        b.install(pc, BranchClass::Call, pc.add_insts(3));
        b.invalidate(pc);
        assert!(b.lookup(pc).is_none());
    }
}
