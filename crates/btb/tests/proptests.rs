//! Property-based tests: the set-associative core against a reference
//! model, partitioned-BTB routing, and tag compression.

use std::collections::HashMap;

use fdip_btb::tag::compress16;
use fdip_btb::{
    Btb, BtbConfig, ConventionalBtb, PartitionConfig, PartitionedBtb, SetAssoc, TagScheme,
};
use fdip_types::{Addr, BranchClass, OffsetClass};
use proptest::prelude::*;

/// Reference model of a set-associative array: per-set map plus explicit
/// recency list.
#[derive(Default)]
struct Model {
    sets: HashMap<usize, Vec<(u64, u32)>>, // MRU first
}

impl Model {
    fn get(&mut self, ways: usize, index: usize, tag: u64) -> Option<u32> {
        let _ = ways;
        let set = self.sets.entry(index).or_default();
        let pos = set.iter().position(|(t, _)| *t == tag)?;
        let e = set.remove(pos);
        set.insert(0, e);
        Some(set[0].1)
    }

    fn insert(&mut self, ways: usize, index: usize, tag: u64, value: u32) {
        let set = self.sets.entry(index).or_default();
        if let Some(pos) = set.iter().position(|(t, _)| *t == tag) {
            set.remove(pos);
        } else if set.len() == ways {
            set.pop();
        }
        set.insert(0, (tag, value));
    }
}

#[derive(Clone, Debug)]
enum AssocOp {
    Get { index: u8, tag: u8 },
    Insert { index: u8, tag: u8, value: u32 },
    Remove { index: u8, tag: u8 },
}

fn assoc_op() -> impl Strategy<Value = AssocOp> {
    prop_oneof![
        (0u8..4, 0u8..16).prop_map(|(index, tag)| AssocOp::Get { index, tag }),
        (0u8..4, 0u8..16, any::<u32>()).prop_map(|(index, tag, value)| AssocOp::Insert {
            index,
            tag,
            value
        }),
        (0u8..4, 0u8..16).prop_map(|(index, tag)| AssocOp::Remove { index, tag }),
    ]
}

proptest! {
    #[test]
    fn set_assoc_matches_reference_model(ops in prop::collection::vec(assoc_op(), 0..200)) {
        let ways = 3;
        let mut sa: SetAssoc<u32> = SetAssoc::new(4, ways);
        let mut model = Model::default();
        for op in ops {
            match op {
                AssocOp::Get { index, tag } => {
                    let got = sa.get(index as usize, tag as u64).map(|v| *v);
                    let want = model.get(ways, index as usize, tag as u64);
                    prop_assert_eq!(got, want);
                }
                AssocOp::Insert { index, tag, value } => {
                    sa.insert(index as usize, tag as u64, value);
                    model.insert(ways, index as usize, tag as u64, value);
                }
                AssocOp::Remove { index, tag } => {
                    let got = sa.remove(index as usize, tag as u64);
                    let set = model.sets.entry(index as usize).or_default();
                    let want = set
                        .iter()
                        .position(|(t, _)| *t == tag as u64)
                        .map(|p| set.remove(p).1);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert!(sa.len() <= sa.capacity());
        }
    }

    #[test]
    fn conventional_btb_lookup_after_install_with_full_tags(
        pcs in prop::collection::vec(0u64..1 << 30, 1..40),
    ) {
        let mut btb = ConventionalBtb::new(BtbConfig::new(1 << 10, 8, TagScheme::Full));
        for &i in &pcs {
            let pc = Addr::from_inst_index(i);
            btb.install(pc, BranchClass::CondDirect, pc.add_insts(1));
        }
        // With 8K-entry capacity and ≤40 installs, nothing can be evicted
        // unless >8 pcs share one of 1024 sets — possible but vanishingly
        // rare for this input range; check the most recent install instead.
        let last = Addr::from_inst_index(*pcs.last().unwrap());
        let hit = btb.lookup(last).expect("most recent install must hit");
        prop_assert_eq!(hit.target, last.add_insts(1));
    }

    #[test]
    fn partitioned_routing_matches_offset_class(
        pc_idx in 1u64..1 << 40,
        offset in -(1i64 << 35)..(1i64 << 35),
    ) {
        let target_idx = pc_idx as i64 + offset;
        prop_assume!(target_idx >= 0);
        let pc = Addr::from_inst_index(pc_idx);
        let target = Addr::from_inst_index(target_idx as u64);
        let mut btb = PartitionedBtb::new(
            PartitionConfig::for_entries(64, 64, 64, 64, 4).with_tag_scheme(TagScheme::Full),
        );
        btb.install(pc, BranchClass::UncondDirect, target);
        let class = OffsetClass::for_offset(offset);
        prop_assert_eq!(btb.bank_len(class), 1, "offset {} routed wrong", offset);
        let hit = btb.lookup(pc).expect("hit");
        prop_assert_eq!(hit.target, target, "target reconstruction");
    }

    #[test]
    fn compress16_is_pure_and_16_bit(tag in any::<u64>()) {
        let c = compress16(tag);
        prop_assert!(c < 1 << 16);
        prop_assert_eq!(c, compress16(tag));
        prop_assert_eq!(c & 0xff, tag & 0xff);
    }

    #[test]
    fn storage_bits_monotone_in_entries(log2 in 7usize..13) {
        let small = PartitionedBtb::new(PartitionConfig::from_bb_entries(1 << log2));
        let large = PartitionedBtb::new(PartitionConfig::from_bb_entries(1 << (log2 + 1)));
        prop_assert!(large.storage_bits() > small.storage_bits());
    }
}
