//! Trust-boundary tests for the trace codecs.
//!
//! `fdip-serve` (and the CLI) deserialize byte streams an attacker can
//! shape arbitrarily, so every decoder must fail *cleanly* — a typed
//! `TraceError`, never a panic, hang, or unbounded allocation — on
//! truncated, corrupted, and adversarially-sized input.

use fdip_trace::{
    read_binary, read_text, write_binary, write_binary_compact, TraceBuilder, TraceError,
    MAX_NAME_LEN,
};
use fdip_types::Addr;

fn sample_bytes(compact: bool) -> Vec<u8> {
    let mut b = TraceBuilder::new("boundary", Addr::new(0x1000));
    b.plain(5);
    b.cond(true, Addr::new(0x2000));
    b.plain(7);
    b.call(Addr::new(0x4000));
    b.plain(2);
    b.ret();
    b.plain(3);
    let t = b.finish();
    let mut buf = Vec::new();
    if compact {
        write_binary_compact(&mut buf, &t).unwrap();
    } else {
        write_binary(&mut buf, &t).unwrap();
    }
    buf
}

#[test]
fn every_truncation_point_errors_cleanly() {
    for compact in [false, true] {
        let buf = sample_bytes(compact);
        // Every proper prefix must produce an error, not a panic. (Cutting
        // inside the header or mid-record are both covered by sweeping all
        // lengths.)
        for cut in 0..buf.len() {
            match read_binary(&buf[..cut]) {
                Err(_) => {}
                Ok(t) => panic!("prefix of {cut} bytes decoded to {} instrs", t.len()),
            }
        }
        assert!(read_binary(&buf[..]).is_ok());
    }
}

#[test]
fn corrupted_magic_is_rejected() {
    let mut buf = sample_bytes(false);
    for i in 0..4 {
        let mut bad = buf.clone();
        bad[i] ^= 0x20;
        assert!(
            matches!(read_binary(&bad[..]), Err(TraceError::BadMagic { .. })),
            "byte {i}"
        );
    }
    // Unknown version right after valid magic.
    buf[4] = 0x7f;
    assert!(matches!(
        read_binary(&buf[..]),
        Err(TraceError::UnsupportedVersion { found: 0x7f })
    ));
}

#[test]
fn huge_claimed_name_length_does_not_allocate() {
    // Header claiming a ~2^60-byte name: must be rejected by the length
    // cap before any buffer is sized from it.
    let mut buf = b"FDTR\x01".to_vec();
    buf.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10]); // varint 2^60
    match read_binary(&buf[..]) {
        Err(TraceError::Corrupt { what, .. }) => assert_eq!(what, "trace name too long"),
        other => panic!("expected corrupt, got {other:?}"),
    }
}

#[test]
fn name_length_cap_is_exact() {
    // A name of exactly MAX_NAME_LEN bytes is fine; one byte more is not.
    let name = "n".repeat(MAX_NAME_LEN);
    let t = TraceBuilder::new(name.as_str(), Addr::new(0x100)).finish();
    let mut buf = Vec::new();
    write_binary(&mut buf, &t).unwrap();
    assert_eq!(read_binary(&buf[..]).unwrap().name().len(), MAX_NAME_LEN);
}

#[test]
fn overlength_varint_fields_are_corrupt() {
    // 11 continuation bytes can encode no u64: reject wherever a varint is
    // read (name length shown; the instruction count path goes through the
    // same reader).
    let mut buf = b"FDTR\x01".to_vec();
    buf.extend_from_slice(&[0x80u8; 11]);
    assert!(matches!(
        read_binary(&buf[..]),
        Err(TraceError::Corrupt {
            what: "varint too long",
            ..
        })
    ));

    // Same overlength varint in the *count* position.
    let mut buf = b"FDTR\x01\x00".to_vec(); // empty name
    buf.extend_from_slice(&[0x80u8; 11]);
    assert!(matches!(
        read_binary(&buf[..]),
        Err(TraceError::Corrupt {
            what: "varint too long",
            ..
        })
    ));
}

#[test]
fn huge_claimed_instruction_count_is_bounded_by_input() {
    // Claim u64::MAX instructions but supply none: the reader must hit
    // Truncated without trying to materialize the claimed count.
    let mut buf = b"FDTR\x01\x00".to_vec();
    buf.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
    assert!(matches!(read_binary(&buf[..]), Err(TraceError::Truncated)));
}

#[test]
fn flag_fuzzing_never_panics() {
    // Flip every flag byte of a valid stream through all 256 values; the
    // reader must always return (Ok or Err), never panic.
    for compact in [false, true] {
        let buf = sample_bytes(compact);
        for i in 5..buf.len() {
            for v in [0x07u8, 0x0f, 0x40, 0x60, 0x7f, 0xff] {
                let mut bad = buf.clone();
                bad[i] = v;
                let _ = read_binary(&bad[..]);
            }
        }
    }
}

#[test]
fn text_reader_rejects_garbage_lines() {
    for bad in [
        "zzzz qqqq",
        "1000 cond maybe 2000",
        "1000 upward T 2000",
        "1000 cond T nothex",
        "1000 cond",
        "🦀",
    ] {
        let input = format!("# fdip trace v1\n{bad}\n");
        assert!(
            matches!(read_text(input.as_bytes()), Err(TraceError::BadLine { .. })),
            "{bad:?}"
        );
    }
}

#[test]
fn text_reader_accepts_comments_and_blanks_only() {
    let t = read_text("# fdip trace v1\n\n# name: x\n\n".as_bytes()).unwrap();
    assert_eq!(t.len(), 0);
    assert_eq!(t.name(), "x");
}
