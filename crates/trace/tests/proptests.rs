//! Property-based tests for the trace crate: codec round-trips over
//! arbitrary well-formed traces, generator validity over arbitrary
//! configurations, and statistics consistency.

use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_trace::{
    read_binary, read_text, write_binary, write_text, Trace, TraceBuilder, TraceStats,
};
use fdip_types::Addr;
use proptest::prelude::*;

/// One abstract builder operation; a sequence of these describes a
/// well-formed trace by construction.
#[derive(Clone, Debug)]
enum Op {
    Plain(u32),
    CondTaken(u64),
    CondNotTaken(u64),
    Jump(u64),
    Call(u64),
    ICall(u64),
    Ret,
    IJump(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let target = 0u64..1 << 20;
    prop_oneof![
        (1u32..20).prop_map(Op::Plain),
        target.clone().prop_map(Op::CondTaken),
        target.clone().prop_map(Op::CondNotTaken),
        target.clone().prop_map(Op::Jump),
        target.clone().prop_map(Op::Call),
        target.clone().prop_map(Op::ICall),
        Just(Op::Ret),
        target.prop_map(Op::IJump),
    ]
}

fn build(ops: &[Op], start: u64) -> Trace {
    let mut b = TraceBuilder::new("prop", Addr::from_inst_index(start));
    for op in ops {
        match *op {
            Op::Plain(n) => {
                b.plain(n);
            }
            Op::CondTaken(t) => {
                b.cond(true, Addr::from_inst_index(t));
            }
            Op::CondNotTaken(t) => {
                b.cond(false, Addr::from_inst_index(t));
            }
            Op::Jump(t) => {
                b.jump(Addr::from_inst_index(t));
            }
            Op::Call(t) => {
                b.call(Addr::from_inst_index(t));
            }
            Op::ICall(t) => {
                b.icall(Addr::from_inst_index(t));
            }
            Op::Ret => {
                if b.call_depth() > 0 {
                    b.ret();
                }
            }
            Op::IJump(t) => {
                b.ijump(Addr::from_inst_index(t));
            }
        }
    }
    b.finish()
}

proptest! {
    #[test]
    fn builder_traces_are_always_valid(
        ops in prop::collection::vec(op_strategy(), 0..60),
        start in 0u64..1 << 20,
    ) {
        let t = build(&ops, start);
        prop_assert!(t.validate().is_ok());
    }

    #[test]
    fn binary_roundtrip(
        ops in prop::collection::vec(op_strategy(), 0..60),
        start in 0u64..1 << 20,
    ) {
        let t = build(&ops, start);
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn text_roundtrip(
        ops in prop::collection::vec(op_strategy(), 0..40),
        start in 0u64..1 << 20,
    ) {
        let t = build(&ops, start);
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        let back = read_text(&buf[..]).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn truncated_binary_never_panics(
        ops in prop::collection::vec(op_strategy(), 1..30),
        cut_fraction in 0.0f64..1.0,
    ) {
        let t = build(&ops, 0x100);
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        // Either it decodes a prefix-consistent trace or it errors; it must
        // never panic.
        let _ = read_binary(&buf[..cut]);
    }

    #[test]
    fn generator_output_is_valid_under_arbitrary_shapes(
        seed in 0u64..1_000,
        funcs in 2usize..40,
        levels in 1usize..6,
        modules in 1usize..4,
    ) {
        let t = GeneratorConfig::profile(Profile::Client)
            .seed(seed)
            .num_funcs(funcs)
            .call_levels(levels)
            .modules(modules)
            .target_len(1_500)
            .generate();
        prop_assert!(t.len() >= 1_500);
        prop_assert!(t.validate().is_ok());
    }

    #[test]
    fn stats_are_internally_consistent(
        seed in 0u64..200,
    ) {
        let t = GeneratorConfig::profile(Profile::MicroLoop)
            .seed(seed)
            .target_len(2_000)
            .generate();
        let s = TraceStats::measure(&t);
        prop_assert_eq!(s.len, t.len() as u64);
        // Footprint cannot exceed 4 bytes per dynamic instruction.
        prop_assert!(s.footprint_bytes <= 4 * s.len);
        // Every 64B block covers at least one unique instruction.
        prop_assert!(s.footprint_blocks_64b <= s.footprint_bytes / 4);
        // Taken branches are a subset of branches.
        prop_assert!(s.mix.total_taken() <= s.mix.total());
        // The offset histogram records exactly the dynamic taken branches.
        prop_assert_eq!(s.offsets.total(), s.mix.total_taken());
        prop_assert!(s.static_taken_branches <= s.static_branches);
    }
}
