//! LEB128-style variable-length integer encoding used by the binary trace
//! codec. Unsigned values are encoded 7 bits per byte, low bits first, with
//! the high bit of each byte marking continuation. Signed values are
//! zigzag-mapped first so small magnitudes of either sign stay short.

use std::io::{Read, Write};

use crate::TraceError;

/// Maximum encoded length of a u64 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Writes `value` as an unsigned varint.
pub fn write_u64<W: Write>(mut w: W, mut value: u64) -> Result<(), TraceError> {
    let mut buf = [0u8; MAX_VARINT_LEN];
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf[n] = byte;
            n += 1;
            break;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
    w.write_all(&buf[..n])?;
    Ok(())
}

/// Reads an unsigned varint.
///
/// # Errors
///
/// Returns [`TraceError::Truncated`] on EOF mid-value and
/// [`TraceError::Corrupt`] if the encoding exceeds 10 bytes (which cannot
/// occur for any u64).
pub fn read_u64<R: Read>(mut r: R) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 {
            return Err(TraceError::Corrupt {
                what: "varint too long",
                at_record: 0,
            });
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed value to unsigned (0, -1, 1, -2, 2 → 0, 1, 2, 3, 4).
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Writes `value` as a zigzag varint.
pub fn write_i64<W: Write>(w: W, value: i64) -> Result<(), TraceError> {
    write_u64(w, zigzag(value))
}

/// Reads a zigzag varint.
///
/// # Errors
///
/// Propagates the errors of [`read_u64`].
pub fn read_i64<R: Read>(r: R) -> Result<i64, TraceError> {
    read_u64(r).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(value: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, value).unwrap();
        read_u64(&buf[..]).unwrap()
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            assert_eq!(roundtrip_u(v), v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128).unwrap();
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-5i64, 0, 5, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [0i64, -1, 1, -300, 300, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v).unwrap();
            assert_eq!(read_i64(&buf[..]).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 30).unwrap();
        buf.pop();
        assert!(matches!(read_u64(&buf[..]), Err(TraceError::Truncated)));
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // 11 continuation bytes cannot encode any u64.
        let buf = [0x80u8; 11];
        assert!(matches!(
            read_u64(&buf[..]),
            Err(TraceError::Corrupt { .. })
        ));
    }
}
