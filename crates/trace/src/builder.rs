use fdip_types::{Addr, BranchClass, BranchRecord, TraceInstr};

use crate::Trace;

/// Incrementally constructs a well-formed execution trace.
///
/// The builder tracks the current PC and an internal call stack, so the
/// continuity invariant (each record's PC follows from its predecessor) and
/// call/return pairing hold by construction.
///
/// # Examples
///
/// ```
/// use fdip_trace::TraceBuilder;
/// use fdip_types::Addr;
///
/// let mut b = TraceBuilder::new("demo", Addr::new(0x1000));
/// b.plain(2);                 // two straight-line instructions
/// b.call(Addr::new(0x4000));  // call a function…
/// b.plain(1);
/// b.ret();                    // …which returns to the call site + 4
/// b.plain(1);
/// let trace = b.finish();
/// assert_eq!(trace.len(), 6);
/// trace.validate().unwrap();
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    name: String,
    pc: Addr,
    call_stack: Vec<Addr>,
    instrs: Vec<TraceInstr>,
}

impl TraceBuilder {
    /// Starts a trace at `start_pc`.
    pub fn new(name: impl Into<String>, start_pc: Addr) -> Self {
        TraceBuilder {
            name: name.into(),
            pc: start_pc,
            call_stack: Vec::new(),
            instrs: Vec::new(),
        }
    }

    /// The PC the next appended instruction will have.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Current call-stack depth (calls minus returns).
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    /// Appends `n` straight-line (non-branch) instructions.
    pub fn plain(&mut self, n: u32) -> &mut Self {
        for _ in 0..n {
            self.instrs.push(TraceInstr::plain(self.pc));
            self.pc = self.pc.next_inst();
        }
        self
    }

    /// Appends a conditional branch to `target`, taken or not.
    pub fn cond(&mut self, taken: bool, target: Addr) -> &mut Self {
        self.push_branch(BranchClass::CondDirect, taken, target)
    }

    /// Appends a taken unconditional direct jump to `target`.
    pub fn jump(&mut self, target: Addr) -> &mut Self {
        self.push_branch(BranchClass::UncondDirect, true, target)
    }

    /// Appends a direct call to `target`, pushing the return address.
    pub fn call(&mut self, target: Addr) -> &mut Self {
        self.call_stack.push(self.pc.next_inst());
        self.push_branch(BranchClass::Call, true, target)
    }

    /// Appends an indirect call to `target`, pushing the return address.
    pub fn icall(&mut self, target: Addr) -> &mut Self {
        self.call_stack.push(self.pc.next_inst());
        self.push_branch(BranchClass::IndirectCall, true, target)
    }

    /// Appends a return to the most recent unmatched call site.
    ///
    /// # Panics
    ///
    /// Panics if there is no unmatched call.
    pub fn ret(&mut self) -> &mut Self {
        let target = self
            .call_stack
            .pop()
            .expect("ret() without a matching call");
        self.push_branch(BranchClass::Return, true, target)
    }

    /// Appends an indirect jump to `target`.
    pub fn ijump(&mut self, target: Addr) -> &mut Self {
        self.push_branch(BranchClass::IndirectJump, true, target)
    }

    fn push_branch(&mut self, class: BranchClass, taken: bool, target: Addr) -> &mut Self {
        let record = BranchRecord::new(class, taken, target);
        let instr = TraceInstr::branch(self.pc, record);
        self.pc = instr.next_pc();
        self.instrs.push(instr);
        self
    }

    /// Finishes the trace.
    pub fn finish(self) -> Trace {
        Trace::from_instrs(self.name, self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_traces_are_always_valid() {
        let mut b = TraceBuilder::new("t", Addr::new(0x400));
        b.plain(5)
            .cond(false, Addr::new(0x500))
            .plain(2)
            .cond(true, Addr::new(0x600));
        b.plain(1).jump(Addr::new(0x400));
        b.plain(1);
        let t = b.finish();
        t.validate().unwrap();
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn calls_and_returns_pair_up() {
        let mut b = TraceBuilder::new("t", Addr::new(0x100));
        b.call(Addr::new(0x1000)); // returns to 0x104
        assert_eq!(b.call_depth(), 1);
        b.icall(Addr::new(0x2000)); // returns to 0x1004
        assert_eq!(b.call_depth(), 2);
        b.ret();
        assert_eq!(b.pc(), Addr::new(0x1004));
        b.ret();
        assert_eq!(b.pc(), Addr::new(0x104));
        let t = b.finish();
        t.validate().unwrap();
    }

    #[test]
    fn not_taken_cond_falls_through() {
        let mut b = TraceBuilder::new("t", Addr::new(0x100));
        b.cond(false, Addr::new(0x900));
        assert_eq!(b.pc(), Addr::new(0x104));
    }

    #[test]
    #[should_panic(expected = "ret() without a matching call")]
    fn unmatched_ret_panics() {
        let mut b = TraceBuilder::new("t", Addr::new(0x100));
        b.ret();
    }

    #[test]
    fn ijump_redirects() {
        let mut b = TraceBuilder::new("t", Addr::new(0x100));
        b.ijump(Addr::new(0x4000));
        b.plain(1);
        let t = b.finish();
        t.validate().unwrap();
        assert_eq!(t.instrs()[1].pc, Addr::new(0x4000));
    }
}
