//! Trace characterization: branch mix, instruction footprint, and the
//! branch-target offset distribution (the data behind extension experiment
//! X1 / "Revisited" Figure 3).

use std::collections::HashSet;
use std::fmt;

use fdip_types::{offset_bits, offset_insts, Addr, BranchClass, TraceInstr};

use crate::Trace;

/// Per-class dynamic branch counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchMix {
    counts: [u64; 6],
    taken: [u64; 6],
}

impl BranchMix {
    /// Dynamic count of branches of `class`.
    pub fn count(&self, class: BranchClass) -> u64 {
        self.counts[class.code() as usize]
    }

    /// Dynamic count of *taken* branches of `class`.
    pub fn taken(&self, class: BranchClass) -> u64 {
        self.taken[class.code() as usize]
    }

    /// Total dynamic branches.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total dynamic taken branches.
    pub fn total_taken(&self) -> u64 {
        self.taken.iter().sum()
    }

    /// Fraction of conditional branches that were taken, or 0 if none.
    pub fn cond_taken_ratio(&self) -> f64 {
        let conds = self.count(BranchClass::CondDirect);
        if conds == 0 {
            0.0
        } else {
            self.taken(BranchClass::CondDirect) as f64 / conds as f64
        }
    }

    fn record(&mut self, class: BranchClass, taken: bool) {
        self.counts[class.code() as usize] += 1;
        if taken {
            self.taken[class.code() as usize] += 1;
        }
    }
}

/// Histogram of branch-target offset widths (magnitude bits, 0..=64) over
/// dynamic taken-branch instances.
///
/// This regenerates the "Revisited" paper's Figure 3: the fraction of
/// dynamic branches whose target offset needs `n` bits to encode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OffsetHistogram {
    bins: Vec<u64>,
}

impl Default for OffsetHistogram {
    fn default() -> Self {
        OffsetHistogram { bins: vec![0; 65] }
    }
}

impl OffsetHistogram {
    /// Count of dynamic branches needing exactly `bits` magnitude bits.
    pub fn count(&self, bits: u32) -> u64 {
        self.bins.get(bits as usize).copied().unwrap_or(0)
    }

    /// Total dynamic branches recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Fraction of dynamic branches needing exactly `bits` bits.
    pub fn fraction(&self, bits: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(bits) as f64 / total as f64
        }
    }

    /// Fraction of dynamic branches whose offset fits in at most `bits` bits.
    pub fn cumulative_fraction(&self, bits: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let upto: u64 = self.bins.iter().take(bits as usize + 1).sum();
        upto as f64 / total as f64
    }

    /// The largest offset width observed, if any branch was recorded.
    pub fn max_bits(&self) -> Option<u32> {
        self.bins.iter().rposition(|&c| c > 0).map(|idx| idx as u32)
    }

    fn record(&mut self, bits: u32) {
        self.bins[bits as usize] += 1;
    }
}

impl fmt::Display for OffsetHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "bits  fraction")?;
        let max = self.max_bits().unwrap_or(0);
        for bits in 0..=max {
            writeln!(f, "{:>4}  {:.4}", bits, self.fraction(bits))?;
        }
        Ok(())
    }
}

/// Aggregate characterization of a trace.
///
/// # Examples
///
/// ```
/// use fdip_trace::{TraceBuilder, TraceStats};
/// use fdip_types::Addr;
///
/// let mut b = TraceBuilder::new("t", Addr::new(0x1000));
/// b.plain(10);
/// b.jump(Addr::new(0x1000));
/// b.plain(1);
/// let stats = TraceStats::measure(&b.finish());
/// assert_eq!(stats.len, 12);
/// assert_eq!(stats.footprint_bytes, 11 * 4); // the loop re-executes pcs
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Dynamic instruction count.
    pub len: u64,
    /// Unique static instructions times 4 bytes.
    pub footprint_bytes: u64,
    /// Unique 64-byte cache blocks touched.
    pub footprint_blocks_64b: u64,
    /// Unique static branch PCs.
    pub static_branches: u64,
    /// Unique static branch PCs observed taken at least once — the BTB
    /// working set under taken-allocate policies.
    pub static_taken_branches: u64,
    /// Dynamic branch mix.
    pub mix: BranchMix,
    /// Offset-width histogram over dynamic taken branches.
    pub offsets: OffsetHistogram,
}

impl TraceStats {
    /// Measures `trace` in one pass.
    pub fn measure(trace: &Trace) -> TraceStats {
        Self::measure_instrs(trace.instrs())
    }

    /// Measures a raw instruction slice.
    pub fn measure_instrs(instrs: &[TraceInstr]) -> TraceStats {
        let mut unique_pcs: HashSet<Addr> = HashSet::new();
        let mut unique_blocks: HashSet<u64> = HashSet::new();
        let mut branch_pcs: HashSet<Addr> = HashSet::new();
        let mut taken_pcs: HashSet<Addr> = HashSet::new();
        let mut stats = TraceStats {
            len: instrs.len() as u64,
            ..TraceStats::default()
        };
        for instr in instrs {
            unique_pcs.insert(instr.pc);
            unique_blocks.insert(instr.pc.block_index(64));
            if let Some(b) = instr.branch {
                stats.mix.record(b.class, b.taken);
                branch_pcs.insert(instr.pc);
                if b.taken {
                    taken_pcs.insert(instr.pc);
                    stats
                        .offsets
                        .record(offset_bits(offset_insts(instr.pc, b.target)));
                }
            }
        }
        stats.footprint_bytes = unique_pcs.len() as u64 * 4;
        stats.footprint_blocks_64b = unique_blocks.len() as u64;
        stats.static_branches = branch_pcs.len() as u64;
        stats.static_taken_branches = taken_pcs.len() as u64;
        stats
    }

    /// Dynamic branches per kilo-instruction.
    pub fn branch_pki(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.mix.total() as f64 * 1000.0 / self.len as f64
        }
    }
}

impl fdip_types::ToJson for BranchMix {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::Json::obj(BranchClass::ALL.into_iter().map(|class| {
            (
                format!("{class}"),
                fdip_types::Json::obj([
                    ("count", fdip_types::Json::uint(self.count(class))),
                    ("taken", fdip_types::Json::uint(self.taken(class))),
                ]),
            )
        }))
    }
}

impl fdip_types::ToJson for OffsetHistogram {
    fn to_json(&self) -> fdip_types::Json {
        // Trailing empty bins carry no information; emit up to max_bits.
        let upto = self.max_bits().map_or(0, |b| b as usize + 1);
        fdip_types::Json::arr(self.bins[..upto].iter().map(|&c| fdip_types::Json::uint(c)))
    }
}

impl fdip_types::ToJson for TraceStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(
            self,
            len,
            footprint_bytes,
            footprint_blocks_64b,
            static_branches,
            static_taken_branches,
            mix,
            offsets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn looped_trace() -> Trace {
        let mut b = TraceBuilder::new("loop", Addr::new(0x1000));
        for _ in 0..3 {
            b.plain(4);
            b.cond(true, Addr::new(0x1000)); // back-edge, offset -4 insts
        }
        b.plain(4);
        b.cond(false, Addr::new(0x1000));
        b.plain(1);
        b.finish()
    }

    #[test]
    fn counts_and_footprint() {
        let t = looped_trace();
        let s = TraceStats::measure(&t);
        assert_eq!(s.len, t.len() as u64);
        // Static code: 0x1000..0x1014 (5 instrs) + 0x1014 (1) = 6 instrs.
        assert_eq!(s.footprint_bytes, 6 * 4);
        assert_eq!(s.static_branches, 1);
        assert_eq!(s.static_taken_branches, 1);
        assert_eq!(s.mix.count(BranchClass::CondDirect), 4);
        assert_eq!(s.mix.taken(BranchClass::CondDirect), 3);
        assert!((s.mix.cond_taken_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn offsets_histogram_counts_taken_only() {
        let t = looped_trace();
        let s = TraceStats::measure(&t);
        // 3 taken back-edges of -4 instructions each → 3 bits.
        assert_eq!(s.offsets.total(), 3);
        assert_eq!(s.offsets.count(3), 3);
        assert_eq!(s.offsets.max_bits(), Some(3));
        assert!((s.offsets.fraction(3) - 1.0).abs() < 1e-12);
        assert!((s.offsets.cumulative_fraction(2) - 0.0).abs() < 1e-12);
        assert!((s.offsets.cumulative_fraction(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_pki() {
        let t = looped_trace();
        let s = TraceStats::measure(&t);
        let expect = 4.0 * 1000.0 / t.len() as f64;
        assert!((s.branch_pki() - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let s = TraceStats::measure(&Trace::default());
        assert_eq!(s.len, 0);
        assert_eq!(s.footprint_bytes, 0);
        assert_eq!(s.offsets.total(), 0);
        assert_eq!(s.offsets.max_bits(), None);
        assert_eq!(s.branch_pki(), 0.0);
    }

    #[test]
    fn far_jump_lands_in_wide_bin() {
        let mut b = TraceBuilder::new("far", Addr::new(0x1000));
        b.jump(Addr::new(0x1000 + (1 << 30)));
        b.plain(1);
        let s = TraceStats::measure(&b.finish());
        // (1 << 30) bytes = 1 << 28 instructions → 29 bits? No: 2^28 exactly
        // needs 29 bits by our convention (magnitude 2^28 has bit 28 set).
        assert_eq!(s.offsets.max_bits(), Some(29));
    }
}
