//! Trace characterization: branch mix, instruction footprint, and the
//! branch-target offset distribution (the data behind extension experiment
//! X1 / "Revisited" Figure 3).

use std::collections::HashSet;
use std::fmt;

use fdip_types::{offset_bits, offset_insts, Addr, BranchClass, TraceInstr};

use crate::Trace;

/// Per-class dynamic branch counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchMix {
    counts: [u64; 6],
    taken: [u64; 6],
}

impl BranchMix {
    /// Dynamic count of branches of `class`.
    pub fn count(&self, class: BranchClass) -> u64 {
        self.counts[class.code() as usize]
    }

    /// Dynamic count of *taken* branches of `class`.
    pub fn taken(&self, class: BranchClass) -> u64 {
        self.taken[class.code() as usize]
    }

    /// Total dynamic branches.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total dynamic taken branches.
    pub fn total_taken(&self) -> u64 {
        self.taken.iter().sum()
    }

    /// Fraction of conditional branches that were taken, or 0 if none.
    pub fn cond_taken_ratio(&self) -> f64 {
        let conds = self.count(BranchClass::CondDirect);
        if conds == 0 {
            0.0
        } else {
            self.taken(BranchClass::CondDirect) as f64 / conds as f64
        }
    }

    fn record(&mut self, class: BranchClass, taken: bool) {
        self.counts[class.code() as usize] += 1;
        if taken {
            self.taken[class.code() as usize] += 1;
        }
    }
}

/// Histogram of branch-target offset widths (magnitude bits, 0..=64) over
/// dynamic taken-branch instances.
///
/// This regenerates the "Revisited" paper's Figure 3: the fraction of
/// dynamic branches whose target offset needs `n` bits to encode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OffsetHistogram {
    bins: Vec<u64>,
}

impl Default for OffsetHistogram {
    fn default() -> Self {
        OffsetHistogram { bins: vec![0; 65] }
    }
}

impl OffsetHistogram {
    /// Count of dynamic branches needing exactly `bits` magnitude bits.
    pub fn count(&self, bits: u32) -> u64 {
        self.bins.get(bits as usize).copied().unwrap_or(0)
    }

    /// Total dynamic branches recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Fraction of dynamic branches needing exactly `bits` bits.
    pub fn fraction(&self, bits: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(bits) as f64 / total as f64
        }
    }

    /// Fraction of dynamic branches whose offset fits in at most `bits` bits.
    pub fn cumulative_fraction(&self, bits: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let upto: u64 = self.bins.iter().take(bits as usize + 1).sum();
        upto as f64 / total as f64
    }

    /// The largest offset width observed, if any branch was recorded.
    pub fn max_bits(&self) -> Option<u32> {
        self.bins.iter().rposition(|&c| c > 0).map(|idx| idx as u32)
    }

    fn record(&mut self, bits: u32) {
        self.bins[bits as usize] += 1;
    }
}

impl fmt::Display for OffsetHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "bits  fraction")?;
        let max = self.max_bits().unwrap_or(0);
        for bits in 0..=max {
            writeln!(f, "{:>4}  {:.4}", bits, self.fraction(bits))?;
        }
        Ok(())
    }
}

/// Histogram of dynamic basic-block sizes: the lengths of maximal runs of
/// records ending at a control-flow record (or at the end of the trace).
///
/// Sizes above 64 instructions are clamped into the top bin; the exact
/// instruction total is kept separately so [`mean`](Self::mean) is exact.
/// This is the distribution the fetch-directed front end actually sees —
/// one block per FTQ-enqueued fetch region — and the axis along which
/// synthetic and real-program traces are calibrated against each other.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockSizeHistogram {
    /// `bins[s]` counts blocks of exactly `s` instructions (`s` in
    /// 1..=[`Self::MAX_SIZE`]); larger blocks clamp into the top bin.
    bins: Vec<u64>,
    /// Exact total instructions across all recorded blocks.
    instrs: u64,
}

impl Default for BlockSizeHistogram {
    fn default() -> Self {
        BlockSizeHistogram {
            bins: vec![0; Self::MAX_SIZE as usize + 1],
            instrs: 0,
        }
    }
}

impl BlockSizeHistogram {
    /// Largest distinguishable block size; longer blocks clamp here.
    pub const MAX_SIZE: u32 = 64;

    /// Count of blocks of exactly `size` instructions (`MAX_SIZE` bin
    /// also holds everything larger).
    pub fn count(&self, size: u32) -> u64 {
        self.bins.get(size as usize).copied().unwrap_or(0)
    }

    /// Total blocks recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Exact mean block size in instructions, or 0 if no blocks.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.instrs as f64 / total as f64
        }
    }

    /// Fraction of blocks of exactly `size` instructions.
    pub fn fraction(&self, size: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(size) as f64 / total as f64
        }
    }

    /// Smallest size `s` such that at least `p` (0..=1) of blocks have
    /// size ≤ `s`, or `None` if no blocks were recorded.
    pub fn percentile(&self, p: f64) -> Option<u32> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let need = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (size, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= need.max(1) {
                return Some(size as u32);
            }
        }
        Some(Self::MAX_SIZE)
    }

    /// The largest (clamped) block size observed, if any.
    pub fn max_size(&self) -> Option<u32> {
        self.bins.iter().rposition(|&c| c > 0).map(|idx| idx as u32)
    }

    fn record(&mut self, size: u64) {
        debug_assert!(size > 0, "basic blocks are non-empty");
        self.instrs += size;
        self.bins[(size.min(Self::MAX_SIZE as u64)) as usize] += 1;
    }
}

impl fmt::Display for BlockSizeHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "size  fraction")?;
        let max = self.max_size().unwrap_or(0);
        for size in 1..=max {
            writeln!(f, "{:>4}  {:.4}", size, self.fraction(size))?;
        }
        writeln!(f, "mean  {:.2}", self.mean())
    }
}

/// Aggregate characterization of a trace.
///
/// # Examples
///
/// ```
/// use fdip_trace::{TraceBuilder, TraceStats};
/// use fdip_types::Addr;
///
/// let mut b = TraceBuilder::new("t", Addr::new(0x1000));
/// b.plain(10);
/// b.jump(Addr::new(0x1000));
/// b.plain(1);
/// let stats = TraceStats::measure(&b.finish());
/// assert_eq!(stats.len, 12);
/// assert_eq!(stats.footprint_bytes, 11 * 4); // the loop re-executes pcs
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Dynamic instruction count.
    pub len: u64,
    /// Unique static instructions times 4 bytes.
    pub footprint_bytes: u64,
    /// Unique 64-byte cache blocks touched.
    pub footprint_blocks_64b: u64,
    /// Unique static branch PCs.
    pub static_branches: u64,
    /// Unique static branch PCs observed taken at least once — the BTB
    /// working set under taken-allocate policies.
    pub static_taken_branches: u64,
    /// Dynamic branch mix.
    pub mix: BranchMix,
    /// Offset-width histogram over dynamic taken branches.
    pub offsets: OffsetHistogram,
    /// Dynamic basic-block-size histogram (runs ending at a branch record).
    pub blocks: BlockSizeHistogram,
}

impl TraceStats {
    /// Measures `trace` in one pass.
    pub fn measure(trace: &Trace) -> TraceStats {
        Self::measure_instrs(trace.instrs())
    }

    /// Measures a raw instruction slice.
    pub fn measure_instrs(instrs: &[TraceInstr]) -> TraceStats {
        let mut unique_pcs: HashSet<Addr> = HashSet::new();
        let mut unique_blocks: HashSet<u64> = HashSet::new();
        let mut branch_pcs: HashSet<Addr> = HashSet::new();
        let mut taken_pcs: HashSet<Addr> = HashSet::new();
        let mut stats = TraceStats {
            len: instrs.len() as u64,
            ..TraceStats::default()
        };
        let mut run_len = 0u64;
        for instr in instrs {
            unique_pcs.insert(instr.pc);
            unique_blocks.insert(instr.pc.block_index(64));
            run_len += 1;
            if let Some(b) = instr.branch {
                stats.mix.record(b.class, b.taken);
                branch_pcs.insert(instr.pc);
                if b.taken {
                    taken_pcs.insert(instr.pc);
                    stats
                        .offsets
                        .record(offset_bits(offset_insts(instr.pc, b.target)));
                }
                stats.blocks.record(run_len);
                run_len = 0;
            }
        }
        if run_len > 0 {
            stats.blocks.record(run_len);
        }
        stats.footprint_bytes = unique_pcs.len() as u64 * 4;
        stats.footprint_blocks_64b = unique_blocks.len() as u64;
        stats.static_branches = branch_pcs.len() as u64;
        stats.static_taken_branches = taken_pcs.len() as u64;
        stats
    }

    /// Dynamic branches per kilo-instruction.
    pub fn branch_pki(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.mix.total() as f64 * 1000.0 / self.len as f64
        }
    }
}

impl fdip_types::ToJson for BranchMix {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::Json::obj(BranchClass::ALL.into_iter().map(|class| {
            (
                format!("{class}"),
                fdip_types::Json::obj([
                    ("count", fdip_types::Json::uint(self.count(class))),
                    ("taken", fdip_types::Json::uint(self.taken(class))),
                ]),
            )
        }))
    }
}

impl fdip_types::ToJson for OffsetHistogram {
    fn to_json(&self) -> fdip_types::Json {
        // Trailing empty bins carry no information; emit up to max_bits.
        let upto = self.max_bits().map_or(0, |b| b as usize + 1);
        fdip_types::Json::arr(self.bins[..upto].iter().map(|&c| fdip_types::Json::uint(c)))
    }
}

impl fdip_types::ToJson for BlockSizeHistogram {
    fn to_json(&self) -> fdip_types::Json {
        // `bins[size]` for size 0..=max_size (bin 0 is structurally zero);
        // trailing empty bins carry no information.
        let upto = self.max_size().map_or(0, |s| s as usize + 1);
        fdip_types::Json::obj([
            ("mean", fdip_types::Json::num(self.mean())),
            (
                "bins",
                fdip_types::Json::arr(self.bins[..upto].iter().map(|&c| fdip_types::Json::uint(c))),
            ),
        ])
    }
}

impl fdip_types::ToJson for TraceStats {
    fn to_json(&self) -> fdip_types::Json {
        fdip_types::json_fields!(
            self,
            len,
            footprint_bytes,
            footprint_blocks_64b,
            static_branches,
            static_taken_branches,
            mix,
            offsets,
            blocks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn looped_trace() -> Trace {
        let mut b = TraceBuilder::new("loop", Addr::new(0x1000));
        for _ in 0..3 {
            b.plain(4);
            b.cond(true, Addr::new(0x1000)); // back-edge, offset -4 insts
        }
        b.plain(4);
        b.cond(false, Addr::new(0x1000));
        b.plain(1);
        b.finish()
    }

    #[test]
    fn counts_and_footprint() {
        let t = looped_trace();
        let s = TraceStats::measure(&t);
        assert_eq!(s.len, t.len() as u64);
        // Static code: 0x1000..0x1014 (5 instrs) + 0x1014 (1) = 6 instrs.
        assert_eq!(s.footprint_bytes, 6 * 4);
        assert_eq!(s.static_branches, 1);
        assert_eq!(s.static_taken_branches, 1);
        assert_eq!(s.mix.count(BranchClass::CondDirect), 4);
        assert_eq!(s.mix.taken(BranchClass::CondDirect), 3);
        assert!((s.mix.cond_taken_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn offsets_histogram_counts_taken_only() {
        let t = looped_trace();
        let s = TraceStats::measure(&t);
        // 3 taken back-edges of -4 instructions each → 3 bits.
        assert_eq!(s.offsets.total(), 3);
        assert_eq!(s.offsets.count(3), 3);
        assert_eq!(s.offsets.max_bits(), Some(3));
        assert!((s.offsets.fraction(3) - 1.0).abs() < 1e-12);
        assert!((s.offsets.cumulative_fraction(2) - 0.0).abs() < 1e-12);
        assert!((s.offsets.cumulative_fraction(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_pki() {
        let t = looped_trace();
        let s = TraceStats::measure(&t);
        let expect = 4.0 * 1000.0 / t.len() as f64;
        assert!((s.branch_pki() - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let s = TraceStats::measure(&Trace::default());
        assert_eq!(s.len, 0);
        assert_eq!(s.footprint_bytes, 0);
        assert_eq!(s.offsets.total(), 0);
        assert_eq!(s.offsets.max_bits(), None);
        assert_eq!(s.branch_pki(), 0.0);
    }

    #[test]
    fn block_sizes_split_at_branch_records() {
        let t = looped_trace();
        let s = TraceStats::measure(&t);
        // Blocks: 3× (4 plain + taken cond) = 5, 1× (4 plain + not-taken
        // cond) = 5, trailing 1 plain = 1.
        assert_eq!(s.blocks.total(), 5);
        assert_eq!(s.blocks.count(5), 4);
        assert_eq!(s.blocks.count(1), 1);
        assert_eq!(s.blocks.max_size(), Some(5));
        assert!((s.blocks.mean() - 21.0 / 5.0).abs() < 1e-12);
        assert!((s.blocks.fraction(5) - 0.8).abs() < 1e-12);
        assert_eq!(s.blocks.percentile(0.5), Some(5));
        assert_eq!(s.blocks.percentile(0.1), Some(1));
    }

    #[test]
    fn oversize_blocks_clamp_but_mean_stays_exact() {
        let mut b = TraceBuilder::new("big", Addr::new(0x1000));
        b.plain(199);
        b.jump(Addr::new(0x1000));
        b.plain(1);
        let s = TraceStats::measure(&b.finish());
        assert_eq!(s.blocks.count(BlockSizeHistogram::MAX_SIZE), 1);
        assert_eq!(s.blocks.count(1), 1);
        assert_eq!(s.blocks.total(), 2);
        assert!((s.blocks.mean() - 201.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_block_histogram() {
        let s = TraceStats::measure(&Trace::default());
        assert_eq!(s.blocks.total(), 0);
        assert_eq!(s.blocks.mean(), 0.0);
        assert_eq!(s.blocks.percentile(0.5), None);
        assert_eq!(s.blocks.max_size(), None);
    }

    #[test]
    fn far_jump_lands_in_wide_bin() {
        let mut b = TraceBuilder::new("far", Addr::new(0x1000));
        b.jump(Addr::new(0x1000 + (1 << 30)));
        b.plain(1);
        let s = TraceStats::measure(&b.finish());
        // (1 << 30) bytes = 1 << 28 instructions → 29 bits? No: 2^28 exactly
        // needs 29 bits by our convention (magnitude 2^28 has bit 28 set).
        assert_eq!(s.offsets.max_bits(), Some(29));
    }
}
