//! Human-readable text trace codec.
//!
//! One instruction per line. Plain instructions are a bare hex PC; branches
//! append class, `T`/`N`, and the hex target:
//!
//! ```text
//! # fdip trace v1
//! # name: demo
//! 1000
//! 1004 cond T 2000
//! 2000 ret T 1008
//! ```
//!
//! Blank lines and `#` comments are ignored on input.

use std::io::{BufRead, BufReader, Read, Write};

use fdip_types::{Addr, BranchClass, BranchRecord, TraceInstr};

use crate::{Trace, TraceError};

/// Writes `trace` as text.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the underlying writer fails.
pub fn write_text<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceError> {
    writeln!(w, "# fdip trace v1")?;
    writeln!(w, "# name: {}", trace.name())?;
    for instr in trace {
        match instr.branch {
            None => writeln!(w, "{:x}", instr.pc)?,
            Some(b) => writeln!(
                w,
                "{:x} {} {} {:x}",
                instr.pc,
                b.class,
                if b.taken { 'T' } else { 'N' },
                b.target
            )?,
        }
    }
    Ok(())
}

/// Reads a text trace. The trace name is recovered from a `# name:` comment
/// if present.
///
/// # Errors
///
/// Returns [`TraceError::BadLine`] for unparsable lines and
/// [`TraceError::Io`] for reader failures.
pub fn read_text<R: Read>(r: R) -> Result<Trace, TraceError> {
    let reader = BufReader::new(r);
    let mut name = String::new();
    let mut instrs = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx as u64 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            if let Some(n) = comment.trim().strip_prefix("name:") {
                name = n.trim().to_string();
            }
            continue;
        }
        instrs.push(parse_line(trimmed, line_no)?);
    }
    Ok(Trace::from_instrs(name, instrs))
}

fn parse_line(line: &str, line_no: u64) -> Result<TraceInstr, TraceError> {
    let mut fields = line.split_whitespace();
    let pc = parse_hex(fields.next(), line_no, "missing pc")?;
    let Some(class_str) = fields.next() else {
        return Ok(TraceInstr::plain(pc));
    };
    let class = parse_class(class_str).ok_or(TraceError::BadLine {
        line: line_no,
        what: "unknown branch class",
    })?;
    let taken = match fields.next() {
        Some("T") => true,
        Some("N") => false,
        _ => {
            return Err(TraceError::BadLine {
                line: line_no,
                what: "expected T or N",
            })
        }
    };
    if !taken && class.is_unconditional() {
        return Err(TraceError::BadLine {
            line: line_no,
            what: "not-taken unconditional branch",
        });
    }
    let target = parse_hex(fields.next(), line_no, "missing target")?;
    if fields.next().is_some() {
        return Err(TraceError::BadLine {
            line: line_no,
            what: "trailing fields",
        });
    }
    Ok(TraceInstr::branch(
        pc,
        BranchRecord::new(class, taken, target),
    ))
}

fn parse_hex(field: Option<&str>, line_no: u64, what: &'static str) -> Result<Addr, TraceError> {
    let s = field.ok_or(TraceError::BadLine {
        line: line_no,
        what,
    })?;
    let s = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(s, 16)
        .map(Addr::new)
        .map_err(|_| TraceError::BadLine {
            line: line_no,
            what: "invalid hex number",
        })
}

fn parse_class(s: &str) -> Option<BranchClass> {
    BranchClass::ALL.into_iter().find(|c| c.to_string() == s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("texty", Addr::new(0x1000));
        b.plain(2);
        b.cond(false, Addr::new(0x1100));
        b.cond(true, Addr::new(0x1100));
        b.call(Addr::new(0x9000));
        b.ret();
        b.plain(1);
        b.ijump(Addr::new(0x1000));
        b.plain(1);
        b.finish()
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.name(), "texty");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let src = "# header\n\n1000\n   \n# mid\n1004 jump T 2000\n";
        let t = read_text(src.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.instrs()[1].branch.unwrap().target, Addr::new(0x2000));
    }

    #[test]
    fn hex_prefix_is_accepted() {
        let t = read_text("0x1000\n0x1004 call T 0xbeef0\n".as_bytes()).unwrap();
        assert_eq!(t.instrs()[1].branch.unwrap().target, Addr::new(0xbeef0));
    }

    #[test]
    fn bad_lines_are_located() {
        let cases = [
            ("zzzz\n", "invalid hex number", 1),
            ("1000\n1004 blorp T 0\n", "unknown branch class", 2),
            ("1000 cond X 0\n", "expected T or N", 1),
            ("1000 jump N 2000\n", "not-taken unconditional branch", 1),
            ("1000 cond T\n", "missing target", 1),
            ("1000 cond T 2000 extra\n", "trailing fields", 1),
        ];
        for (src, expect, line) in cases {
            match read_text(src.as_bytes()) {
                Err(TraceError::BadLine { line: l, what }) => {
                    assert_eq!(what, expect, "src: {src}");
                    assert_eq!(l, line, "src: {src}");
                }
                other => panic!("expected BadLine for {src:?}, got {other:?}"),
            }
        }
    }
}
