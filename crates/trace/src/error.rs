use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced while encoding, decoding, or validating a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The input did not begin with the expected magic bytes.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not supported by this build.
    UnsupportedVersion {
        /// The version actually found.
        found: u8,
    },
    /// The byte stream ended in the middle of a record or header.
    Truncated,
    /// A structurally invalid encoding was encountered.
    Corrupt {
        /// Human-readable description of the problem.
        what: &'static str,
        /// Record index at which the problem was detected.
        at_record: u64,
    },
    /// A text-format line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: u64,
        /// Human-readable description of the problem.
        what: &'static str,
    },
    /// The decoded trace violates an execution-trace invariant
    /// (e.g. a record's PC does not follow from its predecessor).
    Invalid {
        /// Human-readable description of the violated invariant.
        what: &'static str,
        /// Record index at which the violation occurs.
        at_record: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "bad magic bytes {found:?}, expected \"FDTR\"")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            TraceError::Truncated => write!(f, "unexpected end of trace data"),
            TraceError::Corrupt { what, at_record } => {
                write!(f, "corrupt trace at record {at_record}: {what}")
            }
            TraceError::BadLine { line, what } => {
                write!(f, "bad trace text at line {line}: {what}")
            }
            TraceError::Invalid { what, at_record } => {
                write!(f, "invalid trace at record {at_record}: {what}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_descriptive() {
        let cases: Vec<TraceError> = vec![
            TraceError::BadMagic { found: *b"XXXX" },
            TraceError::UnsupportedVersion { found: 9 },
            TraceError::Truncated,
            TraceError::Corrupt {
                what: "zero-length run",
                at_record: 3,
            },
            TraceError::BadLine {
                line: 7,
                what: "missing target",
            },
            TraceError::Invalid {
                what: "pc discontinuity",
                at_record: 12,
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn unexpected_eof_becomes_truncated() {
        let io_err = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(TraceError::from(io_err), TraceError::Truncated));
        let other = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        assert!(matches!(TraceError::from(other), TraceError::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<TraceError>();
    }
}
