//! Instruction traces for the FDIP reproduction: the in-memory [`Trace`]
//! container, compact binary and human-readable text codecs, trace
//! statistics, and — because the original paper's SPEC95 traces are not
//! available — a deterministic synthetic workload generator
//! ([`gen`]) that builds random structured programs and executes them.
//!
//! # Quick tour
//!
//! ```
//! use fdip_trace::gen::{GeneratorConfig, Profile};
//!
//! // Generate a small client-like workload, deterministically.
//! let trace = GeneratorConfig::profile(Profile::Client)
//!     .target_len(20_000)
//!     .seed(7)
//!     .generate();
//! assert!(trace.len() >= 20_000);
//!
//! // Round-trip through the binary codec.
//! let mut buf = Vec::new();
//! fdip_trace::write_binary(&mut buf, &trace)?;
//! let back = fdip_trace::read_binary(&buf[..])?;
//! assert_eq!(trace, back);
//! # Ok::<(), fdip_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod builder;
mod error;
mod stats;
mod text;
mod trace;
mod varint;

pub mod gen;

pub use binary::{
    read_binary, write_binary, write_binary_compact, BINARY_MAGIC, BINARY_VERSION,
    BINARY_VERSION_COMPACT, MAX_NAME_LEN,
};
pub use builder::TraceBuilder;
pub use error::TraceError;
pub use stats::{BlockSizeHistogram, BranchMix, OffsetHistogram, TraceStats};
pub use text::{read_text, write_text};
pub use trace::Trace;
