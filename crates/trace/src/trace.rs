use std::fmt;

use fdip_types::{Addr, TraceInstr};

use crate::TraceError;

/// An in-memory execution trace: the sequence of retired instructions the
/// simulated core must fetch, in program order.
///
/// A well-formed trace satisfies the *continuity invariant*: record `i+1`'s
/// PC equals record `i`'s architectural next-PC ([`TraceInstr::next_pc`]).
/// [`Trace::validate`] checks this plus alignment of every PC and target.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Trace {
    name: String,
    instrs: Vec<TraceInstr>,
}

impl Trace {
    /// Creates a trace from parts without validating.
    ///
    /// Prefer [`TraceBuilder`](crate::TraceBuilder) when hand-constructing
    /// traces; it maintains the continuity invariant for you.
    pub fn from_instrs(name: impl Into<String>, instrs: Vec<TraceInstr>) -> Self {
        Trace {
            name: name.into(),
            instrs,
        }
    }

    /// The workload name this trace was generated from (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the trace.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of instructions in the trace.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions, in program order.
    pub fn instrs(&self) -> &[TraceInstr] {
        &self.instrs
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceInstr> {
        self.instrs.iter()
    }

    /// Consumes the trace, returning the underlying instruction vector.
    pub fn into_instrs(self) -> Vec<TraceInstr> {
        self.instrs
    }

    /// Returns a prefix of the trace (useful for fast tests on big traces).
    pub fn truncated(&self, len: usize) -> Trace {
        Trace {
            name: self.name.clone(),
            instrs: self.instrs[..len.min(self.instrs.len())].to_vec(),
        }
    }

    /// Returns the window `[start, start + len)` as its own trace — a
    /// sampling unit for SimPoint-style methodology. The window is
    /// internally continuous (any contiguous slice of an execution trace
    /// is), so it validates and simulates like a full trace.
    ///
    /// # Panics
    ///
    /// Panics if `start` is past the end of the trace.
    pub fn window(&self, start: usize, len: usize) -> Trace {
        assert!(start <= self.instrs.len(), "window start out of range");
        let end = (start + len).min(self.instrs.len());
        Trace {
            name: format!("{}@{start}+{}", self.name, end - start),
            instrs: self.instrs[start..end].to_vec(),
        }
    }

    /// Splits the trace into `count` evenly spaced windows of `len`
    /// instructions each (the periodic-sampling methodology). Windows never
    /// overlap the trace end; fewer are returned if the trace is short.
    pub fn sample_windows(&self, count: usize, len: usize) -> Vec<Trace> {
        if count == 0 || len == 0 || self.instrs.len() < len {
            return Vec::new();
        }
        let span = self.instrs.len() - len;
        let picks = count.min(span + 1);
        (0..picks)
            .map(|i| {
                let start = if picks == 1 {
                    0
                } else {
                    span * i / (picks - 1)
                };
                self.window(start, len)
            })
            .collect()
    }

    /// Checks the execution-trace invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Invalid`] if any PC or branch target is not
    /// instruction-aligned, or if a record's PC is not the architectural
    /// next-PC of its predecessor.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut prev_next: Option<Addr> = None;
        for (i, instr) in self.instrs.iter().enumerate() {
            let at_record = i as u64;
            if !instr.pc.is_inst_aligned() {
                return Err(TraceError::Invalid {
                    what: "pc not instruction-aligned",
                    at_record,
                });
            }
            if let Some(b) = instr.branch {
                if !b.target.is_inst_aligned() {
                    return Err(TraceError::Invalid {
                        what: "branch target not instruction-aligned",
                        at_record,
                    });
                }
            }
            if let Some(expected) = prev_next {
                if instr.pc != expected {
                    return Err(TraceError::Invalid {
                        what: "pc does not follow from previous record",
                        at_record,
                    });
                }
            }
            prev_next = Some(instr.next_pc());
        }
        Ok(())
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("name", &self.name)
            .field("len", &self.instrs.len())
            .finish()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceInstr;
    type IntoIter = std::slice::Iter<'a, TraceInstr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceInstr;
    type IntoIter = std::vec::IntoIter<TraceInstr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_types::{BranchClass, BranchRecord};

    fn continuous_trace() -> Trace {
        let i0 = TraceInstr::plain(Addr::new(0x100));
        let i1 = TraceInstr::branch(
            Addr::new(0x104),
            BranchRecord::new(BranchClass::UncondDirect, true, Addr::new(0x200)),
        );
        let i2 = TraceInstr::plain(Addr::new(0x200));
        Trace::from_instrs("t", vec![i0, i1, i2])
    }

    #[test]
    fn valid_trace_passes() {
        continuous_trace().validate().unwrap();
    }

    #[test]
    fn discontinuity_is_rejected() {
        let mut instrs = continuous_trace().into_instrs();
        instrs[2] = TraceInstr::plain(Addr::new(0x300));
        let err = Trace::from_instrs("t", instrs).validate().unwrap_err();
        assert!(matches!(
            err,
            TraceError::Invalid {
                what: "pc does not follow from previous record",
                at_record: 2
            }
        ));
    }

    #[test]
    fn misaligned_pc_is_rejected() {
        let t = Trace::from_instrs("t", vec![TraceInstr::plain(Addr::new(0x101))]);
        assert!(matches!(
            t.validate().unwrap_err(),
            TraceError::Invalid { at_record: 0, .. }
        ));
    }

    #[test]
    fn misaligned_target_is_rejected() {
        let t = Trace::from_instrs(
            "t",
            vec![TraceInstr::branch(
                Addr::new(0x100),
                BranchRecord::new(BranchClass::UncondDirect, true, Addr::new(0x203)),
            )],
        );
        assert!(matches!(
            t.validate().unwrap_err(),
            TraceError::Invalid {
                what: "branch target not instruction-aligned",
                ..
            }
        ));
    }

    #[test]
    fn truncated_keeps_prefix() {
        let t = continuous_trace();
        assert_eq!(t.truncated(2).len(), 2);
        assert_eq!(t.truncated(99).len(), 3);
        assert_eq!(t.truncated(2).instrs()[0], t.instrs()[0]);
    }

    #[test]
    fn windows_are_valid_subtraces() {
        let t = continuous_trace();
        let w = t.window(1, 2);
        assert_eq!(w.len(), 2);
        w.validate().unwrap();
        assert_eq!(w.instrs()[0], t.instrs()[1]);
        assert!(w.name().contains("@1+2"));
        // Window past the end clips.
        assert_eq!(t.window(2, 100).len(), 1);
    }

    #[test]
    #[should_panic(expected = "window start out of range")]
    fn window_start_past_end_panics() {
        let _ = continuous_trace().window(99, 1);
    }

    #[test]
    fn sample_windows_cover_start_and_end() {
        let t = continuous_trace();
        let samples = t.sample_windows(2, 2);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].instrs()[0], t.instrs()[0]);
        assert_eq!(samples[1].instrs()[1], t.instrs()[2]);
        for s in &samples {
            s.validate().unwrap();
        }
        assert!(t.sample_windows(3, 100).is_empty(), "trace too short");
        assert!(t.sample_windows(0, 1).is_empty());
    }

    #[test]
    fn empty_trace_is_valid() {
        Trace::default().validate().unwrap();
        assert!(Trace::default().is_empty());
    }
}
