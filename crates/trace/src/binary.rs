//! Compact binary trace codec.
//!
//! Layout:
//!
//! ```text
//! "FDTR"  magic
//! u8      version (1 = baseline, 2 = compact with run-length records)
//! varint  name length, then that many bytes of UTF-8 name
//! varint  instruction count
//! records…
//! ```
//!
//! Each record starts with a flag byte:
//!
//! ```text
//! bit 0    is_branch
//! bits 1-3 branch class code (BranchClass::code), if is_branch
//! bit 4    taken, if is_branch
//! bit 5    discontinuous: this record's PC is *not* the architectural
//!          next-PC of the previous record (always set on record 0)
//! ```
//!
//! A discontinuous record is followed by a zigzag varint: the PC delta from
//! the expected next-PC, in instructions. A branch record is followed by a
//! zigzag varint: the target offset from the PC, in instructions. Since a
//! well-formed execution trace is continuous, bit 5 in practice only appears
//! on record 0 — but tolerating discontinuity makes the codec usable for
//! trace *fragments* too.
//!
//! Version 2 additionally uses flag bit 6 (*run*): the record stands for a
//! varint-counted run of continuous plain instructions, which compresses
//! straight-line code to a fraction of a byte per instruction
//! ([`write_binary_compact`]); [`read_binary`] accepts both versions.

use std::io::{Read, Write};

use fdip_types::{Addr, BranchClass, BranchRecord, TraceInstr};

use crate::varint;
use crate::{Trace, TraceError};

/// Magic bytes at the start of every binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"FDTR";

/// Baseline binary format version (one record per instruction).
pub const BINARY_VERSION: u8 = 1;

/// Compact binary format version: adds run-length records (flag bit 6 +
/// varint count) for continuous straight-line stretches, cutting typical
/// traces to a fraction of a byte per instruction.
pub const BINARY_VERSION_COMPACT: u8 = 2;

/// Longest trace name the reader accepts. The name length is attacker
/// controlled in untrusted input (the `fdip-serve` trust boundary), so it
/// must be bounded *before* the name buffer is allocated.
pub const MAX_NAME_LEN: usize = 4096;

const FLAG_BRANCH: u8 = 1 << 0;
const FLAG_TAKEN: u8 = 1 << 4;
const FLAG_DISCONTINUOUS: u8 = 1 << 5;
const FLAG_RUN: u8 = 1 << 6;
const CLASS_SHIFT: u32 = 1;
const CLASS_MASK: u8 = 0b111 << CLASS_SHIFT;

/// Writes `trace` in the binary format.
///
/// The writer is taken by value; pass `&mut writer` to keep using it
/// afterwards.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the underlying writer fails.
pub fn write_binary<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceError> {
    w.write_all(&BINARY_MAGIC)?;
    w.write_all(&[BINARY_VERSION])?;
    let name = trace.name().as_bytes();
    varint::write_u64(&mut w, name.len() as u64)?;
    w.write_all(name)?;
    varint::write_u64(&mut w, trace.len() as u64)?;

    let mut expected: Option<Addr> = None;
    for instr in trace {
        let mut flags = 0u8;
        let discontinuous = expected != Some(instr.pc);
        if discontinuous {
            flags |= FLAG_DISCONTINUOUS;
        }
        if let Some(b) = instr.branch {
            flags |= FLAG_BRANCH;
            flags |= b.class.code() << CLASS_SHIFT;
            if b.taken {
                flags |= FLAG_TAKEN;
            }
        }
        w.write_all(&[flags])?;
        if discontinuous {
            let base = expected.unwrap_or(Addr::ZERO);
            varint::write_i64(&mut w, base.insts_to(instr.pc))?;
        }
        if let Some(b) = instr.branch {
            varint::write_i64(&mut w, instr.pc.insts_to(b.target))?;
        }
        expected = Some(instr.next_pc());
    }
    Ok(())
}

/// Writes `trace` in the compact (version 2) format: continuous
/// straight-line stretches become one run-length record instead of one
/// byte per instruction.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the underlying writer fails.
pub fn write_binary_compact<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceError> {
    w.write_all(&BINARY_MAGIC)?;
    w.write_all(&[BINARY_VERSION_COMPACT])?;
    let name = trace.name().as_bytes();
    varint::write_u64(&mut w, name.len() as u64)?;
    w.write_all(name)?;
    varint::write_u64(&mut w, trace.len() as u64)?;

    let instrs = trace.instrs();
    let mut expected: Option<Addr> = None;
    let mut i = 0usize;
    while i < instrs.len() {
        let instr = instrs[i];
        let discontinuous = expected != Some(instr.pc);
        // Measure the continuous plain run starting here.
        let mut run = 0usize;
        if instr.branch.is_none() {
            run = 1;
            while i + run < instrs.len()
                && instrs[i + run].branch.is_none()
                && instrs[i + run].pc == instr.pc.add_insts(run as u64)
            {
                run += 1;
            }
        }
        if run >= 2 {
            let mut flags = FLAG_RUN;
            if discontinuous {
                flags |= FLAG_DISCONTINUOUS;
            }
            w.write_all(&[flags])?;
            if discontinuous {
                let base = expected.unwrap_or(Addr::ZERO);
                varint::write_i64(&mut w, base.insts_to(instr.pc))?;
            }
            varint::write_u64(&mut w, run as u64)?;
            expected = Some(instr.pc.add_insts(run as u64));
            i += run;
            continue;
        }
        // Single record (plain or branch) — the version-1 encoding.
        let mut flags = 0u8;
        if discontinuous {
            flags |= FLAG_DISCONTINUOUS;
        }
        if let Some(b) = instr.branch {
            flags |= FLAG_BRANCH;
            flags |= b.class.code() << CLASS_SHIFT;
            if b.taken {
                flags |= FLAG_TAKEN;
            }
        }
        w.write_all(&[flags])?;
        if discontinuous {
            let base = expected.unwrap_or(Addr::ZERO);
            varint::write_i64(&mut w, base.insts_to(instr.pc))?;
        }
        if let Some(b) = instr.branch {
            varint::write_i64(&mut w, instr.pc.insts_to(b.target))?;
        }
        expected = Some(instr.next_pc());
        i += 1;
    }
    Ok(())
}

/// Reads a binary trace (either version).
///
/// The reader is taken by value; pass `&mut reader` to keep using it
/// afterwards.
///
/// # Errors
///
/// Returns [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`],
/// [`TraceError::Truncated`], or [`TraceError::Corrupt`] as appropriate.
pub fn read_binary<R: Read>(mut r: R) -> Result<Trace, TraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != BINARY_MAGIC {
        return Err(TraceError::BadMagic { found: magic });
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    let compact = match version[0] {
        BINARY_VERSION => false,
        BINARY_VERSION_COMPACT => true,
        other => return Err(TraceError::UnsupportedVersion { found: other }),
    };
    let name_len = varint::read_u64(&mut r)?;
    if name_len > MAX_NAME_LEN as u64 {
        return Err(TraceError::Corrupt {
            what: "trace name too long",
            at_record: 0,
        });
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    r.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes).map_err(|_| TraceError::Corrupt {
        what: "trace name is not utf-8",
        at_record: 0,
    })?;
    let count = varint::read_u64(&mut r)?;

    // `count` is attacker controlled: cap the eager pre-allocation and let
    // the vector grow normally for genuinely long traces.
    let mut instrs = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut expected: Option<Addr> = None;
    while (instrs.len() as u64) < count {
        let i = instrs.len() as u64;
        let mut flags = [0u8; 1];
        r.read_exact(&mut flags)?;
        let flags = flags[0];
        if flags & FLAG_RUN != 0 && !compact {
            return Err(TraceError::Corrupt {
                what: "run record in a version-1 stream",
                at_record: i,
            });
        }
        let pc = if flags & FLAG_DISCONTINUOUS != 0 {
            let base = expected.unwrap_or(Addr::ZERO);
            let delta = varint::read_i64(&mut r)?;
            apply_inst_delta(base, delta).ok_or(TraceError::Corrupt {
                what: "pc delta out of range",
                at_record: i,
            })?
        } else {
            expected.ok_or(TraceError::Corrupt {
                what: "continuous flag on first record",
                at_record: i,
            })?
        };
        if flags & FLAG_RUN != 0 {
            let run = varint::read_u64(&mut r)?;
            if run < 2 || instrs.len() as u64 + run > count {
                return Err(TraceError::Corrupt {
                    what: "run length out of range",
                    at_record: i,
                });
            }
            for k in 0..run {
                instrs.push(TraceInstr::plain(pc.add_insts(k)));
            }
            expected = Some(pc.add_insts(run));
            continue;
        }
        let branch = if flags & FLAG_BRANCH != 0 {
            let code = (flags & CLASS_MASK) >> CLASS_SHIFT;
            let class = BranchClass::from_code(code).ok_or(TraceError::Corrupt {
                what: "invalid branch class code",
                at_record: i,
            })?;
            let taken = flags & FLAG_TAKEN != 0;
            if !taken && class.is_unconditional() {
                return Err(TraceError::Corrupt {
                    what: "not-taken unconditional branch",
                    at_record: i,
                });
            }
            let offset = varint::read_i64(&mut r)?;
            let target = apply_inst_delta(pc, offset).ok_or(TraceError::Corrupt {
                what: "branch target out of range",
                at_record: i,
            })?;
            Some(BranchRecord {
                class,
                taken,
                target,
            })
        } else {
            None
        };
        let instr = TraceInstr { pc, branch };
        expected = Some(instr.next_pc());
        instrs.push(instr);
    }
    Ok(Trace::from_instrs(name, instrs))
}

fn apply_inst_delta(base: Addr, delta_insts: i64) -> Option<Addr> {
    let raw = base.raw() as i128 + delta_insts as i128 * 4;
    if (0..=u64::MAX as i128).contains(&raw) {
        Some(Addr::new(raw as u64))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("sample", Addr::new(0x1000));
        b.plain(3);
        b.cond(true, Addr::new(0x2000));
        b.plain(2);
        b.call(Addr::new(0x8000));
        b.plain(1);
        b.ret();
        b.plain(4);
        b.jump(Addr::new(0x1000));
        b.plain(1);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_trace_exactly() {
        let t = sample_trace();
        t.validate().unwrap();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.name(), "sample");
    }

    #[test]
    fn continuous_records_cost_one_byte() {
        let mut b = TraceBuilder::new("", Addr::new(0));
        b.plain(100);
        let t = b.finish();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        // header: 4 magic + 1 version + 1 name len + 1 count; record 0 has a
        // discontinuity varint; the other 99 are exactly 1 byte each.
        assert_eq!(buf.len(), 4 + 1 + 1 + 1 + 2 + 99);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPE\x01".to_vec();
        assert!(matches!(
            read_binary(&buf[..]),
            Err(TraceError::BadMagic { found }) if &found == b"NOPE"
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample_trace()).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_binary(&buf[..]),
            Err(TraceError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample_trace()).unwrap();
        for cut in [buf.len() - 1, buf.len() / 2, 6] {
            assert!(
                matches!(read_binary(&buf[..cut]), Err(TraceError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn invalid_class_code_is_rejected() {
        let t = {
            let mut b = TraceBuilder::new("", Addr::new(0x100));
            b.plain(1);
            b.cond(true, Addr::new(0x200));
            b.plain(1);
            b.finish()
        };
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        // Record 1 (the branch) flag byte: header is 4+1+1+1 = 7 bytes, then
        // record 0 = flag + 2-byte delta varint (pc 0x100 = 64 insts,
        // zigzag 128). Patch record 1's class bits to the invalid code 7.
        let flag_idx = 7 + 3;
        buf[flag_idx] |= CLASS_MASK;
        assert!(matches!(
            read_binary(&buf[..]),
            Err(TraceError::Corrupt {
                what: "invalid branch class code",
                ..
            })
        ));
    }

    #[test]
    fn compact_roundtrip_preserves_trace_exactly() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary_compact(&mut buf, &t).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn compact_is_much_smaller_on_straight_line_code() {
        let mut b = TraceBuilder::new("", Addr::new(0x1000));
        b.plain(10_000);
        let t = b.finish();
        let mut v1 = Vec::new();
        write_binary(&mut v1, &t).unwrap();
        let mut v2 = Vec::new();
        write_binary_compact(&mut v2, &t).unwrap();
        assert!(
            v2.len() * 100 < v1.len(),
            "v1 {} vs v2 {}",
            v1.len(),
            v2.len()
        );
        assert_eq!(read_binary(&v2[..]).unwrap(), t);
    }

    #[test]
    fn compact_handles_interleaved_runs_and_branches() {
        let mut b = TraceBuilder::new("mix", Addr::new(0x1000));
        for i in 0..50u64 {
            b.plain((i % 7 + 1) as u32);
            b.jump(Addr::new(0x1000 + (i % 13) * 0x40));
        }
        b.plain(3);
        let t = b.finish();
        let mut buf = Vec::new();
        write_binary_compact(&mut buf, &t).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), t);
    }

    #[test]
    fn run_record_in_v1_stream_is_corrupt() {
        let t = {
            let mut b = TraceBuilder::new("", Addr::new(0x100));
            b.plain(3);
            b.finish()
        };
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        // Patch record 0's flag byte (header = 7 bytes) to claim a run.
        buf[7] |= 1 << 6;
        assert!(matches!(
            read_binary(&buf[..]),
            Err(TraceError::Corrupt {
                what: "run record in a version-1 stream",
                ..
            })
        ));
    }

    #[test]
    fn oversized_run_is_corrupt() {
        let t = {
            let mut b = TraceBuilder::new("", Addr::new(0x100));
            b.plain(10);
            b.finish()
        };
        let mut buf = Vec::new();
        write_binary_compact(&mut buf, &t).unwrap();
        // Header 7 bytes; record 0: flags(run|discont) + 2-byte delta
        // varint + runlen. Patch the run length to exceed the count.
        let idx = 7 + 3;
        buf[idx] = 100; // single-byte varint (no continuation bit)
        assert!(matches!(
            read_binary(&buf[..]),
            Err(TraceError::Corrupt {
                what: "run length out of range",
                ..
            })
        ));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::from_instrs("empty", Vec::new());
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.name(), "empty");
    }
}
