//! Executes a generated program, emitting the instruction trace.
//!
//! The interpreter walks the AST recursively; addresses are derived from the
//! per-statement sizes computed at construction, so the emitted trace is the
//! execution of a concrete, fixed code layout. Emission stops (mid-anything)
//! once the target length is reached — truncation never breaks the
//! continuity invariant because every emitted record still follows its
//! predecessor.

use fdip_types::{Addr, BranchClass, BranchRecord, TraceInstr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::ast::{body_size, Ast, Stmt, StmtKind};
use crate::gen::config::GeneratorConfig;
use crate::Trace;

pub(crate) fn execute(cfg: &GeneratorConfig, ast: &Ast) -> Trace {
    let mut ex = Exec {
        ast,
        rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xc2b2_ae3d_27d4_eb4f).wrapping_add(1)),
        out: Vec::with_capacity(cfg.target_len + 1024),
        target_len: cfg.target_len,
        done: false,
    };
    let cumulative = zipf_cumulative(ast.top_level.len(), cfg.zipf_exponent);
    let dispatch_pc = ast.dispatcher;
    let loop_pc = dispatch_pc.next_inst();

    while !ex.done {
        // Dispatcher: `icall <top-level fn>` then `jump` back.
        let pick = pick_zipf(&mut ex.rng, &cumulative);
        let callee = ast.top_level[pick];
        let entry = ast.entries[callee];
        ex.emit_branch(dispatch_pc, BranchClass::IndirectCall, true, entry);
        ex.exec_function(callee, loop_pc);
        ex.emit_branch(loop_pc, BranchClass::UncondDirect, true, dispatch_pc);
    }

    Trace::from_instrs(cfg.name.clone(), ex.out)
}

struct Exec<'a> {
    ast: &'a Ast,
    rng: StdRng,
    out: Vec<TraceInstr>,
    target_len: usize,
    done: bool,
}

impl Exec<'_> {
    fn emit_plain(&mut self, pc: Addr) {
        if self.done {
            return;
        }
        self.out.push(TraceInstr::plain(pc));
        self.check_done();
    }

    fn emit_branch(&mut self, pc: Addr, class: BranchClass, taken: bool, target: Addr) {
        if self.done {
            return;
        }
        self.out.push(TraceInstr::branch(
            pc,
            BranchRecord::new(class, taken, target),
        ));
        self.check_done();
    }

    fn check_done(&mut self) {
        if self.out.len() >= self.target_len {
            self.done = true;
        }
    }

    fn exec_function(&mut self, func: usize, return_to: Addr) {
        let entry = self.ast.entries[func];
        let body = &self.ast.funcs[func].body;
        let ret_pc = self.exec_stmts(body, entry);
        self.emit_branch(ret_pc, BranchClass::Return, true, return_to);
    }

    /// Executes a statement sequence laid out starting at `addr`; returns the
    /// address just past the sequence.
    fn exec_stmts(&mut self, stmts: &[Stmt], addr: Addr) -> Addr {
        let mut pc = addr;
        for stmt in stmts {
            if self.done {
                // Keep address bookkeeping exact even while suppressed.
                pc = pc.add_insts(stmt.size);
                continue;
            }
            pc = self.exec_stmt(stmt, pc);
        }
        pc
    }

    fn exec_stmt(&mut self, stmt: &Stmt, addr: Addr) -> Addr {
        let after = addr.add_insts(stmt.size);
        match &stmt.kind {
            StmtKind::Straight(n) => {
                let mut pc = addr;
                for _ in 0..*n {
                    self.emit_plain(pc);
                    pc = pc.next_inst();
                }
            }
            StmtKind::If {
                skip_prob,
                then_body,
                else_body,
            } => {
                let then_start = addr.next_inst();
                let then_size = body_size(then_body);
                let join = after;
                let (branch_target, else_start) = if else_body.is_empty() {
                    (join, None)
                } else {
                    let jump_over = then_start.add_insts(then_size);
                    (jump_over.next_inst(), Some(jump_over))
                };
                let taken = self.rng.gen_bool(*skip_prob);
                self.emit_branch(addr, BranchClass::CondDirect, taken, branch_target);
                if taken {
                    if !else_body.is_empty() {
                        let end = self.exec_stmts(else_body, branch_target);
                        debug_assert_eq!(end, join);
                    }
                } else {
                    let end = self.exec_stmts(then_body, then_start);
                    debug_assert_eq!(end, then_start.add_insts(then_size));
                    if let Some(jump_pc) = else_start {
                        self.emit_branch(jump_pc, BranchClass::UncondDirect, true, join);
                    }
                }
            }
            StmtKind::Loop {
                min_trips,
                max_trips,
                body,
            } => {
                let body_start = addr;
                let backedge = addr.add_insts(body_size(body));
                let trips = self.rng.gen_range(*min_trips..=*max_trips);
                for t in 0..trips {
                    if self.done {
                        break;
                    }
                    self.exec_stmts(body, body_start);
                    let again = t + 1 < trips;
                    self.emit_branch(backedge, BranchClass::CondDirect, again, body_start);
                }
            }
            StmtKind::Call { callee } => {
                let entry = self.ast.entries[*callee];
                self.emit_branch(addr, BranchClass::Call, true, entry);
                self.exec_function(*callee, after);
            }
            StmtKind::IndirectCall {
                callees,
                first_bias,
            } => {
                let idx = if callees.len() == 1 || self.rng.gen_bool(*first_bias) {
                    0
                } else {
                    self.rng.gen_range(1..callees.len())
                };
                let callee = callees[idx];
                let entry = self.ast.entries[callee];
                self.emit_branch(addr, BranchClass::IndirectCall, true, entry);
                self.exec_function(callee, after);
            }
            StmtKind::Switch { arms } => {
                let join = after;
                // Skewed arm selection: real switches have a hot arm, which
                // last-target indirect prediction partially captures.
                let pick = if self.rng.gen_bool(0.85) {
                    0
                } else {
                    self.rng.gen_range(0..arms.len())
                };
                // Compute the picked arm's start address.
                let mut arm_start = addr.next_inst();
                for arm in arms.iter().take(pick) {
                    arm_start = arm_start.add_insts(body_size(arm) + 1);
                }
                self.emit_branch(addr, BranchClass::IndirectJump, true, arm_start);
                let arm_end = self.exec_stmts(&arms[pick], arm_start);
                self.emit_branch(arm_end, BranchClass::UncondDirect, true, join);
            }
        }
        after
    }
}

/// Cumulative Zipf weights for dispatcher selection: weight of rank `i` is
/// `1/(i+1)^s`.
fn zipf_cumulative(n: usize, exponent: f64) -> Vec<f64> {
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(exponent);
        cumulative.push(total);
    }
    cumulative
}

fn pick_zipf(rng: &mut StdRng, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("at least one top-level function");
    let r = rng.gen_range(0.0..total);
    match cumulative.binary_search_by(|w| w.partial_cmp(&r).expect("weights are finite")) {
        Ok(i) => i,
        Err(i) => i.min(cumulative.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, Profile};
    use crate::TraceStats;

    fn small(profile: Profile, seed: u64, len: usize) -> Trace {
        GeneratorConfig::profile(profile)
            .seed(seed)
            .target_len(len)
            .generate()
    }

    #[test]
    fn generated_traces_are_valid_for_all_profiles() {
        for profile in Profile::ALL {
            let t = small(profile, 11, 4_000);
            assert!(t.len() >= 4_000, "{profile}: {}", t.len());
            t.validate().unwrap_or_else(|e| panic!("{profile}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(Profile::Jumpy, 5, 3_000);
        let b = small(Profile::Jumpy, 5, 3_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small(Profile::Client, 1, 3_000);
        let b = small(Profile::Client, 2, 3_000);
        assert_ne!(a, b);
    }

    #[test]
    fn server_footprint_exceeds_client() {
        let client = TraceStats::measure(&small(Profile::Client, 3, 60_000));
        let server = TraceStats::measure(&small(Profile::Server, 3, 60_000));
        assert!(
            server.footprint_bytes > 2 * client.footprint_bytes,
            "server {} vs client {}",
            server.footprint_bytes,
            client.footprint_bytes
        );
        assert!(server.static_taken_branches > client.static_taken_branches);
    }

    #[test]
    fn traces_contain_every_branch_class() {
        let s = TraceStats::measure(&small(Profile::Jumpy, 7, 50_000));
        for class in fdip_types::BranchClass::ALL {
            assert!(s.mix.count(class) > 0, "missing {class}");
        }
    }

    #[test]
    fn offsets_span_short_and_long() {
        let s = TraceStats::measure(&small(Profile::Server, 9, 80_000));
        // Short intra-function offsets…
        assert!(s.offsets.cumulative_fraction(8) > 0.2);
        // …and some cross-module offsets needing more than 23 bits.
        assert!(
            s.offsets.cumulative_fraction(23) < 1.0,
            "no long offsets at all"
        );
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let cumulative = zipf_cumulative(8, 1.5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0u32; 8];
        for _ in 0..10_000 {
            counts[pick_zipf(&mut rng, &cumulative)] += 1;
        }
        assert!(counts[0] > counts[7] * 4, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn calls_balance_returns_in_full_transactions() {
        // Generate enough to include several complete transactions, then
        // count calls vs returns: they can differ only by the truncated tail
        // (bounded by the call-level depth + 1 dispatcher frame).
        let t = small(Profile::Client, 13, 20_000);
        let s = TraceStats::measure(&t);
        let calls = s.mix.count(fdip_types::BranchClass::Call)
            + s.mix.count(fdip_types::BranchClass::IndirectCall);
        let rets = s.mix.count(fdip_types::BranchClass::Return);
        assert!(calls >= rets);
        assert!(calls - rets < 64, "calls {calls} rets {rets}");
    }
}
