/// Named workload profiles, the starting points for
/// [`GeneratorConfig::profile`](crate::gen::GeneratorConfig::profile).
///
/// The profiles differ chiefly in instruction footprint and control-flow
/// character, mirroring the workload classes of the FDIP literature:
/// client-side programs have compact, loopy code; server workloads have
/// multi-megabyte instruction working sets spread over deep, flat call
/// graphs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Profile {
    /// Compact footprint (~100–200 KB), hot loops, strongly biased branches.
    /// L1-I and BTB pressure is mild.
    Client,
    /// Large footprint (multiple MB) over many modules, deep call chains,
    /// flat reuse — the workloads where front-end prefetching pays off.
    Server,
    /// Tiny kernel-style program: a few functions and hot loops. Useful for
    /// fast tests and as an (easy) best case.
    MicroLoop,
    /// Indirect-control-flow heavy: many indirect calls/jumps with weakly
    /// biased conditionals. Stresses the BTB and indirect prediction.
    Jumpy,
}

impl Profile {
    /// All profiles, in a stable order.
    pub const ALL: [Profile; 4] = [
        Profile::Client,
        Profile::Server,
        Profile::MicroLoop,
        Profile::Jumpy,
    ];

    /// Short lowercase name, matching the generated trace's default name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Client => "client",
            Profile::Server => "server",
            Profile::MicroLoop => "microloop",
            Profile::Jumpy => "jumpy",
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Profile::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Profile::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        for p in Profile::ALL {
            assert_eq!(p.to_string(), p.name());
        }
    }
}
