use std::ops::RangeInclusive;

use crate::gen::{build, exec, profiles::Profile};
use crate::Trace;

/// Configuration for the synthetic workload generator.
///
/// Construct via [`GeneratorConfig::profile`] and customize with the
/// builder-style setters; finish with [`GeneratorConfig::generate`].
///
/// # Examples
///
/// ```
/// use fdip_trace::gen::{GeneratorConfig, Profile};
///
/// let trace = GeneratorConfig::profile(Profile::Client)
///     .seed(42)
///     .target_len(10_000)
///     .generate();
/// assert!(trace.len() >= 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    pub(crate) name: String,
    pub(crate) seed: u64,
    pub(crate) target_len: usize,

    // --- program shape ---
    /// Number of functions in the program.
    pub(crate) num_funcs: usize,
    /// Call-DAG depth: functions are assigned to this many levels and only
    /// call the next level down.
    pub(crate) call_levels: usize,
    /// Top-level statements per function body.
    pub(crate) body_stmts: RangeInclusive<usize>,
    /// Maximum statement nesting depth inside a function.
    pub(crate) max_nesting: usize,
    /// Length of straight-line runs.
    pub(crate) straight_len: RangeInclusive<u32>,
    /// Loop trip counts.
    pub(crate) loop_trips: RangeInclusive<u32>,
    /// Switch arm counts.
    pub(crate) switch_arms: RangeInclusive<usize>,
    /// Candidate callee set size for indirect calls.
    pub(crate) icall_fanout: RangeInclusive<usize>,
    /// Per-slot statement kind weights: [straight, if, loop, call, icall, switch].
    pub(crate) stmt_weights: [u32; 6],
    /// Fraction of conditionals that are strongly biased (~95/5) rather than
    /// moderately (~80/20) or weakly (~50/50) biased. The remainder splits
    /// 2:1 moderate:weak.
    pub(crate) strong_bias_fraction: f64,

    // --- layout ---
    /// Number of far-apart modules the functions are spread across.
    pub(crate) modules: usize,
    /// Gap between module base addresses, in bytes.
    pub(crate) module_gap_bytes: u64,
    /// Padding between consecutive functions, in instructions.
    pub(crate) func_gap_insts: RangeInclusive<u64>,

    // --- dynamic behaviour ---
    /// Number of distinct top-level (level 0) functions the dispatcher can
    /// invoke.
    pub(crate) top_level_funcs: usize,
    /// Zipf exponent for dispatcher function selection (higher = more skew
    /// toward a hot few).
    pub(crate) zipf_exponent: f64,
}

impl GeneratorConfig {
    /// Starts from a named workload profile's defaults.
    pub fn profile(profile: Profile) -> GeneratorConfig {
        profiles_base(profile)
    }

    /// Sets the workload/trace name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the RNG seed. Identical configs with identical seeds produce
    /// identical traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the minimum dynamic trace length; generation stops at the first
    /// instruction at or past this count.
    pub fn target_len(mut self, target_len: usize) -> Self {
        self.target_len = target_len;
        self
    }

    /// Overrides the number of functions (scales the instruction footprint).
    pub fn num_funcs(mut self, num_funcs: usize) -> Self {
        assert!(num_funcs >= 1, "need at least one function");
        self.num_funcs = num_funcs;
        self.top_level_funcs = self.top_level_funcs.min(num_funcs);
        self
    }

    /// Overrides the number of layout modules.
    pub fn modules(mut self, modules: usize) -> Self {
        assert!(modules >= 1, "need at least one module");
        self.modules = modules;
        self
    }

    /// Overrides the call-DAG depth.
    pub fn call_levels(mut self, levels: usize) -> Self {
        assert!(levels >= 1);
        self.call_levels = levels;
        self
    }

    /// Overrides the Zipf exponent of dispatcher function selection.
    pub fn zipf_exponent(mut self, exponent: f64) -> Self {
        self.zipf_exponent = exponent;
        self
    }

    /// Builds the program and executes it into a trace.
    pub fn generate(&self) -> Trace {
        let ast = build::build_program(self);
        exec::execute(self, &ast)
    }
}

fn profiles_base(profile: Profile) -> GeneratorConfig {
    // Common defaults, specialized per profile below.
    let base = GeneratorConfig {
        name: String::new(),
        seed: 0,
        target_len: 1_000_000,
        num_funcs: 256,
        call_levels: 8,
        body_stmts: 4..=10,
        max_nesting: 3,
        straight_len: 2..=12,
        loop_trips: 6..=24,
        switch_arms: 2..=5,
        icall_fanout: 2..=5,
        stmt_weights: [40, 20, 10, 20, 5, 5],
        strong_bias_fraction: 0.85,
        modules: 4,
        module_gap_bytes: 1 << 28,
        func_gap_insts: 0..=8,
        top_level_funcs: 16,
        zipf_exponent: 1.2,
    };
    match profile {
        Profile::Client => GeneratorConfig {
            name: "client".to_string(),
            num_funcs: 320,
            call_levels: 7,
            modules: 2,
            module_gap_bytes: 1 << 24,
            top_level_funcs: 24,
            zipf_exponent: 1.1,
            loop_trips: 4..=48,
            straight_len: 3..=14,
            stmt_weights: [41, 20, 12, 22, 2, 3],
            strong_bias_fraction: 0.96,
            ..base
        },
        Profile::Server => GeneratorConfig {
            name: "server".to_string(),
            num_funcs: 6000,
            call_levels: 8,
            modules: 8,
            module_gap_bytes: 1 << 28,
            top_level_funcs: 192,
            zipf_exponent: 1.0,
            loop_trips: 12..=32,
            straight_len: 3..=10,
            body_stmts: 4..=8,
            stmt_weights: [36, 19, 5, 28, 5, 3],
            strong_bias_fraction: 0.97,
            func_gap_insts: 8..=48,
            ..base
        },
        Profile::MicroLoop => GeneratorConfig {
            name: "microloop".to_string(),
            num_funcs: 6,
            call_levels: 2,
            modules: 1,
            top_level_funcs: 2,
            loop_trips: 16..=64,
            stmt_weights: [50, 15, 30, 5, 0, 0],
            zipf_exponent: 2.0,
            ..base
        },
        Profile::Jumpy => GeneratorConfig {
            name: "jumpy".to_string(),
            num_funcs: 512,
            call_levels: 8,
            modules: 6,
            top_level_funcs: 32,
            stmt_weights: [30, 15, 5, 20, 15, 15],
            strong_bias_fraction: 0.4,
            zipf_exponent: 0.8,
            ..base
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters_apply() {
        let c = GeneratorConfig::profile(Profile::Client)
            .name("x")
            .seed(9)
            .target_len(123)
            .num_funcs(10)
            .modules(3)
            .call_levels(2)
            .zipf_exponent(0.5);
        assert_eq!(c.name, "x");
        assert_eq!(c.seed, 9);
        assert_eq!(c.target_len, 123);
        assert_eq!(c.num_funcs, 10);
        assert_eq!(c.modules, 3);
        assert_eq!(c.call_levels, 2);
        assert_eq!(c.zipf_exponent, 0.5);
    }

    #[test]
    fn num_funcs_clamps_top_level() {
        let c = GeneratorConfig::profile(Profile::Server).num_funcs(4);
        assert!(c.top_level_funcs <= 4);
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn zero_funcs_rejected() {
        let _ = GeneratorConfig::profile(Profile::Client).num_funcs(0);
    }

    #[test]
    fn profiles_have_distinct_footprints() {
        let client = GeneratorConfig::profile(Profile::Client);
        let server = GeneratorConfig::profile(Profile::Server);
        assert!(server.num_funcs > 4 * client.num_funcs);
    }
}
