//! The structured-program AST the generator builds and the executor walks.
//!
//! Every statement knows its lowered size in instructions, computed at
//! construction time, so branch targets can be derived without a separate
//! lowering pass. The lowering scheme (addresses relative to the statement's
//! first instruction) is:
//!
//! ```text
//! Straight(n)      n plain instructions
//! If               [cond] [then…] [jump-over-else]? [else…]   (cond taken ⇒ skip then)
//! Loop             [body…] [cond back-edge]                   (taken ⇒ loop again)
//! Call / ICall     [call]                                      1 instruction
//! Switch           [ijump] ([arm…] [jump-to-join])×arms
//! ```
//!
//! A function is its body followed by one `ret` instruction.

/// One statement of the structured program.
#[derive(Clone, Debug)]
pub(crate) struct Stmt {
    pub kind: StmtKind,
    /// Lowered size of this statement, in instructions.
    pub size: u64,
}

/// Statement payload. See the module docs for the lowering of each variant.
#[derive(Clone, Debug)]
pub(crate) enum StmtKind {
    /// `n` plain instructions.
    Straight(u32),
    /// A conditional region. `skip_prob` is the probability the conditional
    /// branch is *taken*, i.e. the then-body is skipped.
    If {
        skip_prob: f64,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// A do-while loop: the body runs `trips` times, with the back-edge
    /// conditional taken `trips - 1` times. Trips are drawn uniformly from
    /// `min_trips..=max_trips` at each loop entry.
    Loop {
        min_trips: u32,
        max_trips: u32,
        body: Vec<Stmt>,
    },
    /// A direct call to function `callee`.
    Call { callee: usize },
    /// An indirect call; the dynamic callee is drawn from `callees`
    /// (first entry favored with probability `first_bias`).
    IndirectCall {
        callees: Vec<usize>,
        first_bias: f64,
    },
    /// A switch: an indirect jump into one of `arms`, each arm ending with a
    /// direct jump to the join point. Arm weights are uniform.
    Switch { arms: Vec<Vec<Stmt>> },
}

impl Stmt {
    pub fn straight(n: u32) -> Stmt {
        debug_assert!(n > 0);
        Stmt {
            kind: StmtKind::Straight(n),
            size: n as u64,
        }
    }

    pub fn if_else(skip_prob: f64, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
        debug_assert!(!then_body.is_empty(), "if requires a then body");
        let mut size = 1 + body_size(&then_body);
        if !else_body.is_empty() {
            size += 1 + body_size(&else_body);
        }
        Stmt {
            kind: StmtKind::If {
                skip_prob,
                then_body,
                else_body,
            },
            size,
        }
    }

    pub fn loop_(min_trips: u32, max_trips: u32, body: Vec<Stmt>) -> Stmt {
        debug_assert!(!body.is_empty(), "loop requires a body");
        debug_assert!(1 <= min_trips && min_trips <= max_trips);
        let size = body_size(&body) + 1;
        Stmt {
            kind: StmtKind::Loop {
                min_trips,
                max_trips,
                body,
            },
            size,
        }
    }

    pub fn call(callee: usize) -> Stmt {
        Stmt {
            kind: StmtKind::Call { callee },
            size: 1,
        }
    }

    pub fn indirect_call(callees: Vec<usize>, first_bias: f64) -> Stmt {
        debug_assert!(!callees.is_empty());
        Stmt {
            kind: StmtKind::IndirectCall {
                callees,
                first_bias,
            },
            size: 1,
        }
    }

    pub fn switch(arms: Vec<Vec<Stmt>>) -> Stmt {
        debug_assert!(arms.len() >= 2, "switch requires at least two arms");
        let size = 1 + arms.iter().map(|arm| body_size(arm) + 1).sum::<u64>();
        Stmt {
            kind: StmtKind::Switch { arms },
            size,
        }
    }
}

/// Total lowered size of a statement sequence, in instructions.
pub(crate) fn body_size(body: &[Stmt]) -> u64 {
    body.iter().map(|s| s.size).sum()
}

/// A function: a body plus the implicit trailing `ret`.
#[derive(Clone, Debug)]
pub(crate) struct Function {
    pub body: Vec<Stmt>,
}

impl Function {
    /// Lowered size including the trailing `ret`.
    pub fn size(&self) -> u64 {
        body_size(&self.body) + 1
    }
}

/// A whole generated program: functions plus their base addresses.
#[derive(Clone, Debug)]
pub(crate) struct Ast {
    pub funcs: Vec<Function>,
    /// Base (entry) address of each function, parallel to `funcs`.
    pub entries: Vec<fdip_types::Addr>,
    /// Indices of the top-level functions the dispatcher may invoke.
    pub top_level: Vec<usize>,
    /// Address of the dispatcher loop (2 instructions: icall; jump back).
    pub dispatcher: fdip_types::Addr,
}

impl Ast {
    /// Total static code size in instructions (functions only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn code_insts(&self) -> u64 {
        self.funcs.iter().map(Function::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_size() {
        assert_eq!(Stmt::straight(7).size, 7);
    }

    #[test]
    fn if_size_without_else() {
        let s = Stmt::if_else(0.5, vec![Stmt::straight(3)], vec![]);
        assert_eq!(s.size, 1 + 3);
    }

    #[test]
    fn if_size_with_else() {
        let s = Stmt::if_else(0.5, vec![Stmt::straight(3)], vec![Stmt::straight(2)]);
        // cond + then + jump-over + else
        assert_eq!(s.size, 1 + 3 + 1 + 2);
    }

    #[test]
    fn loop_size() {
        let s = Stmt::loop_(1, 4, vec![Stmt::straight(5)]);
        assert_eq!(s.size, 5 + 1);
    }

    #[test]
    fn switch_size() {
        let s = Stmt::switch(vec![vec![Stmt::straight(2)], vec![Stmt::straight(4)]]);
        // ijump + (2 + jump) + (4 + jump)
        assert_eq!(s.size, 1 + 3 + 5);
    }

    #[test]
    fn nested_sizes_compose() {
        let inner = Stmt::if_else(0.1, vec![Stmt::straight(2)], vec![]);
        let inner_size = inner.size;
        let s = Stmt::loop_(2, 2, vec![Stmt::straight(1), inner]);
        assert_eq!(s.size, 1 + inner_size + 1);
    }

    #[test]
    fn function_size_includes_ret() {
        let f = Function {
            body: vec![Stmt::straight(9)],
        };
        assert_eq!(f.size(), 10);
    }
}
