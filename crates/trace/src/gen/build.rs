//! Random construction of the structured program (AST + layout).

use fdip_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::ast::{Ast, Function, Stmt};
use crate::gen::config::GeneratorConfig;

/// Address of the two-instruction dispatcher loop.
const DISPATCHER_BASE: u64 = 0x1_0000;
/// Lowest module base address.
const FIRST_MODULE_BASE: u64 = 0x10_0000;

/// Probability a call site targets a function in the caller's own module
/// (linkers cluster code by call affinity, which is what keeps most branch
/// offsets short in real binaries).
const LOCAL_CALL_PROB: f64 = 0.8;

/// Builds the whole program: leveled call DAG, function bodies, and layout.
pub(crate) fn build_program(cfg: &GeneratorConfig) -> Ast {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let levels = assign_levels(cfg);
    let num_levels = levels.iter().copied().max().unwrap_or(0) + 1;

    // Interleave modules across ids so every call level is present in every
    // module; layout below groups functions by module.
    let module_of: Vec<usize> = (0..cfg.num_funcs).map(|i| i % cfg.modules).collect();

    // Callee pools: per level (any module), and per (level, module) for
    // local calls.
    let mut pools: Vec<Vec<usize>> = vec![Vec::new(); num_levels];
    let mut local_pools: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); cfg.modules]; num_levels];
    for (func, &level) in levels.iter().enumerate() {
        pools[level].push(func);
        local_pools[level][module_of[func]].push(func);
    }

    let funcs: Vec<Function> = (0..cfg.num_funcs)
        .map(|i| {
            let level = levels[i];
            let global: &[usize] = pools.get(level + 1).map_or(&[], Vec::as_slice);
            let local: &[usize] = local_pools
                .get(level + 1)
                .map_or(&[], |by_module| by_module[module_of[i]].as_slice());
            gen_function(&mut rng, cfg, &CalleePools { local, global })
        })
        .collect();

    let entries = layout(&mut rng, cfg, &funcs, &module_of);
    let top_level = pools[0].clone();

    Ast {
        funcs,
        entries,
        top_level,
        dispatcher: Addr::new(DISPATCHER_BASE),
    }
}

/// Callee candidates for a function: same-module (preferred) and global.
struct CalleePools<'a> {
    local: &'a [usize],
    global: &'a [usize],
}

impl CalleePools<'_> {
    fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// Draws a callee: usually local (short offset), sometimes any module.
    fn pick(&self, rng: &mut StdRng) -> usize {
        if !self.local.is_empty() && rng.gen_bool(LOCAL_CALL_PROB) {
            self.local[rng.gen_range(0..self.local.len())]
        } else {
            self.global[rng.gen_range(0..self.global.len())]
        }
    }
}

/// Assigns each function to a call-DAG level. Level 0 holds the top-level
/// (dispatcher-invocable) functions; the rest are split evenly below.
fn assign_levels(cfg: &GeneratorConfig) -> Vec<usize> {
    let top = cfg.top_level_funcs.clamp(1, cfg.num_funcs);
    let rest = cfg.num_funcs - top;
    let lower_levels = cfg.call_levels.saturating_sub(1).max(1);
    let mut levels = vec![0; cfg.num_funcs];
    for i in 0..rest {
        // Spread the remaining functions evenly across levels 1..call_levels
        // (or keep everything at level 0 when call_levels == 1).
        let level = if cfg.call_levels <= 1 {
            0
        } else {
            1 + i * lower_levels / rest.max(1)
        };
        levels[top + i] = level.min(cfg.call_levels - 1);
    }
    levels
}

fn gen_function(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    callee_pool: &CalleePools<'_>,
) -> Function {
    let n_stmts = rng.gen_range(cfg.body_stmts.clone());
    let mut body = gen_body(rng, cfg, callee_pool, 0, false, n_stmts);
    // Guarantee one or two unconditional call sites per non-leaf function:
    // without them, call chains die out statistically and the visited
    // instruction footprint collapses to a handful of hot functions.
    if !callee_pool.is_empty() {
        for _ in 0..rng.gen_range(1..=2u32) {
            let callee = callee_pool.pick(rng);
            let pos = rng.gen_range(0..=body.len());
            body.insert(pos, Stmt::call(callee));
        }
    }
    Function { body }
}

fn gen_body(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    callee_pool: &CalleePools<'_>,
    nesting: usize,
    in_loop: bool,
    n_stmts: usize,
) -> Vec<Stmt> {
    let mut body = Vec::with_capacity(n_stmts.max(1));
    for _ in 0..n_stmts.max(1) {
        body.push(gen_stmt(rng, cfg, callee_pool, nesting, in_loop));
    }
    body
}

fn gen_stmt(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    callee_pool: &CalleePools<'_>,
    nesting: usize,
    in_loop: bool,
) -> Stmt {
    // Kind indices: 0 straight, 1 if, 2 loop, 3 call, 4 icall, 5 switch.
    let mut weights = cfg.stmt_weights;
    if nesting >= cfg.max_nesting {
        weights[1] = 0;
        weights[2] = 0;
        weights[5] = 0;
    }
    // Loops only at function top level, and no calls under a loop: this
    // keeps dynamic transaction sizes bounded and predictable — nested
    // loop/call amplification otherwise concentrates the whole trace in a
    // couple of hot functions and collapses the instruction footprint.
    if nesting >= 1 {
        weights[2] = 0;
    }
    if callee_pool.is_empty() || in_loop {
        weights[3] = 0;
        weights[4] = 0;
    }
    let kind = weighted_choice(rng, &weights);
    let inner_stmts = || 1..=2usize;
    match kind {
        1 => {
            let then_len = rng.gen_range(inner_stmts());
            let then_body = gen_body(rng, cfg, callee_pool, nesting + 1, in_loop, then_len);
            let else_body = if rng.gen_bool(0.4) {
                let else_len = rng.gen_range(inner_stmts());
                gen_body(rng, cfg, callee_pool, nesting + 1, in_loop, else_len)
            } else {
                Vec::new()
            };
            Stmt::if_else(draw_skip_prob(rng, cfg, in_loop), then_body, else_body)
        }
        2 => {
            let len = rng.gen_range(inner_stmts());
            let body = gen_body(rng, cfg, callee_pool, nesting + 1, true, len);
            // Static loops have fixed trip counts: loop exits are
            // history-predictable, as in real code (a small minority
            // jitter, defeating the predictor occasionally).
            let a = rng.gen_range(cfg.loop_trips.clone()).max(1);
            let b = if rng.gen_bool(0.92) {
                a
            } else {
                a + rng.gen_range(1u32..=2)
            };
            Stmt::loop_(a, b, body)
        }
        3 => Stmt::call(callee_pool.pick(rng)),
        4 => {
            let fanout = rng
                .gen_range(cfg.icall_fanout.clone())
                .min(callee_pool.global.len())
                .max(1);
            let mut callees = Vec::with_capacity(fanout);
            for _ in 0..fanout {
                callees.push(callee_pool.pick(rng));
            }
            callees.dedup();
            Stmt::indirect_call(callees, 0.85)
        }
        5 => {
            let arm_count = rng.gen_range(cfg.switch_arms.clone()).max(2);
            let arms = (0..arm_count)
                .map(|_| {
                    let len = rng.gen_range(inner_stmts());
                    gen_body(rng, cfg, callee_pool, nesting + 1, in_loop, len)
                })
                .collect();
            Stmt::switch(arms)
        }
        _ => Stmt::straight(rng.gen_range(cfg.straight_len.clone()).max(1)),
    }
}

/// Draws the probability that an `if`'s conditional branch is taken, from a
/// mixture of strongly / moderately / weakly biased branch populations.
fn draw_skip_prob(rng: &mut StdRng, cfg: &GeneratorConfig, in_loop: bool) -> f64 {
    // Conditionals inside loop bodies are extra-biased: noisy in-loop
    // branches would poison the global history every iteration and make
    // loop exits unlearnable, which real loop-heavy code does not exhibit.
    if in_loop {
        let p = rng.gen_range(0.002..0.02);
        return if rng.gen_bool(0.5) { 1.0 - p } else { p };
    }
    let r: f64 = rng.gen();
    let weak_fraction = (1.0 - cfg.strong_bias_fraction) / 4.0;
    let p = if r < cfg.strong_bias_fraction {
        rng.gen_range(0.002..0.025)
    } else if r < 1.0 - weak_fraction {
        rng.gen_range(0.06..0.15)
    } else {
        rng.gen_range(0.30..0.50)
    };
    // Half the branches are biased-taken rather than biased-not-taken.
    if rng.gen_bool(0.5) {
        1.0 - p
    } else {
        p
    }
}

fn weighted_choice(rng: &mut StdRng, weights: &[u32; 6]) -> usize {
    let total: u32 = weights.iter().sum();
    debug_assert!(total > 0, "all statement kinds disabled");
    let mut pick = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if pick < w {
            return i;
        }
        pick -= w;
    }
    0
}

/// Places functions into modules and assigns entry addresses.
///
/// Functions are split into `cfg.modules` contiguous chunks; module bases
/// are spaced by at least `cfg.module_gap_bytes` (more if a module's code is
/// larger), producing the short-intra-module / long-cross-module offset
/// mixture the FDIP-X study depends on.
fn layout(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    funcs: &[Function],
    module_of: &[usize],
) -> Vec<Addr> {
    let n = funcs.len();
    let mut entries = vec![Addr::ZERO; n];
    let mut module_base = FIRST_MODULE_BASE;
    for m in 0..cfg.modules {
        let mut cursor = module_base;
        for i in (0..n).filter(|&i| module_of[i] == m) {
            entries[i] = Addr::new(cursor);
            let gap = rng.gen_range(cfg.func_gap_insts.clone());
            cursor += (funcs[i].size() + gap) * 4;
        }
        let used = cursor - module_base;
        module_base += used.max(cfg.module_gap_bytes).next_multiple_of(4);
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Profile;

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig::profile(Profile::Client)
            .num_funcs(24)
            .seed(3)
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_program(&small_cfg());
        let b = build_program(&small_cfg());
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.code_insts(), b.code_insts());
    }

    #[test]
    fn entries_are_disjoint_and_ordered_within_modules() {
        let cfg = small_cfg();
        let ast = build_program(&cfg);
        // Function address ranges must be pairwise disjoint (module
        // interleaving reorders ids, so sort by address first).
        let mut ranges: Vec<(u64, u64)> = (0..ast.funcs.len())
            .map(|i| {
                (
                    ast.entries[i].raw(),
                    ast.entries[i].add_insts(ast.funcs[i].size()).raw(),
                )
            })
            .collect();
        ranges.sort();
        for pair in ranges.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "overlap: {:x?} and {:x?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn entries_are_instruction_aligned() {
        let ast = build_program(&small_cfg());
        for e in &ast.entries {
            assert!(e.is_inst_aligned());
        }
        assert!(ast.dispatcher.is_inst_aligned());
    }

    #[test]
    fn top_level_functions_exist_and_are_level_zero_sized() {
        let cfg = small_cfg();
        let ast = build_program(&cfg);
        assert!(!ast.top_level.is_empty());
        assert!(ast.top_level.len() <= cfg.num_funcs);
        for &f in &ast.top_level {
            assert!(f < ast.funcs.len());
        }
    }

    #[test]
    fn modules_create_far_apart_code() {
        let cfg = GeneratorConfig::profile(Profile::Server)
            .num_funcs(64)
            .modules(4)
            .seed(1);
        let ast = build_program(&cfg);
        let first = ast.entries[0];
        let last = ast.entries[63];
        assert!(
            (last - first).unsigned_abs() >= 3 * cfg.module_gap_bytes,
            "modules not spread"
        );
    }

    #[test]
    fn single_level_programs_have_no_calls() {
        let cfg = GeneratorConfig::profile(Profile::Client)
            .num_funcs(8)
            .call_levels(1)
            .seed(5);
        let ast = build_program(&cfg);
        fn has_call(stmts: &[Stmt]) -> bool {
            use crate::gen::ast::StmtKind::*;
            stmts.iter().any(|s| match &s.kind {
                Call { .. } | IndirectCall { .. } => true,
                If {
                    then_body,
                    else_body,
                    ..
                } => has_call(then_body) || has_call(else_body),
                Loop { body, .. } => has_call(body),
                Switch { arms } => arms.iter().any(|a| has_call(a)),
                Straight(_) => false,
            })
        }
        for f in &ast.funcs {
            assert!(!has_call(&f.body));
        }
    }
}
