//! Deterministic synthetic workload generation.
//!
//! The original FDIP evaluation ran on traces of SPEC95 and C applications;
//! those traces are not available, so this module builds the closest
//! synthetic equivalent: a random *structured program* — functions composed
//! of straight-line runs, biased conditionals, counted loops, direct and
//! indirect calls, and switch-style indirect jumps — laid out in a 48-bit
//! address space, then *executed* by an interpreter that emits a
//! [`Trace`](crate::Trace).
//!
//! What the FDIP experiments care about is captured as first-class
//! parameters:
//!
//! * **instruction footprint** (functions × size × module layout) vs. the
//!   L1-I capacity — drives miss rates;
//! * **branch working-set size** vs. BTB capacity — drives FDIP's reach;
//! * **branch offset distribution** (intra-function short offsets,
//!   cross-module long offsets) — drives the FDIP-X partitioning study;
//! * **branch bias / predictability** — drives direction-predictor accuracy.
//!
//! Programs are generated as a leveled call DAG (a function at level *L*
//! only calls level *L+1*), so execution always terminates and dynamic call
//! depth is bounded by construction. A small *dispatcher loop* repeatedly
//! indirect-calls a Zipf-weighted top-level function, modeling a server's
//! request loop.
//!
//! Everything is seeded: the same [`GeneratorConfig`] always produces the
//! same trace, byte for byte.
//!
//! # Examples
//!
//! ```
//! use fdip_trace::gen::{GeneratorConfig, Profile};
//!
//! let a = GeneratorConfig::profile(Profile::Server).seed(1).target_len(5_000).generate();
//! let b = GeneratorConfig::profile(Profile::Server).seed(1).target_len(5_000).generate();
//! assert_eq!(a, b); // fully deterministic
//! a.validate().unwrap();
//! ```

mod ast;
mod build;
mod config;
mod exec;
mod profiles;

pub use config::GeneratorConfig;
pub use profiles::Profile;
