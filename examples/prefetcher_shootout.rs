//! Scenario: compare every instruction prefetcher in the repository on both
//! workload classes — the 1999 paper's comparison, on your terminal.
//!
//! ```sh
//! cargo run --release --example prefetcher_shootout
//! ```

use fdip::{CpfMode, FrontendConfig, PrefetcherKind, Simulator};
use fdip_trace::gen::{GeneratorConfig, Profile};

fn main() {
    let prefetchers: Vec<(&str, PrefetcherKind)> = vec![
        ("next-line", PrefetcherKind::NextLine),
        (
            "stream buffers",
            PrefetcherKind::StreamBuffers(Default::default()),
        ),
        ("fdip", PrefetcherKind::fdip()),
        (
            "fdip + remove-CPF",
            PrefetcherKind::fdip_with_cpf(CpfMode::Remove),
        ),
        ("pif-lite", PrefetcherKind::Pif(Default::default())),
    ];

    for profile in [Profile::Client, Profile::Server] {
        let trace = GeneratorConfig::profile(profile)
            .seed(3)
            .target_len(400_000)
            .generate();
        let base = Simulator::run_trace(&FrontendConfig::default(), &trace);
        println!(
            "\n== {profile} (baseline IPC {:.3}, L1-I MPKI {:.2}) ==",
            base.ipc(),
            base.l1i_mpki()
        );
        println!(
            "{:<18} {:>8} {:>10} {:>10} {:>9}",
            "prefetcher", "speedup", "coverage", "accuracy", "bus"
        );
        for (name, kind) in &prefetchers {
            let stats = Simulator::run_trace(
                &FrontendConfig::default().with_prefetcher(kind.clone()),
                &trace,
            );
            println!(
                "{:<18} {:>7.3}x {:>9.1}% {:>9.1}% {:>8.1}%",
                name,
                stats.speedup_over(&base),
                stats.miss_coverage_vs(&base) * 100.0,
                stats.mem.prefetch_accuracy() * 100.0,
                stats.bus_utilization() * 100.0,
            );
        }
    }
    println!(
        "\n(the paper's conclusion: FDIP with probe filtering wins where footprints are large)"
    );
}
