//! Scenario: explore the BTB storage-accounting tables of the FDIP-X study
//! and see exactly where the bits go — no simulation, pure arithmetic.
//!
//! ```sh
//! cargo run --release --example btb_budget_explorer
//! ```

use fdip_btb::storage::{bb_btb_table, fdipx_table};
use fdip_btb::tag::compress16;

fn main() {
    println!("Table I — basic-block-oriented BTB storage:");
    println!(
        "{:>8} {:>18} {:>12} {:>10}",
        "entries", "organization", "entry bits", "total"
    );
    for row in bb_btb_table() {
        println!(
            "{:>8} {:>18} {:>12} {:>9.2}K",
            row.entries,
            format!("{}-set, {}-way", row.sets, row.ways),
            row.entry_bits,
            row.total_kb(),
        );
    }

    println!("\nTable II — the same budgets spent on the FDIP-X 4-bank ensemble:");
    for budget in fdipx_table() {
        println!(
            "\n  budget {:>7.2}KB  →  {} entries ({:.2}x the basic-block BTB), {:.2}KB used",
            budget.budget_bytes as f64 / 1024.0,
            budget.total_entries(),
            budget.entry_ratio(),
            budget.total_bytes() as f64 / 1024.0,
        );
        for row in &budget.rows {
            println!(
                "    {:>6}-bit-offset bank: {:>6} entries x {:>2} bits = {:>8.2}KB",
                row.bank.bits(),
                row.entries,
                row.entry_bits,
                row.bytes as f64 / 1024.0,
            );
        }
    }

    println!("\nTag compression (folded XOR), a taste:");
    for tag in [0x0000_00ab_u64, 0x00cd_00ab, 0x7f1c_9a2b_3c4du64 >> 2] {
        println!("  full tag {tag:#012x} → 16-bit {:#06x}", compress16(tag));
    }
    println!("\n(every number above matches the published Tables I and II)");
}
