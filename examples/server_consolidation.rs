//! Scenario: you are sizing the BTB for a server-consolidation part. The
//! instruction working set is huge; every KB of BTB is contested by other
//! structures. How much BTB does FDIP actually need, and does the FDIP-X
//! partitioned organization let you ship a smaller one?
//!
//! ```sh
//! cargo run --release --example server_consolidation
//! ```

use fdip::{BtbVariant, FrontendConfig, PrefetcherKind, Simulator};
use fdip_btb::storage::bb_btb_row;
use fdip_trace::gen::{GeneratorConfig, Profile};

fn main() {
    let trace = GeneratorConfig::profile(Profile::Server)
        .seed(7)
        .target_len(500_000)
        .generate();

    println!("budget     organization        speedup   btb hit   verdict");
    println!("-----------------------------------------------------------------");

    let mut best_small: Option<(String, f64)> = None;
    for entries in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        let budget_kb = bb_btb_row(entries).total_kb();
        let base = Simulator::run_trace(
            &FrontendConfig::default().with_btb(BtbVariant::basic_block(entries)),
            &trace,
        );
        for (name, btb) in [
            ("fdip  (bb-btb)", BtbVariant::basic_block(entries)),
            ("fdip-x (4-bank)", BtbVariant::partitioned(entries)),
        ] {
            let stats = Simulator::run_trace(
                &FrontendConfig::default()
                    .with_btb(btb)
                    .with_prefetcher(PrefetcherKind::fdip()),
                &trace,
            );
            let speedup = stats.speedup_over(&base);
            let verdict = if speedup > 1.9 { "ship it" } else { "" };
            println!(
                "{:>6.2}KB   {:<16}   {:>6.3}   {:>6.1}%   {}",
                budget_kb,
                name,
                speedup,
                stats.branches.btb_hit_ratio() * 100.0,
                verdict,
            );
            if speedup > 1.9 && best_small.is_none() {
                best_small = Some((format!("{name} @ {budget_kb:.2}KB"), speedup));
            }
        }
    }
    println!();
    match best_small {
        Some((config, speedup)) => {
            println!("smallest configuration clearing 1.9x: {config} ({speedup:.3}x)")
        }
        None => println!("no configuration cleared 1.9x at these budgets"),
    }
}
