//! Quickstart: generate a workload, run the no-prefetch baseline and FDIP,
//! and print what the decoupled front-end bought you.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fdip::{FrontendConfig, PrefetcherKind, Simulator};
use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_trace::TraceStats;

fn main() {
    // 1. A synthetic server-style workload: large instruction footprint,
    //    deep call chains — the case front-end prefetching exists for.
    let trace = GeneratorConfig::profile(Profile::Server)
        .seed(42)
        .target_len(500_000)
        .generate();
    let shape = TraceStats::measure(&trace);
    println!(
        "workload: {} instructions, {:.0} KB instruction footprint, {} taken branches\n",
        shape.len,
        shape.footprint_bytes as f64 / 1024.0,
        shape.static_taken_branches,
    );

    // 2. The baseline machine: decoupled front-end, no prefetching.
    let base = Simulator::run_trace(&FrontendConfig::default(), &trace);

    // 3. The same machine with the FDIP prefetch engine scanning the FTQ.
    let fdip = Simulator::run_trace(
        &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        &trace,
    );

    println!("                       baseline        fdip");
    println!(
        "IPC                    {:>8.3}    {:>8.3}",
        base.ipc(),
        fdip.ipc()
    );
    println!(
        "L1-I MPKI              {:>8.2}    {:>8.2}",
        base.l1i_mpki(),
        fdip.l1i_mpki()
    );
    println!(
        "icache stall cycles    {:>8}    {:>8}",
        base.icache_stall_cycles, fdip.icache_stall_cycles
    );
    println!(
        "bus utilization        {:>7.1}%    {:>7.1}%",
        base.bus_utilization() * 100.0,
        fdip.bus_utilization() * 100.0
    );
    println!();
    println!(
        "speedup {:.3}x — {:.1}% of baseline L1-I misses covered, {} prefetches issued ({:.0}% useful)",
        fdip.speedup_over(&base),
        fdip.miss_coverage_vs(&base) * 100.0,
        fdip.mem.prefetches_issued,
        fdip.mem.prefetch_accuracy() * 100.0,
    );
}
