//! The published storage tables, checked to the digit, plus consistency
//! between the accounting module and the live structures.

use fdip_btb::storage::{bb_btb_row, bb_btb_table, fdipx_budget, fdipx_table};
use fdip_btb::{BasicBlockBtb, Btb, BtbConfig, PartitionConfig, PartitionedBtb, TagScheme};

#[test]
fn table_one_digits() {
    let expect: [(usize, usize, u32, f64); 6] = [
        (1024, 128, 92, 11.5),
        (2048, 256, 91, 22.75),
        (4096, 512, 90, 45.0),
        (8192, 1024, 89, 89.0),
        (16384, 2048, 88, 176.0),
        (32768, 4096, 87, 348.0),
    ];
    for (row, (entries, sets, bits, kb)) in bb_btb_table().iter().zip(expect) {
        assert_eq!(row.entries, entries);
        assert_eq!(row.sets, sets);
        assert_eq!(row.entry_bits, bits);
        assert!(
            (row.total_kb() - kb).abs() < 0.01,
            "{entries}: {}",
            row.total_kb()
        );
    }
}

#[test]
fn table_two_digits() {
    let expect_entries: [(usize, [usize; 4], f64); 6] = [
        (1024, [768, 768, 768, 112], 10.06),
        (2048, [1536, 1536, 1536, 224], 20.12),
        (4096, [3072, 3072, 3072, 448], 40.25),
        (8192, [6144, 6144, 6144, 896], 80.5),
        (16384, [12288, 12288, 12288, 1792], 161.0),
        (32768, [24576, 24576, 24576, 3584], 322.0),
    ];
    for (budget, (bb, banks, kb)) in fdipx_table().iter().zip(expect_entries) {
        assert_eq!(budget.bb_entries, bb);
        let entries: Vec<usize> = budget.rows.iter().map(|r| r.entries).collect();
        assert_eq!(entries, banks);
        let total_kb = budget.total_bytes() as f64 / 1024.0;
        assert!((total_kb - kb).abs() < 0.1, "{bb}: {total_kb} vs {kb}");
        assert!(budget.total_bytes() <= budget.budget_bytes);
    }
}

#[test]
fn accounting_matches_live_structures() {
    // The storage module's numbers must equal what the actual BTB objects
    // report about themselves.
    for entries in [1024usize, 8192] {
        let row = bb_btb_row(entries);
        let live = BasicBlockBtb::new(BtbConfig::new(row.sets, row.ways, TagScheme::Full));
        assert_eq!(live.storage_bits() / 8, row.total_bytes);

        let budget = fdipx_budget(entries);
        let live = PartitionedBtb::new(PartitionConfig::from_bb_entries(entries));
        assert_eq!(live.storage_bits() / 8, budget.total_bytes());
    }
}

#[test]
fn entry_advantage_is_about_2_36x_everywhere() {
    for budget in fdipx_table() {
        let ratio = budget.entry_ratio();
        assert!(
            (2.3..2.45).contains(&ratio),
            "{}: ratio {ratio}",
            budget.bb_entries
        );
    }
}
