//! Smoke-runs every experiment in the registry at quick scale: each must
//! complete, produce well-formed tables, and (where promised) a chart.

use fdip_sim::experiments;
use fdip_sim::Scale;

#[test]
fn every_experiment_runs_and_produces_well_formed_output() {
    for (id, title, runner) in experiments::all() {
        let result = runner(Scale::quick());
        assert!(!result.tables.is_empty(), "{id}: no tables");
        for table in &result.tables {
            assert!(!table.headers.is_empty(), "{id}");
            assert!(!table.rows.is_empty(), "{id}: empty table {}", table.title);
            for row in &table.rows {
                assert_eq!(
                    row.len(),
                    table.headers.len(),
                    "{id}: ragged row in {}",
                    table.title
                );
            }
            // Text and CSV renderings both work.
            let text = table.to_text();
            assert!(text.contains(&table.title), "{id}");
            let csv = table.to_csv();
            assert_eq!(csv.lines().count(), table.rows.len() + 1, "{id}");
        }
        let _ = title;
        let _ = result.to_text();
    }
}

#[test]
fn figure_experiments_render_charts() {
    for id in ["e04", "e06", "e07", "x4", "x5"] {
        let (_, _, runner) = experiments::all()
            .into_iter()
            .find(|(i, _, _)| *i == id)
            .unwrap();
        let result = runner(Scale::quick());
        let chart = result.chart.as_deref().unwrap_or("");
        assert!(chart.contains('█'), "{id}: chart missing bars");
    }
}
