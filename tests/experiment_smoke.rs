//! Smoke-runs every experiment in the registry at quick scale: each must
//! complete, produce well-formed tables, and (where promised) a chart —
//! and the whole catalogue must share traces and never simulate the same
//! cell twice (the harness acceptance criterion).

use fdip_sim::experiments;
use fdip_sim::harness::Harness;
use fdip_sim::workload::{program_suite, scenario_suite, suite, SuiteKind};
use fdip_sim::Scale;

#[test]
fn every_experiment_runs_and_produces_well_formed_output() {
    let harness = Harness::new();
    for exp in experiments::all() {
        let id = exp.id();
        let result = exp.run(&harness, Scale::quick());
        assert!(!result.tables.is_empty(), "{id}: no tables");
        for table in &result.tables {
            assert!(!table.headers.is_empty(), "{id}");
            assert!(!table.rows.is_empty(), "{id}: empty table {}", table.title);
            for row in &table.rows {
                assert_eq!(
                    row.len(),
                    table.headers.len(),
                    "{id}: ragged row in {}",
                    table.title
                );
            }
            // Text and CSV renderings both work.
            let text = table.to_text();
            assert!(text.contains(&table.title), "{id}");
            let csv = table.to_csv();
            assert_eq!(csv.lines().count(), table.rows.len() + 1, "{id}");
        }
        // The machine-readable document is well-formed enough to carry its
        // identity and schema version.
        let json = result.to_json(id, exp.title()).to_string();
        assert!(json.contains(&format!("\"id\":\"{id}\"")), "{id}");
        assert!(json.contains("\"schema_version\":1"), "{id}");
        let _ = result.to_text();
    }
}

#[test]
fn exp_all_shares_traces_and_simulates_each_cell_exactly_once() {
    // A fresh harness driven exactly like `exp_all`: the whole registry,
    // in order, at quick scale.
    let harness = Harness::new();
    let scale = Scale::quick();
    for exp in experiments::all() {
        let _ = exp.run(&harness, scale);
    }
    let first = harness.stats();

    // Every trace was generated exactly once per (workload, length):
    // quick scale has client-1 and server-1, r1/r2 add the executed
    // program and scenario workloads, and all experiments run at the
    // same trace length — so each distinct workload generates once.
    let distinct_workloads = (suite(SuiteKind::All, scale).len()
        + program_suite().len()
        + scenario_suite(experiments::r1_real_programs::SCENARIO_SEED).len())
        as u64;
    assert_eq!(first.traces_generated, distinct_workloads, "{first:?}");
    assert!(first.trace_hits > 0, "{first:?}");

    // Experiments overlap heavily (every one re-evaluates a baseline), so
    // the content-keyed cache must have served duplicate cells.
    assert!(first.cell_hits > 0, "{first:?}");
    assert!(first.cells_simulated > 0, "{first:?}");

    // Re-running the entire catalogue simulates *nothing* new: every cell
    // and every trace request is a cache hit.
    for exp in experiments::all() {
        let _ = exp.run(&harness, scale);
    }
    let second = harness.stats();
    assert_eq!(
        second.traces_generated, first.traces_generated,
        "{second:?}"
    );
    assert_eq!(second.cells_simulated, first.cells_simulated, "{second:?}");
    assert!(second.cell_hits > first.cell_hits, "{second:?}");
}

#[test]
fn figure_experiments_render_charts() {
    let harness = Harness::new();
    for id in ["e04", "e06", "e07", "x4", "x5"] {
        let exp = experiments::find(id).unwrap();
        let result = exp.run(&harness, Scale::quick());
        let chart = result.chart.as_deref().unwrap_or("");
        assert!(chart.contains('█'), "{id}: chart missing bars");
        assert!(!result.cells.is_empty(), "{id}: no raw cells attached");
    }
}
