//! Fleet acceptance drills, driven through the real `fdip` binary: a
//! worker daemon SIGKILLed mid-run costs re-dispatch, never the run; the
//! shared on-disk result cache makes a second identical run simulate
//! nothing; `fdip workerd` drains gracefully on SIGTERM; and (behind
//! `proptest-tests`) randomized network-fault drills — drop, partition,
//! slow link, corrupt frame — all converge to fault-free output.
//!
//! These drills live here (not in `fdip-sim` unit tests) because fleet
//! dispatch self-execs worker processes on the daemon side — inside a
//! `cargo test` harness that is the libtest runner, not a worker-capable
//! binary. `CARGO_BIN_EXE_fdip` points at the real CLI, which routes
//! re-execed workers through `fdip_sim::worker::maybe_worker_entry`.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Output, Stdio};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

fn fdip(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fdip"));
    cmd.args(args)
        .env_remove("FDIP_FAULTS")
        // Fast liveness detection so partition drills converge in test
        // time rather than the production 5s heartbeat window.
        .env("FDIP_FLEET_HEARTBEAT_MS", "700")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

fn run(args: &[&str]) -> Output {
    fdip(args).output().expect("spawn fdip")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The fault-free in-process rendering of e01 --quick, computed once.
fn baseline() -> &'static str {
    static BASE: OnceLock<String> = OnceLock::new();
    BASE.get_or_init(|| {
        let out = run(&["exp", "e01", "--quick"]);
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    })
}

/// A live `fdip workerd` child plus the address it actually bound and a
/// running capture of everything it has printed since the banner.
struct Workerd {
    child: Child,
    addr: String,
    captured: Arc<Mutex<String>>,
}

impl Workerd {
    /// Spawns `fdip workerd --listen 127.0.0.1:0` and parses the bound
    /// address from its startup banner.
    fn spawn(slots: usize) -> Workerd {
        Workerd::try_spawn("127.0.0.1:0", slots, &[]).expect("spawn workerd")
    }

    /// Spawns a daemon on a *specific* address (restart drills reuse a
    /// dead daemon's port), retrying while the OS releases the port.
    fn spawn_at(listen: &str, slots: usize, envs: &[(&str, &str)]) -> Workerd {
        for _ in 0..40 {
            if let Some(w) = Workerd::try_spawn(listen, slots, envs) {
                return w;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("workerd at {listen} never came up");
    }

    fn try_spawn(listen: &str, slots: usize, envs: &[(&str, &str)]) -> Option<Workerd> {
        let mut cmd = fdip(&["workerd", "--listen", listen, "--slots"]);
        cmd.arg(slots.to_string());
        for (key, value) in envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("spawn workerd");
        let out = child.stdout.take().expect("workerd stdout");
        let mut reader = BufReader::new(out);
        let addr = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read workerd banner");
            if n == 0 {
                // Bind failed (port still in TIME_WAIT teardown): reap and
                // let the caller retry.
                let _ = child.kill();
                let _ = child.wait();
                return None;
            }
            if let Some(rest) = line.strip_prefix("fdip-workerd listening on ") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address in banner")
                    .to_string();
            }
        };
        // Keep draining stdout (so the daemon never blocks on a full
        // pipe), accumulating it for assertions.
        let captured = Arc::new(Mutex::new(String::new()));
        let sink = Arc::clone(&captured);
        std::thread::spawn(move || {
            let mut line = String::new();
            while matches!(reader.read_line(&mut line), Ok(n) if n > 0) {
                sink.lock().expect("capture poisoned").push_str(&line);
                line.clear();
            }
        });
        Some(Workerd {
            child,
            addr,
            captured,
        })
    }

    /// Whether the daemon has printed `needle` yet.
    fn printed(&self, needle: &str) -> bool {
        self.captured.lock().expect("capture poisoned").contains(needle)
    }

    fn sigkill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Sends SIGTERM and waits for a clean exit.
    fn sigterm_and_wait(mut self) -> std::process::ExitStatus {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill");
        assert!(ok.success(), "kill -TERM failed");
        self.child.wait().expect("wait workerd")
    }
}

impl Drop for Workerd {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn sigkilling_a_node_mid_run_costs_redispatch_never_the_run() {
    let w1 = Workerd::spawn(2);
    let mut w2 = Workerd::spawn(2);
    let fleet = format!("{},{}", w1.addr, w2.addr);

    // Every cell sleeps 4s in its remote worker, so all four seats are
    // occupied when the kill lands and the dead node is guaranteed to
    // have cells in flight.
    let slow = "slow@client-1/base:4000,slow@client-1/fdip:4000,\
                slow@server-1/base:4000,slow@server-1/fdip:4000";
    let child = fdip(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--fleet",
        &fleet,
        "--max-attempts",
        "3",
        "--cell-budget-ms",
        "30000",
        "--faults",
        slow,
    ])
    .spawn()
    .expect("spawn fdip exp");

    std::thread::sleep(Duration::from_millis(1500));
    w2.sigkill();

    let out = child.wait_with_output().expect("wait fdip exp");
    let (table, err) = (stdout(&out), stderr(&out));
    assert!(
        out.status.success(),
        "a SIGKILLed worker daemon must not fail the run:\n{err}"
    );
    assert!(!table.contains("FAILED"), "{table}");
    assert_eq!(
        baseline(),
        table,
        "fleet output must be byte-identical to the in-process run"
    );
    assert!(err.contains("node loss(es)"), "{err}");
    assert!(!err.contains("0 node loss(es)"), "{err}");
    assert!(!err.contains("0 cell(s) re-dispatched"), "{err}");
    drop(w1);
}

#[test]
fn a_second_run_against_the_shared_cache_simulates_zero_cells() {
    let w = Workerd::spawn(2);
    let cache = std::env::temp_dir().join(format!("fdip-fleet-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let cache_s = cache.to_str().unwrap().to_string();
    let args = [
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--fleet",
        &w.addr,
        "--cache",
        &cache_s,
    ];

    let first = run(&args);
    let err = stderr(&first);
    assert!(first.status.success(), "{err}");
    assert!(err.contains("0 entries restored, 0 corrupt"), "{err}");
    assert_eq!(baseline(), stdout(&first), "fleet must not change results");

    let second = run(&args);
    let err = stderr(&second);
    assert!(second.status.success(), "{err}");
    // All four cells of e01 came back from the on-disk cache before any
    // dispatch: nothing was simulated, locally or remotely.
    assert!(err.contains("4 entries restored, 0 corrupt"), "{err}");
    assert!(err.contains("0 cells simulated"), "{err}");
    assert!(err.contains("4 remote cache hit(s)"), "{err}");
    assert_eq!(
        stdout(&first),
        stdout(&second),
        "a cached run must reproduce the first byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn workerd_drains_to_exit_zero_on_sigterm() {
    let w = Workerd::spawn(1);
    // Give the accept loop a beat to reach steady state before draining.
    std::thread::sleep(Duration::from_millis(200));
    let status = w.sigterm_and_wait();
    assert!(status.success(), "drain must exit 0, got {status:?}");
}

#[test]
fn fleet_flags_enforce_their_preconditions() {
    let no_isolate = run(&["exp", "e01", "--quick", "--fleet", "127.0.0.1:1"]);
    assert!(!no_isolate.status.success());
    assert!(stderr(&no_isolate).contains("--fleet requires --isolate"));

    let no_fleet = run(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--faults",
        "drop@client-1/base",
    ]);
    assert!(!no_fleet.status.success());
    assert!(
        stderr(&no_fleet).contains("--fleet"),
        "{}",
        stderr(&no_fleet)
    );

    let unreachable = run(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--fleet",
        "127.0.0.1:1",
    ]);
    assert!(!unreachable.status.success());
    assert!(
        stderr(&unreachable).contains("no fleet node is reachable"),
        "{}",
        stderr(&unreachable)
    );
}

#[test]
fn a_sigkilled_node_is_readmitted_and_serves_traffic_again() {
    let w1 = Workerd::spawn(2);
    let mut w2 = Workerd::spawn(2);
    let fleet = format!("{},{}", w1.addr, w2.addr);

    // Every cell sleeps 6s: the survivor's seats stay busy long past the
    // victim's readmission (~3s with a 100ms reprobe base), so the
    // re-dispatched cells can only run on the restarted daemon — proving
    // it serves traffic again, not merely that it answered a probe.
    let child = fdip(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--fleet",
        &fleet,
        "--max-attempts",
        "4",
        "--cell-budget-ms",
        "30000",
        "--faults",
        "slow@*/*:6000",
    ])
    .env("FDIP_FLEET_REPROBE_MS", "100")
    .spawn()
    .expect("spawn fdip exp");

    std::thread::sleep(Duration::from_millis(1500));
    w2.sigkill();
    std::thread::sleep(Duration::from_millis(1000));
    let w2b = Workerd::spawn_at(&w2.addr, 2, &[]);

    let out = child.wait_with_output().expect("wait fdip exp");
    let (table, err) = (stdout(&out), stderr(&out));
    assert!(out.status.success(), "{err}");
    assert!(!table.contains("FAILED"), "{table}");
    assert_eq!(
        baseline(),
        table,
        "readmission must not change results by a byte"
    );
    assert!(err.contains("readmitted on probation"), "{err}");
    assert!(!err.contains("0 readmission(s)"), "{err}");
    // The survivor never went down: exactly one loss, the SIGKILL.
    assert!(err.contains("1 node loss(es)"), "{err}");
    // The restarted daemon actually ran cells after readmission.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !w2b.printed("serving cells for a registered peer") {
        assert!(
            Instant::now() < deadline,
            "restarted daemon never served a cell:\n{}",
            w2b.captured.lock().expect("capture poisoned")
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(w1);
}

#[test]
fn a_restarted_daemon_with_a_drifted_fingerprint_is_refused_readmission() {
    let w1 = Workerd::spawn(2);
    let mut w2 = Workerd::spawn(2);
    let fleet = format!("{},{}", w1.addr, w2.addr);

    let child = fdip(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--fleet",
        &fleet,
        "--max-attempts",
        "4",
        "--cell-budget-ms",
        "30000",
        "--faults",
        "slow@*/*:4000",
    ])
    .env("FDIP_FLEET_REPROBE_MS", "100")
    .spawn()
    .expect("spawn fdip exp");

    std::thread::sleep(Duration::from_millis(1500));
    w2.sigkill();
    // The daemon comes back with a drifted build fingerprint (a config
    // tag the client does not share): reprobes must reach it, be refused
    // by name, and never readmit it. The run still converges on the
    // survivor.
    let w2b = Workerd::spawn_at(&w2.addr, 2, &[("FDIP_FLEET_TAG", "drifted")]);

    let out = child.wait_with_output().expect("wait fdip exp");
    let (table, err) = (stdout(&out), stderr(&out));
    assert!(out.status.success(), "{err}");
    assert!(!table.contains("FAILED"), "{table}");
    assert_eq!(baseline(), table, "drift refusal must not change results");
    assert!(
        err.contains("reprobe failed (node refused registration"),
        "{err}"
    );
    assert!(err.contains("0 readmission(s)"), "{err}");
    drop(w2b);
    drop(w1);
}

#[test]
fn fleet_tuning_flags_validate_before_dialing_and_disabled_hedging_is_inert() {
    // Nothing listens on 127.0.0.1:1, so reaching the dial phase would
    // print "unreachable at startup"; a flag error must come first.
    let bad_heartbeat = run(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--fleet",
        "127.0.0.1:1",
        "--fleet-heartbeat-ms",
        "0",
    ]);
    assert!(!bad_heartbeat.status.success());
    let err = stderr(&bad_heartbeat);
    assert!(err.contains("--fleet-heartbeat-ms"), "{err}");
    assert!(!err.contains("unreachable at startup"), "{err}");

    let bad_hedge = run(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--fleet",
        "127.0.0.1:1",
        "--hedge-after-ms",
        "soon",
    ]);
    assert!(!bad_hedge.status.success());
    let err = stderr(&bad_hedge);
    assert!(err.contains("--hedge-after-ms"), "{err}");
    assert!(!err.contains("unreachable at startup"), "{err}");

    // With hedging explicitly off, a real fleet run books zero hedges and
    // stays byte-identical: the feature is provably inert when disabled.
    let w = Workerd::spawn(2);
    let out = run(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--fleet",
        &w.addr,
        "--fleet-heartbeat-ms",
        "700",
        "--hedge-after-ms",
        "0",
    ]);
    let err = stderr(&out);
    assert!(out.status.success(), "{err}");
    assert_eq!(baseline(), stdout(&out), "inert hedging must not change results");
    assert!(err.contains("0 hedged (0 won)"), "{err}");
}

/// Randomized network-fault drills: any single injected fleet fault —
/// severed connection, silent partition, slow link, corrupt frame — is
/// absorbed by re-dispatch and the run converges to fault-free output.
#[cfg(feature = "proptest-tests")]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn net_fault_drills_converge_to_fault_free_output(
            kind in prop_oneof![
                Just("drop"),
                Just("partition"),
                Just("slowlink"),
                Just("truncframe"),
            ],
            site in prop_oneof![
                Just("client-1/base"),
                Just("client-1/fdip"),
                Just("server-1/base"),
                Just("server-1/fdip"),
            ],
        ) {
            let spec = if kind == "slowlink" {
                format!("slowlink@{site}:80")
            } else {
                format!("{kind}@{site}")
            };
            let w1 = Workerd::spawn(2);
            let w2 = Workerd::spawn(2);
            let fleet = format!("{},{}", w1.addr, w2.addr);
            let out = run(&[
                "exp",
                "e01",
                "--quick",
                "--isolate=2",
                "--fleet",
                &fleet,
                "--max-attempts",
                "3",
                "--cell-budget-ms",
                "30000",
                "--faults",
                &spec,
            ]);
            let err = stderr(&out);
            prop_assert!(
                out.status.success(),
                "drill {} must not fail the run:\n{}", spec, err
            );
            let table = stdout(&out);
            prop_assert!(!table.contains("FAILED"), "{}", table);
            prop_assert_eq!(
                baseline(),
                table.as_str(),
                "drill {} must converge to fault-free output", spec
            );
        }
    }
}
