//! Fault-tolerance acceptance tests: a mixed fault plan degrades exactly
//! the non-retryable cells, transient faults retry to the fault-free
//! values, experiments render partial tables with `FAILED` markers, and a
//! run killed part-way resumes from its journal without re-simulating
//! anything — byte-for-byte identical results.

use std::time::Duration;

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_sim::fault::{CellError, FaultPlan, RetryPolicy};
use fdip_sim::harness::Harness;
use fdip_sim::workload::{suite, SuiteKind};
use fdip_sim::Scale;
use fdip_types::ToJson;

const TRACE_LEN: usize = 25_000;

fn configs() -> Vec<(String, FrontendConfig)> {
    vec![
        ("base".to_string(), FrontendConfig::default()),
        (
            "fdip".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
    ]
}

fn eager(max_attempts: u32, cell_budget: Option<Duration>) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff: Duration::ZERO,
        cell_budget,
    }
}

fn temp_journal(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("fdip-fault-tol-{}-{tag}.jsonl", std::process::id()))
}

#[test]
fn mixed_plan_fails_exactly_the_non_retryable_cells() {
    let workloads = suite(SuiteKind::All, Scale::quick());
    assert!(workloads.len() >= 2);
    let (w0, w1) = (workloads[0].name.clone(), workloads[1].name.clone());

    let reference = Harness::with_threads(2);
    let want = reference.run_matrix(&workloads, TRACE_LEN, &configs());

    // One permanent panic, one wall-clock timeout, two transients that
    // clear within the retry budget.
    let plan = FaultPlan::parse(&format!(
        "panic@{w0}/fdip, slow@{w1}/base:10000, transient@{w0}/base:1, transient@{w1}/fdip:1, seed=7"
    ))
    .unwrap();
    let faulty = Harness::with_threads(2);
    faulty.set_retry_policy(eager(3, Some(Duration::from_millis(1500))));
    faulty.set_fault_plan(Some(plan));
    let got = faulty.run_matrix(&workloads, TRACE_LEN, &configs());

    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!((&g.workload, &g.config), (&w.workload, &w.config));
        match (g.workload.as_str(), g.config.as_str()) {
            (a, "fdip") if a == w0 => match &g.error {
                Some(CellError::Panic { attempts, .. }) => assert_eq!(*attempts, 3),
                other => panic!("expected panic for ({a}, fdip), got {other:?}"),
            },
            (b, "base") if b == w1 => match &g.error {
                Some(CellError::Timeout { budget_ms }) => assert_eq!(*budget_ms, 1500),
                other => panic!("expected timeout for ({b}, base), got {other:?}"),
            },
            _ => {
                // Every other cell — including the two transient-fault
                // sites — must match the fault-free run exactly.
                assert!(
                    g.error.is_none(),
                    "({}, {}): {:?}",
                    g.workload,
                    g.config,
                    g.error
                );
                assert_eq!(g.stats, w.stats, "({}, {})", g.workload, g.config);
                assert_eq!(g.to_json().to_string(), w.to_json().to_string());
            }
        }
    }

    let stats = faulty.stats();
    assert_eq!(stats.cells_failed, 2);
    assert_eq!(stats.cell_timeouts, 1);
    // Panic: 2 retries before giving up; each transient: 1 retry to clear.
    assert_eq!(stats.cell_retries, 4);
    assert_eq!(
        got.failures().count(),
        2,
        "exactly the panic and timeout cells fail"
    );
}

#[test]
fn experiments_render_partial_tables_with_failed_markers() {
    let harness = Harness::with_threads(2);
    harness.set_retry_policy(eager(1, None));
    harness.set_fault_plan(Some(FaultPlan::parse("panic@client-1/fdip").unwrap()));
    let exp = fdip_sim::experiments::find("e01").unwrap();
    let result = exp.run(&harness, Scale::quick());
    let text = result.to_text();
    assert!(text.contains("FAILED"), "{text}");
    assert!(text.contains("failed cells"), "{text}");
    // The untouched workloads still produced real rows.
    assert!(text.contains("server-1"), "{text}");
}

#[test]
fn killed_run_resumes_from_journal_with_byte_identical_results() {
    let workloads = suite(SuiteKind::All, Scale::quick());
    let journal = temp_journal("resume");
    let _ = std::fs::remove_file(&journal);

    let reference = Harness::with_threads(2);
    let want = reference.run_matrix(&workloads, TRACE_LEN, &configs());

    // A first run that "dies" after finishing only the base column: the
    // journal is all that survives (the in-memory caches are dropped).
    let first = Harness::with_threads(2);
    first.attach_journal(&journal).unwrap();
    let base_only = vec![configs()[0].clone()];
    first.run_matrix(&workloads, TRACE_LEN, &base_only);
    drop(first);

    let resumed = Harness::with_threads(2);
    let summary = resumed.attach_journal(&journal).unwrap();
    assert_eq!(summary.restored, workloads.len());
    assert_eq!(summary.skipped, 0);
    let got = resumed.run_matrix(&workloads, TRACE_LEN, &configs());

    let stats = resumed.stats();
    assert_eq!(stats.journal_restored, workloads.len() as u64);
    // Only the fdip column was actually simulated; every journaled base
    // cell was served from the restored cache.
    assert_eq!(stats.cells_simulated, workloads.len() as u64);
    assert_eq!(stats.cells_failed, 0);

    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g.to_json().to_string(), w.to_json().to_string());
    }
    let _ = std::fs::remove_file(&journal);
}
