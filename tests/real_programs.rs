//! End-to-end guarantees for real-program workloads: every library
//! program and scenario flows through the binary codec, the harness
//! trace store, the cell cache, and the journal with byte-identical
//! results across runs — the same guarantees the synthetic suites have.

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_sim::harness::Harness;
use fdip_sim::workload::{program_suite, scenario_suite, WorkloadSpec};
use fdip_sim::Scale;
use fdip_trace::{read_binary, write_binary};
use fdip_types::ToJson;

const TRACE_LEN: usize = 20_000;

fn configs() -> Vec<(String, FrontendConfig)> {
    vec![
        ("base".to_string(), FrontendConfig::default()),
        (
            "fdip".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
    ]
}

fn real_workloads() -> Vec<WorkloadSpec> {
    let mut w = program_suite();
    w.extend(scenario_suite(7));
    w
}

#[test]
fn library_traces_round_trip_the_binary_codec() {
    for spec in real_workloads() {
        let trace = spec.generate(TRACE_LEN);
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(trace, back, "{}", spec.name);

        // Regeneration is byte-identical through the codec too.
        let mut again = Vec::new();
        write_binary(&mut again, &spec.generate(TRACE_LEN)).unwrap();
        assert_eq!(buf, again, "{}", spec.name);
    }
}

#[test]
fn real_program_matrix_is_deterministic_across_harnesses() {
    let workloads = real_workloads();
    let a = Harness::with_threads(2).run_matrix(&workloads, TRACE_LEN, &configs());
    let b = Harness::with_threads(1).run_matrix(&workloads, TRACE_LEN, &configs());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_json().to_string(), y.to_json().to_string());
    }
}

#[test]
fn r1_experiment_runs_end_to_end_and_repeats_byte_identically() {
    let exp = fdip_sim::experiments::find("r1").unwrap();
    let a = exp.run(&Harness::with_threads(2), Scale::quick());
    let b = exp.run(&Harness::with_threads(2), Scale::quick());
    assert_eq!(
        a.to_json("r1", exp.title()).to_string(),
        b.to_json("r1", exp.title()).to_string()
    );
    // Every cell simulated — no FAILED rows on the committed library.
    assert!(!a.to_text().contains("FAILED"), "{}", a.to_text());
}

#[test]
fn real_program_cells_resume_from_journal_byte_identically() {
    let workloads = real_workloads();
    let journal = std::env::temp_dir().join(format!(
        "fdip-real-programs-journal-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);

    let reference = Harness::with_threads(2);
    let want = reference.run_matrix(&workloads, TRACE_LEN, &configs());

    // First run "dies" with only the base column journaled.
    let first = Harness::with_threads(2);
    first.attach_journal(&journal).unwrap();
    first.run_matrix(&workloads, TRACE_LEN, &[configs()[0].clone()]);
    drop(first);

    // The resumed run restores every journaled cell — program and
    // scenario workloads serialize through the journal like synthetic
    // ones — and finishes the rest byte-identically.
    let resumed = Harness::with_threads(2);
    let summary = resumed.attach_journal(&journal).unwrap();
    assert_eq!(summary.restored, workloads.len());
    assert_eq!(summary.corrupt, 0);
    let got = resumed.run_matrix(&workloads, TRACE_LEN, &configs());
    assert_eq!(resumed.stats().cells_simulated, workloads.len() as u64);

    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g.to_json().to_string(), w.to_json().to_string());
    }
    let _ = std::fs::remove_file(&journal);
}
