//! Determinism guarantees: identical configurations and seeds must produce
//! bit-identical traces and statistics, across threads and invocations.

use fdip::{FrontendConfig, PrefetcherKind, Simulator};
use fdip_sim::harness::Harness;
use fdip_sim::runner::run_matrix;
use fdip_sim::workload::{suite, SuiteKind};
use fdip_sim::Scale;
use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_types::ToJson;

#[test]
fn trace_generation_is_bit_identical() {
    let make = || {
        GeneratorConfig::profile(Profile::Server)
            .seed(1234)
            .target_len(50_000)
            .generate()
    };
    assert_eq!(make(), make());
}

#[test]
fn simulation_is_bit_identical() {
    let trace = GeneratorConfig::profile(Profile::Jumpy)
        .seed(99)
        .target_len(40_000)
        .generate();
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::fdip(),
        PrefetcherKind::StreamBuffers(Default::default()),
        PrefetcherKind::Pif(Default::default()),
    ] {
        let config = FrontendConfig::default().with_prefetcher(kind);
        let a = Simulator::run_trace(&config, &trace);
        let b = Simulator::run_trace(&config, &trace);
        assert_eq!(a, b, "{}", config.prefetcher.name());
    }
}

#[test]
fn parallel_runner_matches_itself_and_is_ordered() {
    let workloads = suite(SuiteKind::All, Scale::quick());
    let configs = vec![
        ("base".to_string(), FrontendConfig::default()),
        (
            "fdip".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
    ];
    let a = run_matrix(&workloads, 25_000, &configs);
    let b = run_matrix(&workloads, 25_000, &configs);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.workload, y.workload);
        assert_eq!(x.config, y.config);
        assert_eq!(x.stats, y.stats);
    }
}

#[test]
fn runner_is_deterministic_across_thread_counts() {
    // One inline-executing harness, one saturating the machine: the result
    // sequences must be byte-identical, cell for cell and in order.
    let serial = Harness::with_threads(1);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    let parallel = Harness::with_threads(threads);

    let workloads = suite(SuiteKind::All, Scale::quick());
    let configs = vec![
        ("base".to_string(), FrontendConfig::default()),
        (
            "fdip".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
        (
            "nlp".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::NextLine),
        ),
    ];
    let a = serial.run_matrix(&workloads, 25_000, &configs);
    let b = parallel.run_matrix(&workloads, 25_000, &configs);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.workload, y.workload);
        assert_eq!(x.config, y.config);
        assert_eq!(x.stats, y.stats);
        assert_eq!(x.trace_stats, y.trace_stats);
        // Byte-identical through the persistence path too.
        assert_eq!(x.to_json().to_string(), y.to_json().to_string());
    }
    // Both harnesses did the same amount of real work.
    assert_eq!(serial.stats(), parallel.stats());
}

#[test]
fn different_seeds_change_the_trace_but_not_the_invariants() {
    for seed in [1u64, 2, 3] {
        let trace = GeneratorConfig::profile(Profile::Client)
            .seed(seed)
            .target_len(20_000)
            .generate();
        trace.validate().unwrap();
        let stats = Simulator::run_trace(&FrontendConfig::default(), &trace);
        assert_eq!(stats.instructions, trace.len() as u64);
    }
}
