//! The paper's qualitative claims, as executable assertions (medium scale:
//! big enough for the shapes to be stable, small enough for CI).

use fdip::{BtbVariant, CpfMode, FrontendConfig, PrefetcherKind, Simulator};
use fdip_trace::gen::{GeneratorConfig, Profile};

fn server_trace() -> fdip_trace::Trace {
    GeneratorConfig::profile(Profile::Server)
        .seed(21)
        .target_len(200_000)
        .generate()
}

#[test]
fn fdip_covers_misses_and_speeds_up_servers() {
    let trace = server_trace();
    let base = Simulator::run_trace(&FrontendConfig::default(), &trace);
    let fdip = Simulator::run_trace(
        &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        &trace,
    );
    assert!(
        fdip.speedup_over(&base) > 1.3,
        "speedup {}",
        fdip.speedup_over(&base)
    );
    assert!(
        fdip.miss_coverage_vs(&base) > 0.3,
        "coverage {}",
        fdip.miss_coverage_vs(&base)
    );
}

#[test]
fn cpf_cuts_prefetch_traffic_without_losing_performance() {
    let trace = server_trace();
    let plain = Simulator::run_trace(
        &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        &trace,
    );
    let cpf = Simulator::run_trace(
        &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Remove)),
        &trace,
    );
    assert!(
        cpf.mem.prefetches_issued < plain.mem.prefetches_issued,
        "cpf {} vs plain {}",
        cpf.mem.prefetches_issued,
        plain.mem.prefetches_issued
    );
    assert!(
        cpf.cycles as f64 <= plain.cycles as f64 * 1.02,
        "cpf {} vs plain {} cycles",
        cpf.cycles,
        plain.cycles
    );
    assert!(cpf.mem.prefetch_accuracy() > plain.mem.prefetch_accuracy());
}

#[test]
fn fdip_beats_next_line_prefetching_on_servers() {
    let trace = server_trace();
    let base = Simulator::run_trace(&FrontendConfig::default(), &trace);
    let nlp = Simulator::run_trace(
        &FrontendConfig::default().with_prefetcher(PrefetcherKind::NextLine),
        &trace,
    );
    let fdip = Simulator::run_trace(
        &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip_with_cpf(CpfMode::Remove)),
        &trace,
    );
    assert!(
        fdip.speedup_over(&base) > nlp.speedup_over(&base),
        "fdip {} vs nlp {}",
        fdip.speedup_over(&base),
        nlp.speedup_over(&base)
    );
}

#[test]
fn fdip_x_matches_or_beats_fdip_at_the_smallest_budget() {
    let trace = server_trace();
    let budget = 1024;
    let base = Simulator::run_trace(
        &FrontendConfig::default().with_btb(BtbVariant::basic_block(budget)),
        &trace,
    );
    let fdip = Simulator::run_trace(
        &FrontendConfig::default()
            .with_btb(BtbVariant::basic_block(budget))
            .with_prefetcher(PrefetcherKind::fdip()),
        &trace,
    );
    let fdipx = Simulator::run_trace(
        &FrontendConfig::default()
            .with_btb(BtbVariant::partitioned(budget))
            .with_prefetcher(PrefetcherKind::fdip()),
        &trace,
    );
    let fdip_speedup = fdip.speedup_over(&base);
    let fdipx_speedup = fdipx.speedup_over(&base);
    assert!(
        fdipx_speedup >= fdip_speedup * 0.99,
        "fdip-x {fdipx_speedup} vs fdip {fdip_speedup}"
    );
}

#[test]
fn gains_saturate_toward_the_infinite_btb() {
    let trace = server_trace();
    let base = Simulator::run_trace(&FrontendConfig::default(), &trace);
    let small = Simulator::run_trace(
        &FrontendConfig::default()
            .with_btb(BtbVariant::conventional(1024))
            .with_prefetcher(PrefetcherKind::fdip()),
        &trace,
    );
    let infinite = Simulator::run_trace(
        &FrontendConfig::default()
            .with_btb(BtbVariant::Ideal)
            .with_prefetcher(PrefetcherKind::fdip()),
        &trace,
    );
    assert!(
        infinite.speedup_over(&base) >= small.speedup_over(&base),
        "infinite {} vs small {}",
        infinite.speedup_over(&base),
        small.speedup_over(&base)
    );
}

#[test]
fn client_workloads_offer_less_opportunity_than_servers() {
    let client = GeneratorConfig::profile(Profile::Client)
        .seed(21)
        .target_len(200_000)
        .generate();
    let server = server_trace();
    let gain = |trace: &fdip_trace::Trace| {
        let base = Simulator::run_trace(&FrontendConfig::default(), trace);
        let fdip = Simulator::run_trace(
            &FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
            trace,
        );
        fdip.speedup_over(&base)
    };
    let client_gain = gain(&client);
    let server_gain = gain(&server);
    assert!(
        server_gain > client_gain,
        "server {server_gain} vs client {client_gain}"
    );
}
