//! Property tests for the fault-injection machinery (behind the
//! `proptest-tests` feature): any plan built solely of *retryable* fault
//! kinds, given enough retry attempts to absorb every shot, must leave the
//! matrix byte-identical to a fault-free run — fault injection may cost
//! retries, never correctness.

use std::sync::OnceLock;
use std::time::Duration;

use fdip::{FrontendConfig, PrefetcherKind};
use fdip_sim::fault::{FaultPlan, RetryPolicy};
use fdip_sim::harness::Harness;
use fdip_sim::workload::{suite, SuiteKind};
use fdip_sim::Scale;
use fdip_types::ToJson;
use proptest::prelude::*;

const TRACE_LEN: usize = 8_000;

fn configs() -> Vec<(String, FrontendConfig)> {
    vec![
        ("base".to_string(), FrontendConfig::default()),
        (
            "fdip".to_string(),
            FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip()),
        ),
    ]
}

/// The fault-free rendering of every cell, computed once per process.
fn reference() -> &'static Vec<String> {
    static REF: OnceLock<Vec<String>> = OnceLock::new();
    REF.get_or_init(|| {
        let workloads = suite(SuiteKind::Client, Scale::quick());
        Harness::with_threads(2)
            .run_matrix(&workloads, TRACE_LEN, &configs())
            .iter()
            .map(|r| r.to_json().to_string())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn retryable_plans_converge_to_the_fault_free_values(
        sites in proptest::collection::vec((0usize..2, 0usize..2, 0usize..3, 1u32..3), 0..4),
        seed in 0u64..1000,
    ) {
        let kinds = ["transient", "trace"];
        let workload_coords = ["client-1", "*"];
        let config_coords = ["base", "fdip", "*"];
        let mut items: Vec<String> = sites
            .iter()
            .map(|(k, w, c, t)| {
                format!("{}@{}/{}:{}", kinds[*k], workload_coords[*w], config_coords[*c], t)
            })
            .collect();
        items.push(format!("seed={seed}"));
        let plan = FaultPlan::parse(&items.join(",")).unwrap();
        // Worst case every shot of every site lands on one cell, so this
        // attempt budget always suffices for retries to clear the plan.
        let shots: u32 = sites.iter().map(|(_, _, _, t)| *t).sum();

        let workloads = suite(SuiteKind::Client, Scale::quick());
        let harness = Harness::with_threads(2);
        harness.set_retry_policy(RetryPolicy {
            max_attempts: shots + 1,
            backoff: Duration::ZERO,
            cell_budget: None,
        });
        harness.set_fault_plan(Some(plan));
        let got = harness.run_matrix(&workloads, TRACE_LEN, &configs());

        let want = reference();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!(
                g.error.is_none(),
                "({}, {}) failed: {:?}",
                g.workload,
                g.config,
                g.error
            );
            prop_assert_eq!(&g.to_json().to_string(), w);
        }
        let stats = harness.stats();
        prop_assert!(stats.cell_retries <= u64::from(shots));
        prop_assert_eq!(stats.cells_failed, 0);
    }
}
