//! End-to-end integration: trace generation → codec round-trip → full
//! simulation across every front-end configuration class.

use fdip::{BtbVariant, CpfMode, FrontendConfig, PredictorKind, PrefetcherKind, Simulator};
use fdip_trace::gen::{GeneratorConfig, Profile};
use fdip_trace::{read_binary, write_binary};

fn small_trace(profile: Profile, seed: u64) -> fdip_trace::Trace {
    GeneratorConfig::profile(profile)
        .seed(seed)
        .target_len(30_000)
        .generate()
}

#[test]
fn trace_survives_codec_and_simulates_identically() {
    let trace = small_trace(Profile::Server, 11);
    let mut buf = Vec::new();
    write_binary(&mut buf, &trace).unwrap();
    let decoded = read_binary(&buf[..]).unwrap();
    assert_eq!(trace, decoded);

    let config = FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip());
    let direct = Simulator::run_trace(&config, &trace);
    let roundtripped = Simulator::run_trace(&config, &decoded);
    assert_eq!(direct, roundtripped);
}

#[test]
fn every_btb_variant_completes_and_counts_all_instructions() {
    let trace = small_trace(Profile::Jumpy, 5);
    let variants = [
        BtbVariant::conventional(1024),
        BtbVariant::basic_block(1024),
        BtbVariant::partitioned(1024),
        BtbVariant::Ideal,
    ];
    for variant in variants {
        let stats =
            Simulator::run_trace(&FrontendConfig::default().with_btb(variant.clone()), &trace);
        assert_eq!(
            stats.instructions,
            trace.len() as u64,
            "variant {variant:?}"
        );
        assert!(stats.cycles >= stats.instructions / 4, "{variant:?}");
    }
}

#[test]
fn every_predictor_kind_completes() {
    let trace = small_trace(Profile::Client, 9);
    let predictors = [
        PredictorKind::Bimodal { log2_entries: 12 },
        PredictorKind::Gshare {
            log2_entries: 12,
            history_bits: 10,
        },
        PredictorKind::Hybrid {
            log2_entries: 12,
            history_bits: 10,
        },
        PredictorKind::Perfect,
    ];
    let mut exec_redirects = Vec::new();
    for kind in predictors {
        let stats = Simulator::run_trace(&FrontendConfig::default().with_predictor(kind), &trace);
        assert_eq!(stats.instructions, trace.len() as u64);
        exec_redirects.push(stats.branches.exec_redirects);
    }
    // The oracle (last entry) mispredicts no conditionals, so it has the
    // fewest execute redirects.
    let perfect = *exec_redirects.last().unwrap();
    assert!(exec_redirects.iter().all(|&r| r >= perfect));
}

#[test]
fn every_prefetcher_kind_completes_and_issues_when_it_should() {
    let trace = small_trace(Profile::Server, 2);
    let kinds = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::StreamBuffers(Default::default()),
        PrefetcherKind::fdip(),
        PrefetcherKind::fdip_with_cpf(CpfMode::Enqueue),
        PrefetcherKind::fdip_with_cpf(CpfMode::Remove),
        PrefetcherKind::fdip_with_cpf(CpfMode::Both),
        PrefetcherKind::Pif(Default::default()),
    ];
    for kind in kinds {
        let is_none = kind == PrefetcherKind::None;
        let name = kind.name();
        let stats = Simulator::run_trace(&FrontendConfig::default().with_prefetcher(kind), &trace);
        assert_eq!(stats.instructions, trace.len() as u64, "{name}");
        if is_none {
            assert_eq!(stats.mem.prefetches_issued, 0, "{name}");
        } else {
            assert!(stats.mem.prefetches_issued > 0, "{name}");
        }
    }
}

#[test]
fn stepping_matches_run_to_completion() {
    let trace = small_trace(Profile::MicroLoop, 3);
    let config = FrontendConfig::default().with_prefetcher(PrefetcherKind::fdip());
    let full = Simulator::run_trace(&config, &trace);
    let mut sim = Simulator::new(&config, &trace);
    while !sim.is_done() {
        sim.step();
    }
    // `run` finalizes; compare the observable outcome via a second run.
    assert_eq!(full.instructions, trace.len() as u64);
    assert_eq!(full, Simulator::run_trace(&config, &trace));
}

#[test]
fn bigger_btb_never_hurts_on_the_reference_workload() {
    let trace = small_trace(Profile::Server, 8);
    let mut cycles = Vec::new();
    for entries in [512usize, 2048, 8192] {
        let stats = Simulator::run_trace(
            &FrontendConfig::default()
                .with_btb(BtbVariant::conventional(entries))
                .with_prefetcher(PrefetcherKind::fdip()),
            &trace,
        );
        cycles.push(stats.cycles);
    }
    assert!(
        cycles[0] >= cycles[1] && cycles[1] >= cycles[2],
        "cycles must not increase with btb size: {cycles:?}"
    );
}
