//! End-to-end acceptance for `fdip chaos`: a short seeded soak must pass
//! every gate — each round byte-identical to the fault-free baseline,
//! re-simulation bounded by the corrupted cache entries, at least one
//! node lost and readmitted — and exit 0.
//!
//! Lives here (not in `fdip-sim` unit tests) because the soak self-execs
//! its worker daemons, which needs a worker-capable binary rather than
//! the libtest runner; `CARGO_BIN_EXE_fdip` points at the real CLI.

#![cfg(unix)]

use std::process::{Command, Stdio};

#[test]
fn a_seeded_soak_passes_every_gate_and_reports_recovery() {
    let out = Command::new(env!("CARGO_BIN_EXE_fdip"))
        .args(["chaos", "--rounds", "2", "--seed", "42"])
        .env_remove("FDIP_FAULTS")
        .stdin(Stdio::null())
        .output()
        .expect("spawn fdip chaos");
    let report = String::from_utf8_lossy(&out.stdout);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "soak failed:\n{report}\n{err}");
    assert!(report.contains("chaos soak PASSED"), "{report}");
    // Two rounds ran, both byte-identical (the gate would have tripped
    // otherwise, but check the rendering too: a "NO" row is a regression
    // even if some future gate rewrite stopped enforcing it).
    assert!(report.contains("seed 42 · 2 round(s)"), "{report}");
    assert!(!report.contains("  NO  "), "{report}");
    // Recovery actually happened and was measured.
    assert!(!report.contains("0 readmission(s)"), "{report}");
    assert!(report.contains("mean MTTR"), "{report}");
}
