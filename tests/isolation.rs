//! Process-isolation acceptance drills, driven through the real `fdip`
//! binary: a cell that aborts the worker process, a cell that hangs past
//! the hard budget, and a worker SIGKILLed from outside each cost exactly
//! one FAILED row while the rest of the matrix completes and the run
//! exits 0; isolated output is byte-identical to in-process output; and a
//! journaled isolated run resumes without re-simulating anything.
//!
//! These drills live here (not in `fdip-sim` unit tests) because the
//! supervisor self-execs `std::env::current_exe()` — inside a `cargo
//! test` harness that is the libtest runner, not a worker-capable binary.
//! `CARGO_BIN_EXE_fdip` points at the real CLI, which routes re-execed
//! workers through `fdip_sim::worker::maybe_worker_entry`.

#![cfg(unix)]

use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn fdip(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fdip"));
    cmd.args(args)
        .env_remove("FDIP_FAULTS")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

fn run(args: &[&str]) -> Output {
    fdip(args).output().expect("spawn fdip")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn crash_and_hang_each_cost_one_failed_row_and_the_run_exits_zero() {
    let drill = run(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--max-attempts",
        "1",
        "--cell-budget-ms",
        "2000",
        "--faults",
        "abort@client-1/base,hang@server-1/fdip",
    ]);
    let (out, err) = (stdout(&drill), stderr(&drill));
    assert!(
        drill.status.success(),
        "a crashing cell must not fail the run:\n{err}"
    );
    // The abort is classified by signal (SIGABRT = 6), the hang by the
    // hard budget; each appears exactly once in the failed-cells table.
    assert!(out.contains("killed by signal 6"), "{out}");
    assert!(out.contains("exceeded the 2000ms cell budget"), "{out}");
    assert!(err.contains("2 failed"), "{err}");
    assert!(err.contains("1 timeouts"), "{err}");
    // The other two cells of the 2x2 matrix completed: the table still
    // renders, and the supervisor recycled workers rather than dying.
    assert!(out.contains("# failed cells"), "{out}");
    assert!(err.contains("worker restart(s)"), "{err}");
}

#[test]
fn isolated_output_is_byte_identical_and_resume_simulates_nothing() {
    let journal = std::env::temp_dir().join(format!(
        "fdip-isolation-resume-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);
    let journal_s = journal.to_str().unwrap();

    let in_process = run(&["exp", "e01", "--quick"]);
    assert!(in_process.status.success(), "{}", stderr(&in_process));

    let isolated = run(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--journal",
        journal_s,
    ]);
    assert!(isolated.status.success(), "{}", stderr(&isolated));
    assert_eq!(
        stdout(&in_process),
        stdout(&isolated),
        "isolation must not change experiment results"
    );

    let resumed = run(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=2",
        "--journal",
        journal_s,
    ]);
    let err = stderr(&resumed);
    assert!(resumed.status.success(), "{err}");
    assert_eq!(
        stdout(&in_process),
        stdout(&resumed),
        "resume must reproduce the run byte-for-byte"
    );
    // All four cells of e01 came back from the journal; none was
    // re-simulated (and none was corrupt).
    assert!(
        err.contains("restored 4 cell(s), skipped 0 line(s), 0 corrupt"),
        "{err}"
    );
    assert!(err.contains("0 cells simulated"), "{err}");
    let _ = std::fs::remove_file(&journal);
}

/// PIDs of `parent`'s direct children, scanned from `/proc` (std-only;
/// `/proc/<pid>/stat` field 4 is the ppid).
fn children_of(parent: u32) -> Vec<u32> {
    let mut kids = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return kids;
    };
    for entry in entries.flatten() {
        let Some(pid) = entry
            .file_name()
            .to_str()
            .and_then(|s| s.parse::<u32>().ok())
        else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // The comm field (2) may contain spaces; fields after its closing
        // ')' are whitespace-separated, with ppid first after the state.
        let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
            continue;
        };
        if rest.split_whitespace().nth(1) == Some(&parent.to_string()) {
            kids.push(pid);
        }
    }
    kids
}

#[test]
fn sigkilled_worker_costs_one_failed_row_and_the_run_recovers() {
    // The slow fault parks the first cell's worker in a 5s sleep, giving
    // the test a deterministic window to SIGKILL it from outside.
    let child = fdip(&[
        "exp",
        "e01",
        "--quick",
        "--isolate=1",
        "--max-attempts",
        "1",
        "--faults",
        "slow@client-1/base:5000",
    ])
    .spawn()
    .expect("spawn fdip");

    let deadline = Instant::now() + Duration::from_secs(20);
    let worker = loop {
        if let Some(&pid) = children_of(child.id()).first() {
            break pid;
        }
        assert!(
            Instant::now() < deadline,
            "no worker process appeared under the supervisor"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    // Let the worker get past spawn and into the faulted cell, then kill.
    std::thread::sleep(Duration::from_millis(300));
    let killed = Command::new("kill")
        .args(["-9", &worker.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {worker} failed");

    let out = child.wait_with_output().expect("wait fdip");
    let (table, err) = (stdout(&out), stderr(&out));
    assert!(
        out.status.success(),
        "a SIGKILLed worker must not fail the run:\n{err}"
    );
    assert!(table.contains("killed by signal 9"), "{table}\n{err}");
    assert!(err.contains("1 failed"), "{err}");
    // The supervisor respawned a worker and finished the rest of the
    // matrix.
    assert!(err.contains("worker restart(s)"), "{err}");
    assert!(table.contains("# failed cells"), "{table}");
}
